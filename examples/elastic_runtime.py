#!/usr/bin/env python
"""The elastic runtime: cut switch memory mid-run, keep the cache warm.

The compiler makes NetCache elastic at *compile* time; the runtime
control plane (`repro.runtime`) makes a deployment elastic while traffic
is flowing. This demo:

1. compiles NetCache for a 6-stage target with 64 KB of register memory
   per stage and serves a churning Zipf stream;
2. at the halfway point the "operator" re-provisions the target down to
   32 KB/stage — the runtime recompiles, folds the sketch counters onto
   the smaller layout, re-admits the hottest cache entries, validates,
   and hot-swaps;
3. prints the per-window hit-rate timeline so you can see the swap as a
   small dip (instead of the collapse a cold restart would cause).

Every decision lands on a telemetry bus; the last few events are printed
at the end.

Run:  python examples/elastic_runtime.py
"""

import dataclasses

from repro.pisa import tofino
from repro.runtime import ElasticRuntime, RuntimeConfig, TelemetryBus
from repro.workloads import ChurningZipf


def main() -> None:
    target = dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )
    telemetry = TelemetryBus()
    print(f"Compiling NetCache for: {target.describe()}")
    runtime = ElasticRuntime(
        target,
        config=RuntimeConfig(window_packets=500),
        telemetry=telemetry,
    )
    print("  initial layout: "
          + ", ".join(f"{k}={v}"
                      for k, v in sorted(runtime.app.compiled.symbol_values.items())))

    packets, cut_at = 12_000, 6_000
    cut = dataclasses.replace(target, memory_bits_per_stage=32 * 1024)
    runtime.schedule_target_change(cut_at, cut)
    print(f"\nScheduled memory cut 64KB -> 32KB per stage at packet {cut_at}.")
    print(f"Serving {packets} packets of a churning Zipf stream...\n")

    stream = ChurningZipf(
        universe=2_000, alpha=1.3, phase_packets=4_000,
        churn=0.2, hot_ranks=200, seed=11,
    )
    report = runtime.run(stream, packets=packets)

    swap_window = cut_at // 500
    for i, rate in enumerate(report.timeline):
        bar = "#" * int(rate * 40)
        marker = "  <- hot swap" if i == swap_window else ""
        print(f"  window {i:2d}  {rate:5.1%}  {bar}{marker}")

    print()
    print(report.format())

    print("\nLast telemetry events:")
    for event in telemetry.events[-4:]:
        print(f"  {event.to_json()[:120]}")


if __name__ == "__main__":
    main()
