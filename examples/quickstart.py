#!/usr/bin/env python
"""Quickstart: compile an elastic sketch and run packets through it.

The program below is the paper's running example — a count-min sketch
whose row count and column count are *symbolic*: the compiler picks them
to maximize ``rows * cols`` within the target's stages, memory, ALUs,
and PHV. We compile it for the Tofino-like target, print the chosen
sizes and the per-stage layout, then push packets through the PISA
pipeline simulator and query the sketch.

Run:  python examples/quickstart.py
"""

from repro import Packet, Pipeline, compile_source, layout_report, tofino
from repro.structures import CMS_SOURCE


def main() -> None:
    target = tofino()
    print(f"Compiling the elastic count-min sketch for: {target.describe()}\n")

    compiled = compile_source(CMS_SOURCE, target, source_name="cms.p4all")

    print("Chosen symbolic values:")
    for name, value in sorted(compiled.symbol_values.items()):
        print(f"  {name} = {value}")
    print()
    print(layout_report(compiled))
    print()

    # The generated concrete P4 (what a target compiler would receive):
    head = "\n".join(compiled.p4_source.splitlines()[:12])
    print("Generated P4 (first lines):")
    print(head)
    print("  ...\n")

    # Execute the compiled program on packets.
    pipe = Pipeline(compiled)
    trace = [7, 7, 7, 13, 7, 13, 99]
    print(f"Processing trace {trace}:")
    for flow in trace:
        result = pipe.process(Packet(fields={"flow_id": flow}))
        print(f"  flow {flow:3d} -> sketch estimate {result.get('meta.cms_min')}")

    print("\nThe estimate for flow 7 counts its 4 packets; the count-min")
    print("property guarantees estimates never undercount.")


if __name__ == "__main__":
    main()
