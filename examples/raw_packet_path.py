#!/usr/bin/env python
"""The full Figure-2 path: bytes → parser → pipeline → deparser → bytes.

Builds raw Ethernet/IPv4/TCP frames, runs them through the programmable
parser, feeds the extracted 5-tuple (hashed into a flow id) to a
compiled elastic sketch, and re-emits the frames with a decremented TTL
via the deparser — demonstrating that the PISA substrate covers the
whole architecture, not just the match-action pipeline.

Run:  python examples/raw_packet_path.py
"""

import struct

from repro import Packet, Pipeline, compile_source
from repro.pisa import Deparser, PacketParser, small_target
from repro.structures import CMS_SOURCE


def build_frame(src: int, dst: int, sport: int, dport: int) -> bytes:
    eth = (0xAABBCCDDEEFF).to_bytes(6, "big")
    eth += (0x112233445566).to_bytes(6, "big") + (0x0800).to_bytes(2, "big")
    ipv4 = bytes([0x45, 0]) + struct.pack(">HHHBBH", 40, 0, 0, 64, 6, 0)
    ipv4 += src.to_bytes(4, "big") + dst.to_bytes(4, "big")
    tcp = struct.pack(">HHIIHHHH", sport, dport, 0, 0, 0x5000, 0xFFFF, 0, 0)
    return eth + ipv4 + tcp


def main() -> None:
    compiled = compile_source(
        CMS_SOURCE, small_target(stages=6, memory_kb=32), source_name="cms"
    )
    pipe = Pipeline(compiled)
    parser = PacketParser.ethernet_ipv4()
    deparser = Deparser(parser)

    frames = [
        build_frame(0x0A000001, 0x0A000063, 4000 + (i % 3), 80)
        for i in range(9)
    ]
    print(f"Processing {len(frames)} raw frames through parse -> "
          f"{compiled.symbol_values['cms_rows']}-row sketch -> deparse:\n")
    for frame in frames:
        parsed = parser.parse(frame)
        flow_id = (
            parsed.fields["ipv4.src"]
            ^ parsed.fields["ipv4.dst"]
            ^ (parsed.fields["tcp.sport"] << 16 | parsed.fields["tcp.dport"])
        ) & 0xFFFFFFFF
        result = pipe.process(Packet(fields={"flow_id": flow_id}))
        out = deparser.emit(
            parsed,
            overrides={"ipv4.ttl": parsed.fields["ipv4.ttl"] - 1},
        )
        out_ttl = parser.parse(out).fields["ipv4.ttl"]
        print(
            f"  5-tuple hash {flow_id:#010x}: sketch count "
            f"{result.get('meta.cms_min')}, TTL {parsed.fields['ipv4.ttl']}"
            f" -> {out_ttl}, {len(out)} bytes out"
        )
    print("\nThree TCP flows (3 packets each): per-flow counts reach 3.")


if __name__ == "__main__":
    main()
