#!/usr/bin/env python
"""Build your own elastic application from library modules.

The paper's §3.2 methodology in four steps, done live: take a Bloom
filter (has this flow been seen?), a hash-based byte matrix (how much
traffic per flow?), and a count-min sketch (how many packets?), link
them into one program, pick a utility that weighs them, and let the
compiler stretch all three into one pipeline. The modules were written
once, in the library — composing them here required zero changes.

The composition goes through the module linker
(:func:`repro.link.link_p4all_modules`), which keeps each module a
first-class unit: the layout report below is followed by a per-module
breakdown of stages, memory, ALUs, and utility share. The legacy
``compose()`` string splice produces the identical program — the
differential test in ``tests/link`` holds the two bit-for-bit equal.

Run:  python examples/compose_your_own.py
"""

import dataclasses

from repro import Packet, Pipeline, layout_report
from repro.core import compile_linked, module_report
from repro.link import link_p4all_modules
from repro.pisa import tofino
from repro.structures import bloom_module, cms_module, matrix_module


def build_modules():
    """The three library modules, configured for this composite."""
    # Step 1-3: the library modules already declare their symbolics,
    # elastic structures, and operations; we only choose key fields.
    return [
        bloom_module(prefix="seen", key_field="meta.flow_id", max_bits=65536),
        matrix_module(prefix="vol", key_field="meta.flow_id",
                      amount_field="meta.pkt_bytes", max_cols=8192),
        cms_module(prefix="cnt", key_field="meta.flow_id", max_cols=8192,
                   seed_offset=40),
    ]


#: Glue shared by the linker path here and the ``compose()`` path in the
#: differential test: the joint metadata, the usefulness floors, and the
#: utility that weighs the three structures (§3.2.1's methodology).
COMPOSE_KWARGS = dict(
    extra_metadata=["bit<32> flow_id;", "bit<32> pkt_bytes;"],
    extra_assumes=["cnt_cols >= 256", "seen_bits >= 1024"],
    utility=(
        "0.2 * (seen_hashes * seen_bits) + "
        "0.5 * (vol_rows * vol_cols) + "
        "0.3 * (cnt_rows * cnt_cols)"
    ),
)


def main() -> None:
    # Step 4: link the modules into one program under the joint utility.
    linked = link_p4all_modules(
        build_modules(), name="composite", **COMPOSE_KWARGS
    )

    target = dataclasses.replace(
        tofino(), stages=8, memory_bits_per_stage=128 * 1024
    )
    print("Compiling a 3-module composite (Bloom + matrix + CMS)...")
    compiled = compile_linked(linked, target)
    print(layout_report(compiled))
    print()
    print(module_report(compiled))

    pipe = Pipeline(compiled)
    print("\nTraffic: flow 5 sends 3 packets of 500 B, flow 9 sends 1:")
    for flow, size in ((5, 500), (5, 500), (5, 500), (9, 1200)):
        result = pipe.process(
            Packet(fields={"flow_id": flow, "pkt_bytes": size})
        )
        print(
            f"  flow {flow}: seen-before={bool(result.get('meta.seen_member'))}, "
            f"packet estimate={result.get('meta.cnt_min')}"
        )
    vol_row = pipe.register_dump("vol_matrix", 0)
    print(f"\nController reads the byte matrix: total {int(vol_row.sum())} B "
          "accounted (3x500 + 1200).")


if __name__ == "__main__":
    main()
