#!/usr/bin/env python
"""Elasticity = portability: one source, many targets.

The paper's §8: elastic programs "are portable — elastic software can be
recompiled for a variety of different targets". This example compiles
the *same* unmodified Bloom-filter module for three targets of very
different capacity and shows how the structure stretches, plus how the
resulting false-positive behavior improves with the extra space.

Run:  python examples/portability.py
"""

import dataclasses

from repro.core import compile_source
from repro.eval import render_table
from repro.pisa import Packet, Pipeline, small_target, tofino, toy_three_stage
from repro.structures import BLOOM_SOURCE


def false_positive_rate(compiled, inserted: int = 300, probes: int = 2_000) -> float:
    """Insert keys then probe disjoint ones through the pipeline."""
    pipe = Pipeline(compiled)
    for key in range(1, inserted + 1):
        pipe.process(Packet(fields={"flow_id": key}))
    false_hits = 0
    for key in range(10_000, 10_000 + probes):
        result = pipe.process(Packet(fields={"flow_id": key}))
        # 'member' is pre-insertion membership: a hit on a never-seen key
        # is a false positive. (The probe also inserts; keys are unique.)
        false_hits += int(result.get("meta.bf_member"))
    return false_hits / probes


def main() -> None:
    targets = [
        toy_three_stage(),
        small_target(stages=6, memory_kb=16),
        dataclasses.replace(tofino(), memory_bits_per_stage=256 * 1024),
    ]
    rows = []
    for target in targets:
        compiled = compile_source(BLOOM_SOURCE, target, source_name="bloom.p4all")
        syms = compiled.symbol_values
        fpr = false_positive_rate(compiled)
        rows.append([
            target.name,
            target.stages,
            target.memory_bits_per_stage,
            f"{syms['bf_hashes']} x {syms['bf_bits']}",
            compiled.total_register_bits(),
            f"{fpr:.2%}",
        ])
    print(render_table(
        ["target", "stages", "M (bits/stage)", "filter shape",
         "filter bits", "false-positive rate"],
        rows,
        title="One elastic Bloom filter, three targets (300 keys inserted)",
    ))
    print("\nNo source changes between rows — the compiler re-stretches the")
    print("structure to each target, and accuracy follows the capacity.")


if __name__ == "__main__":
    main()
