#!/usr/bin/env python
"""NetCache under hot-set churn: the sketch re-identifies moving keys.

Dynamic popularity is NetCache's motivating scenario: the hot key set
drifts, and the switch cache must follow it — the sketch spots the new
hot keys, the controller promotes them, evicting the coldest occupants
(and periodically resets the sketch so stale counts fade).

This demo runs the compiled NetCache over a churning Zipf workload and
prints the per-phase hit rate: it dips right after each rotation and
recovers as the replacement machinery catches up.

Run:  python examples/cache_under_churn.py
"""

import dataclasses

from repro.apps import NetCacheApp
from repro.pisa import tofino
from repro.workloads import ChurningZipf


def main() -> None:
    target = dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )
    print(f"Compiling NetCache for: {target.describe()}")
    app = NetCacheApp(target, hot_threshold=2)
    capacity = app.kv_rows * app.kv_cols
    print(f"  cache capacity {capacity} items, "
          f"sketch {app.cms_rows}x{app.cms_cols}\n")

    workload = ChurningZipf(
        universe=20_000, alpha=1.05, phase_packets=1_500,
        churn=0.5, hot_ranks=2_000, seed=21,
    )
    phases = 8
    print(f"{phases} phases x 1500 requests, 50% hot-set churn between phases:")
    for phase in range(phases):
        keys = workload.sample(1_500)
        stats = app.run_trace(keys)
        # Controller hygiene: reset the sketch each phase so stale hot
        # keys stop looking hot (NetCache's periodic report/reset cycle).
        for row in range(app.cms_rows):
            app.pipeline.registers.get(f"cms_sketch[{row}]").clear()
        print(
            f"  phase {phase + 1}: hit rate {stats.hit_rate:6.1%}  "
            f"(+{stats.insertions} inserted, {stats.evictions} evicted)"
        )
    print("\nHit rate recovers after every rotation: the elastic sketch "
          "keeps the\ncache tracking the moving hot set.")


if __name__ == "__main__":
    main()
