#!/usr/bin/env python
"""NetCache end-to-end: elastic cache + sketch serving a skewed workload.

Composes the elastic NetCache from the library's count-min-sketch and
key-value-store modules, compiles it, loads the result into the PISA
pipeline simulator, and replays a Zipf-distributed key-request trace
with the NetCache controller promoting hot keys into the switch cache.
The achieved hit rate is compared against the workload's oracle bound
(a cache of the same size holding exactly the hottest keys).

Run:  python examples/netcache_hot_keys.py
"""

import dataclasses

from repro.apps import NetCacheApp
from repro.pisa import tofino
from repro.workloads import ZipfGenerator


def main() -> None:
    # A reduced Tofino keeps this demo snappy; drop the overrides to
    # compile for the full ten-stage target.
    target = dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )
    print(f"Compiling NetCache for: {target.describe()}")
    app = NetCacheApp(target, hot_threshold=8)
    print(
        f"  sketch: {app.cms_rows} rows x {app.cms_cols} cols; "
        f"cache: {app.kv_rows} rows x {app.kv_cols} slots "
        f"({app.kv_rows * app.kv_cols} items)\n"
    )

    gen = ZipfGenerator(universe=20_000, alpha=1.1, seed=1)
    phases = 4
    packets_per_phase = 2_000
    print(f"Replaying {phases} x {packets_per_phase} Zipf requests:")
    for phase in range(phases):
        stats = app.run_trace(gen.sample(packets_per_phase))
        print(
            f"  phase {phase + 1}: hit rate {stats.hit_rate:6.1%}  "
            f"(+{stats.insertions} keys cached, "
            f"{stats.rejected_insertions} rejected)"
        )

    capacity = app.kv_rows * app.kv_cols
    oracle = gen.optimal_hit_rate(capacity)
    print(f"\nOracle hit rate for a {capacity}-item cache: {oracle:.1%}")
    print("The warm cache converges toward the oracle as the sketch")
    print("identifies the hot keys.")


if __name__ == "__main__":
    main()
