#!/usr/bin/env python
"""PRECISION heavy-hitter monitoring on a heavy-tailed flow trace.

Compiles the elastic PRECISION program (counting hash-table module),
replays a synthetic backbone-style trace with probabilistic
recirculation, and scores the detected heavy hitters against ground
truth (precision / recall).

Run:  python examples/heavy_hitter_monitor.py
"""

import dataclasses

from repro.apps import PrecisionApp
from repro.pisa import tofino
from repro.workloads import synthesize_trace


def main() -> None:
    target = dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )
    print(f"Compiling PRECISION for: {target.describe()}")
    app = PrecisionApp(target, seed=11)
    print(f"  table: {app.rows} rows x {app.cols} slots\n")

    trace = synthesize_trace(
        flows=1_500, mean_packets_per_flow=10, pareto_shape=1.15, seed=12
    )
    print(f"Replaying {len(trace):,} packets of {len(trace.flow_sizes):,} flows...")
    stats = app.run_trace(trace.flow_ids)
    print(
        f"  tracked-hit rate {stats.tracked_hits / stats.packets:.1%}, "
        f"recirculation rate {stats.recirculation_rate:.2%}\n"
    )

    threshold = 80
    truth = trace.heavy_flows(threshold)
    detected = app.heavy_keys(threshold // 2)
    true_positives = truth & detected
    recall = len(true_positives) / len(truth) if truth else 1.0
    precision = len(true_positives) / len(detected) if detected else 1.0
    print(f"Heavy hitters (>= {threshold} packets): {len(truth)} flows")
    print(f"  detected {len(detected)}; recall {recall:.1%}, "
          f"precision {precision:.1%}")

    biggest = max(trace.flow_sizes, key=trace.flow_sizes.get)
    print(
        f"\nLargest flow {biggest}: true size {trace.flow_sizes[biggest]}, "
        f"switch counter {app.count_of(biggest)} "
        "(undercounts only the pre-installation packets)"
    )


if __name__ == "__main__":
    main()
