"""Figure 12 — NetCache structure sizes as per-stage memory grows.

Paper claims: as M increases the compiler stretches both structures to
use the added resources; the key-value store's items are far larger than
the sketch's counters, so the store takes the larger share of memory.
"""

import os

from repro.eval import run_memory_sweep


def _sweep():
    # Defaults include M = 0.25 Mb/stage, where the CMS is still below
    # its diminishing-returns caps, so the sketch curve's growth shows.
    # The six per-cut compiles are independent and fan out over a
    # process pool (HiGHS holds the GIL, so threads cannot overlap the
    # solves); on a single-core box this degrades to the sequential
    # path.
    return run_memory_sweep(workers=min(6, os.cpu_count() or 1))


def test_fig12_memory_sweep(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(sweep.format())

    points = sweep.points
    assert len(points) == 6

    # The store grows monotonically with M; the sketch grows from the
    # smallest to the largest target but saturates once its
    # diminishing-returns caps bind (the paper's Figure 12 shows the same
    # flattening), and discrete stage packing lets it dip a packing step
    # below the cap at intermediate M.
    kv_items = [p.kv_items for p in points]
    cms_cells = [p.cms_cells for p in points]
    assert kv_items == sorted(kv_items)
    assert kv_items[-1] > kv_items[0]
    assert cms_cells[-1] > cms_cells[0]
    assert min(cms_cells) == cms_cells[0]
    # The store's memory share never shrinks as capacity grows.
    shares = [p.kv_bits / (p.kv_bits + p.cms_bits) for p in points]
    assert shares == sorted(shares)

    # The KVS takes the larger memory share throughout (its items are
    # 160 b vs the sketch's 32 b counters).
    for p in points:
        assert p.kv_bits > p.cms_bits, f"M={p.memory_bits_per_stage}"

    # Resources are actually being used: at every M the two structures
    # together occupy most of the pipeline's register memory.
    for p in points:
        total = p.kv_bits + p.cms_bits
        capacity = p.memory_bits_per_stage * 10
        assert total > 0.75 * capacity
