"""Elastic runtime — reconfiguration latency and migration loss.

Benchmarks the full monitor → recompile → migrate → validate → hot-swap
cycle on the memory-cut scenario and emits ``BENCH_runtime.json`` with
the headline numbers:

* ``reconfig_seconds`` — wall-clock of the committed reconfiguration
  (planning dominates: the layout ILP re-solve);
* ``plan/migrate breakdown`` — compile phase timings from telemetry;
* ``kv_loss_fraction`` — cache entries dropped by the shrink;
* ``recovery_ratio`` — post-swap steady hit rate vs the pre-cut
  baseline, for the migrated and the cold swap;
* ``solver_stats`` — the planner's solver statistics for the committed
  reconfiguration (branch-and-bound nodes explored, where the incumbent
  came from, and compile-cache hit counters);
* ``module_attribution`` — per-module stage/memory/ALU and utility
  share for the committed layout (the runtime composes NetCache through
  the module linker, so every reconfig attributes resources per tenant
  module).
"""

import json
from pathlib import Path

from repro.eval import RuntimeScenario, run_elastic_runtime

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _run():
    return run_elastic_runtime(RuntimeScenario())


def test_runtime_reconfig(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(comparison.format())

    migrated, cold = comparison.outcomes
    assert migrated.label == "migrated" and cold.label == "cold"

    # The reconfiguration committed via the ILP and completed promptly
    # (seconds, not minutes — it is an online control-plane operation).
    assert migrated.backend == "ilp"
    assert 0.0 < migrated.reconfig_seconds < 60.0

    # Solver observability rode along: incumbent provenance and the
    # planner cache's counters (the cut recompile reuses the boot
    # compile's front-end artifacts).
    assert "incumbent_source" in migrated.solver_stats
    assert migrated.solver_stats.get("frontend_hits", 0) >= 1

    # Migration moved most of the cache; the loss is the shrink's fault,
    # not the migrator's (the new cache is half the size).
    assert migrated.kv_entries_old > 0
    assert migrated.kv_migrated > 0
    assert 0.0 <= migrated.kv_loss < 1.0

    # Acceptance: the migrated swap recovers to within 10% of the
    # pre-cut steady state.
    assert migrated.recovery >= 0.9

    # Migration is what keeps the first post-swap window warm: the cold
    # swap's first window is visibly worse.
    assert migrated.post_swap_first_window > cold.post_swap_first_window

    # The runtime links the kv and cms modules, so the committed plan
    # attributes resources per module and the utility shares partition
    # the objective.
    assert {"kv", "cms"} <= set(migrated.module_attribution)
    shares = [a["utility_share"]
              for a in migrated.module_attribution.values()
              if a.get("utility_share") is not None]
    assert shares and abs(sum(shares) - 1.0) < 1e-6

    payload = {
        "scenario": {
            "stages": comparison.scenario.stages,
            "memory_bits_per_stage": comparison.scenario.memory_bits_per_stage,
            "cut_memory_bits": comparison.scenario.cut_memory_bits,
            "packets": comparison.scenario.packets,
            "cut_at": comparison.scenario.cut_at,
        },
        "reconfig_seconds": migrated.reconfig_seconds,
        "backend": migrated.backend,
        "solver_stats": migrated.solver_stats,
        "module_attribution": migrated.module_attribution,
        "kv_entries_old": migrated.kv_entries_old,
        "kv_migrated": migrated.kv_migrated,
        "kv_loss_fraction": migrated.kv_loss,
        "migrated": {
            "baseline_rate": migrated.baseline_rate,
            "post_swap_first_window": migrated.post_swap_first_window,
            "post_swap_steady": migrated.post_swap_steady,
            "recovery_ratio": migrated.recovery,
        },
        "cold": {
            "baseline_rate": cold.baseline_rate,
            "post_swap_first_window": cold.post_swap_first_window,
            "post_swap_steady": cold.post_swap_steady,
            "recovery_ratio": cold.recovery,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")
