"""Figure 13 — the utility function decides the resource split.

Paper claims: at M = 1.75 Mb/stage with an 8 Mb floor reserved for the
key-value store, weighting the utility toward the CMS vs toward the KVS
flips which structure receives the extra memory; both configurations
stretch to use (nearly) all available resources.
"""

from repro.eval import run_utility_comparison


def test_fig13_utility_flip(benchmark):
    comparison = benchmark.pedantic(run_utility_comparison, rounds=1, iterations=1)
    print()
    print(comparison.format())

    cms_weighted, kv_weighted = comparison.outcomes
    assert cms_weighted.label.startswith("0.6*CMS")

    # The KVS floor holds in both configurations.
    assert cms_weighted.kv_bits >= 8 * (1 << 20)
    assert kv_weighted.kv_bits >= 8 * (1 << 20)

    # Flipping the weights moves memory between the structures: the
    # KVS-weighted run gives the store strictly more, the sketch less
    # (or equal, if a cap binds).
    assert kv_weighted.kv_bits > cms_weighted.kv_bits
    assert kv_weighted.cms_bits <= cms_weighted.cms_bits

    # Both stretch to use the bulk of the pipeline's register memory.
    assert cms_weighted.memory_utilization > 0.75
    assert kv_weighted.memory_utilization > 0.75
