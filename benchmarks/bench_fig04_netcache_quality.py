"""Figure 4 — NetCache quality across resource splits.

Paper claim: application quality (cache hit rate) varies strongly with
how memory is split between the count-min sketch and the key-value
store; the configuration the compiler derives from the utility function
achieves (near-)highest quality, and the extremes (all-sketch /
all-store) lose.
"""

import dataclasses

from repro.apps.netcache import netcache_source
from repro.core import compile_source
from repro.eval import run_quality_sweep
from repro.pisa.resources import tofino

_BUDGET_BITS = 4 * (1 << 20)


def _sweep():
    # Default workload: 60k Zipf(0.95) requests over a 150k-key universe,
    # so no sweep configuration can cache the whole key space.
    return run_quality_sweep(memory_budget_bits=_BUDGET_BITS)


def test_fig04_quality_surface(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(sweep.format())

    best = sweep.best
    # The extremes lose: all-sketch has no cache at all; all-store
    # (95% fraction) must not beat the best balanced point.
    no_cache = [p for p in sweep.points if p.kv_cols == 0]
    assert all(p.hit_rate == 0.0 for p in no_cache)
    assert 0 < best.hit_rate <= sweep.oracle_hit_rate + 0.02
    # The winning point dedicates the majority of memory to the store
    # (its items are what produce hits) but keeps a working sketch.
    assert best.kv_items * 160 > _BUDGET_BITS * 0.5
    assert best.cms_cells > 0


def test_fig04_compiler_pick_is_near_optimal(benchmark):
    """Compile NetCache for a target holding the sweep's budget and check
    the chosen split lands near the hit-rate optimum of the surface.

    Under this workload (insertion-only cache, 150k-key universe) the
    quality surface rewards store capacity, so the programmer expresses
    that with the store-weighted per-bit utility (the paper's §3.2.4
    knob); the compiler's split must then land near the surface optimum.
    """
    from repro.eval import UTILITY_KV_WEIGHTED

    sweep = _sweep()
    target = dataclasses.replace(
        tofino(), memory_bits_per_stage=_BUDGET_BITS // 10
    )
    source = netcache_source(utility=UTILITY_KV_WEIGHTED).replace(
        "assume cms_cols <= 65536;", "assume cms_cols <= 16384;"
    )
    compiled = benchmark.pedantic(
        compile_source, args=(source, target),
        kwargs={"source_name": "netcache"}, rounds=1, iterations=1,
    )
    kv_items = (
        compiled.symbol_values["kv_rows"] * compiled.symbol_values["kv_cols"]
    )
    nearest = sweep.nearest(kv_items)
    best = sweep.best
    print(f"\ncompiler pick: kv_items={kv_items} -> nearest sweep point "
          f"hit rate {nearest.hit_rate:.4f} (best {best.hit_rate:.4f})")
    assert nearest.hit_rate >= 0.9 * best.hit_rate
