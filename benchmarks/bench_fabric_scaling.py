"""Fabric fleet — multi-switch scaling and live-migration downtime.

Benchmarks the fleet experiment across 1/2/4/8-switch fabrics and emits
``BENCH_fabric.json`` with the headline numbers:

* per-fleet-size aggregate pkt/s (makespan-modeled: a window's wall
  time is its slowest switch, since real switches are independent
  hardware — the serial rate is reported alongside for audit);
* the 4-switch speedup over a single switch (acceptance: >= 3x; the
  hottest shard bounds the makespan, so perfect 4x is impossible);
* live migration of the hottest switch to a warm standby: logical key
  loss (hard gate: must be zero), downtime in buffered packets, and the
  post-migration steady hit rate vs pre-migration;
* layout-cache hits per install — the marginal switch's compile is
  served from the shared cache, so only the first switch pays the ILP.
"""

import json
from pathlib import Path

from repro.eval import FleetScenario, run_fleet

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"

SCENARIO = FleetScenario(fleet_sizes=(1, 2, 4, 8))


def _run():
    return run_fleet(SCENARIO)


def test_fabric_scaling(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(outcome.format())

    by_size = {p.switches: p for p in outcome.scale}
    assert set(by_size) == {1, 2, 4, 8}

    # Acceptance: a 4-switch fabric sustains at least 3x the
    # single-switch throughput on the Zipf workload.
    assert by_size[4].speedup >= 3.0

    # Scaling is monotone and the marginal switch compiled for free
    # (n-1 layout-cache hits per install).
    assert by_size[2].speedup > 1.0
    assert by_size[8].speedup > by_size[4].speedup
    for n, point in by_size.items():
        assert point.layout_cache_hits >= n - 1

    # Hard gate: the live migration lost no logical keys — every cached
    # entry re-admitted, every buffered in-flight packet replayed.
    mig = outcome.migration
    assert mig["committed"], mig["error"]
    assert mig["kv_dropped"] == 0
    assert mig["kv_migrated"] == mig["kv_entries_old"] > 0
    assert mig["replayed_packets"] == mig["downtime_packets"]
    assert mig["dropped_packets"] == 0

    # Downtime is bounded by one window's worth of the moving shard.
    assert 0 < mig["downtime_packets"] <= SCENARIO.window_packets

    payload = {
        "scenario": {
            "fleet_sizes": list(SCENARIO.fleet_sizes),
            "packets": SCENARIO.packets,
            "window_packets": SCENARIO.window_packets,
            "universe": SCENARIO.universe,
            "alpha": SCENARIO.alpha,
            "vnodes": SCENARIO.vnodes,
            "migrate_at": SCENARIO.migrate_at,
        },
        "throughput_model": "makespan",
        "scaling": {
            str(n): {
                "aggregate_pkts_per_sec": p.aggregate_pkts_per_sec,
                "serial_pkts_per_sec": p.serial_pkts_per_sec,
                "speedup": p.speedup,
                "hit_rate": p.hit_rate,
                "layout_cache_hits": p.layout_cache_hits,
            }
            for n, p in sorted(by_size.items())
        },
        "speedup_4x": by_size[4].speedup,
        "migration": {
            "src": mig["src"],
            "dst": mig["dst"],
            "committed": mig["committed"],
            "downtime_packets": mig["downtime_packets"],
            "replayed_packets": mig["replayed_packets"],
            "kv_entries_old": mig["kv_entries_old"],
            "kv_migrated": mig["kv_migrated"],
            "kv_dropped": mig["kv_dropped"],
            "moved_fraction": mig["moved_fraction"],
            "seconds": mig["seconds"],
            "pre_rate": mig["pre_rate"],
            "post_rate": mig["post_rate"],
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")
