"""Figure 1 — the reusable module library, demonstrated elastic.

Paper claim: the catalogued structures (key-value store/hash table,
hash-based matrix/sketch, hierarchical sketch, Bloom filter, ID-indexed
table) are reusable across applications *because* they stretch per
target. Every module must compile unchanged on a small and on a
Tofino-scale target, stretching its memory footprint in between.
"""

from repro.eval import run_library_demo


def test_fig01_library_stretches(benchmark):
    demo = benchmark.pedantic(run_library_demo, rounds=1, iterations=1)
    print()
    print(demo.format())

    assert len(demo.rows) == 7  # the full Figure-1 catalogue
    for row in demo.rows:
        # Same source, both targets: the large target must hold at least
        # 10x the structure memory of the small one.
        assert row.small_bits > 0, row.module
        assert row.large_bits >= 10 * row.small_bits, row.module

    # Elasticity is per-dimension too: the CMS stretches columns, and its
    # rows respect the diminishing-returns assume cap.
    cms = demo.row("cms")
    assert cms.large_symbols["cms_cols"] > cms.small_symbols["cms_cols"]
    assert cms.large_symbols["cms_rows"] <= 4
