"""Figure 9 — loop-unrolling upper bounds (the worked example).

Paper claim: on a 3-stage target the CMS loops unroll at most twice —
K = 3 creates a simple path of length 4 (incr, min, min, min) that cannot
fit. We regenerate the per-K path lengths, the K = 3 dependency graph,
and the bound, then sweep the stage count to show the bound tracking S-1.
"""

import dataclasses

from repro.eval import run_unroll_example
from repro.eval.tables import render_table
from repro.pisa.resources import toy_three_stage


def test_fig09_unroll_bound(benchmark):
    facts = benchmark.pedantic(run_unroll_example, rounds=3, iterations=1)
    print()
    print(facts.format())

    assert facts.bound == 2
    assert facts.criterion == "stages"
    assert facts.path_lengths == [2, 3, 4]
    # The K=3 graph matches Figure 9: per-iteration precedence plus a
    # min-min exclusion clique.
    assert len(facts.k3_precedence) == 3
    assert len(facts.k3_exclusion) == 3


def test_fig09_bound_tracks_stage_count(benchmark):
    rows = []
    for stages in range(3, 9):
        target = dataclasses.replace(toy_three_stage(), stages=stages)
        facts = benchmark.pedantic(
            run_unroll_example, args=(target,), rounds=1, iterations=1,
        ) if stages == 3 else run_unroll_example(target)
        rows.append([stages, facts.bound, facts.criterion])
        # min-chain: K iterations need K+1 stages -> bound = S - 1, until
        # the library's diminishing-returns assume (rows <= 4) caps it.
        assert facts.bound == min(stages - 1, 4)
        # S <= 4: the path criterion fires at K = S; from S = 5 the
        # assume cap (4) is reached before any criterion can fire.
        assert facts.criterion == ("stages" if stages <= 4 else "assume")
    print()
    print(render_table(["stages S", "bound", "criterion"], rows,
                       title="Unroll bound vs stage count (CMS example)"))
