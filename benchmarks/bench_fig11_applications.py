"""Figure 11 — the application table.

Paper claims: (i) the elastic P4All programs are shorter than their
concrete P4 equivalents, dramatically so for loop-heavy applications
(NetCache, SketchLearn) and modestly for macro-engineered ones
(Precision, ConQuest); (ii) compile times range from well under a second
to ~15 s with the ILP solve dominating; (iii) NetCache produces the
largest ILP of the four.
"""

from repro.eval import run_app_benchmark


def test_fig11_application_table(benchmark):
    bench = benchmark.pedantic(run_app_benchmark, rounds=1, iterations=1)
    print()
    print(bench.format())
    for row in bench.rows:
        syms = ", ".join(f"{k}={v}" for k, v in sorted(row.symbol_values.items()))
        print(f"  {row.name}: {syms}")

    # (i) elastic sources are shorter everywhere; NetCache/SketchLearn
    # see the big reductions.
    for row in bench.rows:
        assert row.p4all_loc < row.p4_loc, row.name
    assert bench.row("NetCache").loc_ratio > 1.5
    assert bench.row("SketchLearn").loc_ratio > 1.5

    # (ii) compile times small; the ILP solve is the dominant phase for
    # the biggest program.
    for row in bench.rows:
        assert row.compile_seconds < 60, row.name
    heaviest = max(bench.rows, key=lambda r: r.compile_seconds)
    assert heaviest.solve_seconds > 0.5 * heaviest.compile_seconds

    # (iii) NetCache (two elastic modules + routing) has the largest ILP.
    netcache = bench.row("NetCache")
    assert all(
        netcache.ilp_variables >= row.ilp_variables
        for row in bench.rows
    )
