"""Ablation — unroll-bound tightness vs the ILP's final choice.

§4.2/§4.3: the unroll bound is a coarse over-approximation ("large
enough"), and the ILP "may generate a solution that excludes some of the
unrolled iterations". This benchmark reports bound vs chosen count per
symbolic on targets where resources (not the chain criterion) bind.
"""

from repro.apps import netcache_source
from repro.eval import measure_bound_tightness
from repro.pisa.resources import small_target, tofino
from repro.structures import CMS_SOURCE, HASHTABLE_SOURCE


def test_bound_tightness_cms_small_target(benchmark):
    # ALU-starved target: the bound (from the stage chain) exceeds what
    # the stateless-ALU budget lets the ILP place.
    target = small_target(stages=6, memory_kb=32)
    result = benchmark.pedantic(
        measure_bound_tightness, args=(CMS_SOURCE, target),
        kwargs={"name": "cms"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    for sym, bound in result.bounds.items():
        assert result.chosen[sym] <= bound


def test_bound_tightness_netcache(benchmark):
    result = benchmark.pedantic(
        measure_bound_tightness, args=(netcache_source(), tofino()),
        kwargs={"name": "netcache"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    slack = {
        sym: result.bounds[sym] - result.chosen[sym]
        for sym in result.bounds
    }
    print(f"  slack per symbolic: {slack}")
    # The ILP refines below the bound somewhere (the two loops compete
    # for stages, so at least one cannot reach its standalone bound).
    assert any(v > 0 for v in slack.values())
    assert all(v >= 0 for v in slack.values())


def test_bound_tightness_hashtable(benchmark):
    result = benchmark.pedantic(
        measure_bound_tightness,
        args=(HASHTABLE_SOURCE, small_target(stages=8, memory_kb=64)),
        kwargs={"name": "hashtable"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    for sym, bound in result.bounds.items():
        assert result.chosen[sym] <= bound
