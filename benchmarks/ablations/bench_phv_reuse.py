"""Ablation — PHV reuse headroom (§4.4 future work, quantified).

The paper's prototype charges every elastic metadata field against the
PHV for the whole pipeline and flags container recycling as future
work. The liveness analysis measures what recycling would buy on real
layouts: per-iteration scratch fields (hash indices, per-row counts) die
as soon as the aggregation stage consumes them, so the peak concurrent
demand sits well below the whole-pipeline allocation.
"""

import dataclasses

from repro.analysis.liveness import analyze_phv_liveness
from repro.apps import netcache_source, precision_source
from repro.core import compile_source
from repro.eval.tables import render_table
from repro.pisa.resources import small_target, tofino
from repro.structures import CMS_SOURCE


def test_phv_reuse_headroom(benchmark):
    programs = [
        ("cms", CMS_SOURCE, small_target(stages=6, memory_kb=32)),
        ("netcache", netcache_source(), tofino()),
        ("precision", precision_source(), tofino()),
    ]

    def run_all():
        out = []
        for name, source, target in programs:
            compiled = compile_source(source, target, source_name=name)
            out.append((name, analyze_phv_liveness(compiled)))
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, report in reports:
        rows.append([
            name,
            report.allocated_bits,
            report.peak_bits,
            report.reuse_savings_bits,
            f"{report.reuse_savings_fraction:.0%}",
        ])
        assert report.peak_bits <= report.allocated_bits
        # Multi-phase programs always have recyclable scratch fields.
        assert report.reuse_savings_bits > 0, name
    print()
    print(render_table(
        ["program", "allocated PHV (b)", "peak live (b)",
         "reuse saves (b)", "savings"],
        rows,
        title="PHV container reuse headroom (§4.4 future work)",
    ))
