"""Ablation — exclusion edges vs all-precedence (§5's prototype mode).

The paper's prototype only received precedence edges from the Tofino
toolchain and treated commutative conflicts as ordered. This ablation
quantifies what full exclusion support buys: all-precedence mode can only
achieve at most the utility of the full analysis, and on stage-starved
targets it strictly loses sketch rows (an ordered min-chain wastes the
freedom to interleave).
"""

import dataclasses

from repro.eval import compare_exclusion_handling
from repro.eval.tables import render_table
from repro.pisa.resources import small_target, toy_three_stage
from repro.structures import CMS_SOURCE


def test_exclusion_vs_precedence_cms(benchmark):
    target = small_target(stages=6, memory_kb=32)
    result = benchmark.pedantic(
        compare_exclusion_handling, args=(CMS_SOURCE, target),
        kwargs={"name": "cms"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    assert result.degraded_utility <= result.full_utility


def test_exclusion_support_over_stage_counts(benchmark):
    rows = []
    ran_benchmark = False
    for stages in (3, 4, 5, 6):
        target = dataclasses.replace(
            small_target(stages=stages, memory_kb=32), name=f"s{stages}"
        )
        if not ran_benchmark:
            result = benchmark.pedantic(
                compare_exclusion_handling, args=(CMS_SOURCE, target),
                kwargs={"name": "cms"}, rounds=1, iterations=1,
            )
            ran_benchmark = True
        else:
            result = compare_exclusion_handling(CMS_SOURCE, target, name="cms")
        rows.append([
            stages,
            result.full_symbols["cms_rows"],
            result.degraded_symbols["cms_rows"],
        ])
        assert result.degraded_symbols["cms_rows"] <= result.full_symbols["cms_rows"]
    print()
    print(render_table(
        ["stages", "rows (exclusion edges)", "rows (all precedence)"],
        rows,
        title="CMS rows achievable with vs without exclusion-edge support",
    ))
