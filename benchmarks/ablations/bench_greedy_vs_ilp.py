"""Ablation — ILP layout vs greedy first-fit (DESIGN.md §5).

Related work compiles *fixed* programs with greedy heuristics; the
elastic problem rewards global optimization: greedy commits memory to
the structures it meets first and cannot trade them against later,
higher-utility ones. The ILP must achieve at least the greedy utility on
every program, and strictly more on NetCache (where the weighted
trade-off matters).
"""

import pytest

from repro.apps import netcache_source
from repro.eval import compare_greedy_vs_ilp
from repro.pisa.resources import small_target, tofino
from repro.structures import CMS_SOURCE


def test_greedy_vs_ilp_cms(benchmark):
    target = small_target(stages=6, memory_kb=32)
    result = benchmark.pedantic(
        compare_greedy_vs_ilp, args=(CMS_SOURCE, target),
        kwargs={"name": "cms"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    assert result.utility_gain >= 1.0


def test_greedy_vs_ilp_netcache(benchmark):
    result = benchmark.pedantic(
        compare_greedy_vs_ilp, args=(netcache_source(), tofino()),
        kwargs={"name": "netcache"}, rounds=1, iterations=1,
    )
    print("\n" + result.format())
    print(f"  ILP symbols:    {result.ilp_symbols}")
    print(f"  greedy symbols: {result.greedy_symbols}")
    # The ILP beats greedy on the weighted NetCache objective.
    assert result.utility_gain > 1.0
    # Greedy is much faster — that's its defense; report, don't assert
    # tightly (CI noise), beyond a sanity bound.
    assert result.greedy_seconds < result.ilp_seconds
