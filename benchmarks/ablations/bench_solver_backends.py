"""Ablation — ILP solver backends on the same layout models.

HiGHS (scipy) vs the built-in branch-and-bound: both are exact, so the
optimal objective must agree; runtimes are reported for the record (the
paper used Gurobi — any exact solver reproduces its results).
"""

from repro.eval import compare_solvers
from repro.pisa.resources import small_target
from repro.structures import BLOOM_SOURCE, CMS_SOURCE, IDTABLE_SOURCE


def test_backends_agree_across_library(benchmark):
    target = small_target(stages=4, memory_kb=8)

    def run_all():
        return [
            compare_solvers(source, target, name=name, time_limit=120.0)
            for name, source in (
                ("cms", CMS_SOURCE),
                ("bloom", BLOOM_SOURCE),
                ("idtable", IDTABLE_SOURCE),
            )
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for result in results:
        print(result.format())
        assert result.agree, result.format()
