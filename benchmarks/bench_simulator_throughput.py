"""Simulator microbenchmarks (not a paper figure).

Packet-processing throughput of both pipeline engines — the tree-walking
reference interpreter and the compiled execution-plan engine — plus the
vectorized reference sketch for context. Emits ``BENCH_interp.json``
with the headline numbers (packets/s per engine and the speedup), the
artifact CI uploads from its benchmark smoke step.

Rates are derived from the ``benchmark`` fixture's statistics (min time
over warmed rounds), not a single un-warmed wall-clock run — the old
approach was flaky on loaded machines.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE, CountMinSketch

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

PACKETS = 2000


def _cms_setup():
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(PACKETS)]
    return compiled, packets


def _rate(benchmark) -> float:
    """Packets/s from the best warmed round the fixture recorded."""
    return PACKETS / benchmark.stats.stats.min


def _measure(benchmark, engine: str) -> float:
    compiled, packets = _cms_setup()
    pipe = Pipeline(compiled, engine=engine)

    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    return _rate(benchmark)


def _record(key: str, rate: float) -> dict:
    """Merge one engine's result into ``BENCH_interp.json``.

    The two engines run as separate benchmark tests (so pytest-benchmark
    compares them in its own table), so the JSON is built incrementally;
    whichever test runs last fills in the speedup.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.setdefault("benchmark", "cms-microbenchmark")
    payload.setdefault("packets", PACKETS)
    payload[key] = rate
    if "interp_pkts_per_s" in payload and "compiled_pkts_per_s" in payload:
        payload["speedup"] = (
            payload["compiled_pkts_per_s"] / payload["interp_pkts_per_s"]
        )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_interp_packet_throughput(benchmark):
    rate = _measure(benchmark, "interp")
    _record("interp_pkts_per_s", rate)
    print(f"\npipeline interpreter: ~{rate:,.0f} packets/s (CMS)")
    assert rate > 1_000  # interpreter keeps trace-scale tests viable


def test_compiled_packet_throughput(benchmark):
    rate = _measure(benchmark, "compiled")
    payload = _record("compiled_pkts_per_s", rate)
    print(f"\ncompiled plan engine: ~{rate:,.0f} packets/s (CMS)")
    if "speedup" in payload:
        print(f"speedup over interpreter: {payload['speedup']:.1f}x")
    assert rate > 10_000

    # Acceptance bar for the compiled engine: at least 10x the
    # interpreter on the CMS microbenchmark (both rates measured the
    # same way in this session).
    if "speedup" in payload:
        assert payload["speedup"] >= 10.0, payload


def test_reference_sketch_throughput(benchmark):
    cms = CountMinSketch(rows=4, cols=4096)
    keys = np.random.default_rng(1).integers(1, 1 << 20, size=100_000)

    benchmark.pedantic(lambda: cms.update_many(keys),
                       rounds=5, iterations=1, warmup_rounds=1)
    rate = len(keys) / benchmark.stats.stats.min
    print(f"\nvectorized reference sketch: ~{rate:,.0f} updates/s")
    assert rate > 100_000
