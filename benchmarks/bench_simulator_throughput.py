"""Simulator microbenchmarks (not a paper figure).

Packet-processing throughput of all three pipeline engines — the
tree-walking reference interpreter, the compiled execution-plan engine,
and the columnar vector engine — plus the flow-sharded multiprocess
fan-out at 1/2/4 workers and the vectorized reference sketch for
context. Emits ``BENCH_interp.json`` with the headline numbers
(packets/s per configuration and the speedups), the artifact CI uploads
from its benchmark smoke step.

Rates are derived from the ``benchmark`` fixture's statistics (min time
over warmed rounds), not a single un-warmed wall-clock run — the old
approach was flaky on loaded machines.

Sharded rows carry two rates side by side: **wall** — honest wall-clock
packets/s, the number the CI gate enforces — and **modeled** — a
makespan aggregate (``packets / max(per-worker busy seconds)`` from
``pipeline.last_shard_report``) that models the fan-out on a host with
at least ``workers`` free cores. On a single-core runner the workers
time-slice one core, so wall-clock cannot show core scaling; the model
uses each worker's measured CPU seconds and assumes only that the
workers overlap. With the persistent pool (:mod:`repro.pisa.pool`) the
busy seconds come from the pooled run itself — pool workers pay no
per-batch fork tax, so their CPU time needs no laundering through an
inline re-run the way the old fork-per-batch mode did.

The sharded baseline (``sharded_vector_baseline_pkts_per_s``) is the
single-process vector engine *at the sharded batch size*: the vector
row's ``PACKETS``-sized batch runs hotter per packet (smaller working
set), so comparing sharded wall-clock against it would mix batch-size
effects into the fan-out ratio. ``wall_speedup_over_vector`` and the
per-worker-count ``sharded_w{N}_wall_speedup_over_vector`` ratios —
what the sim-bench CI gate reads (≥ 0.9 everywhere, ≥ 2.0 at 4 workers
on multi-core runners) — divide same-sized batches only. A
fork-per-batch comparison row (``sharded_w4_fork_pkts_per_s``)
documents what the pool replaced.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE, CountMinSketch

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

PACKETS = 2000
SHARD_PACKETS = 20_000


def _cms_setup(n=PACKETS):
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(n)]
    return compiled, packets


def _measure(benchmark, engine: str) -> float:
    compiled, packets = _cms_setup()
    pipe = Pipeline(compiled, engine=engine)

    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    return PACKETS / benchmark.stats.stats.min


def _record(updates: dict) -> dict:
    """Merge results into ``BENCH_interp.json``.

    Each configuration runs as a separate benchmark test (so
    pytest-benchmark compares them in its own table); the JSON is built
    incrementally and whichever test runs last fills in the speedups.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.setdefault("benchmark", "cms-microbenchmark")
    payload.setdefault("packets", PACKETS)
    payload.update(updates)
    if "interp_pkts_per_s" in payload and "compiled_pkts_per_s" in payload:
        payload["speedup"] = (
            payload["compiled_pkts_per_s"] / payload["interp_pkts_per_s"]
        )
    if "compiled_pkts_per_s" in payload and "vector_pkts_per_s" in payload:
        payload["vector_speedup_over_compiled"] = (
            payload["vector_pkts_per_s"] / payload["compiled_pkts_per_s"]
        )
    if ("vector_pkts_per_s" in payload
            and "sharded_w4_modeled_pkts_per_s" in payload):
        payload["sharded_w4_modeled_speedup_over_vector"] = (
            payload["sharded_w4_modeled_pkts_per_s"]
            / payload["vector_pkts_per_s"]
        )
    # Wall-clock fan-out ratios against the same-sized single-process
    # vector baseline — the numbers the sim-bench CI gate enforces.
    baseline = payload.get("sharded_vector_baseline_pkts_per_s")
    if baseline:
        for w in (1, 2, 4):
            key = f"sharded_w{w}_pkts_per_s"
            if key in payload:
                payload[f"sharded_w{w}_wall_speedup_over_vector"] = (
                    payload[key] / baseline
                )
        if "sharded_w4_pkts_per_s" in payload:
            payload["wall_speedup_over_vector"] = (
                payload["sharded_w4_pkts_per_s"] / baseline
            )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_interp_packet_throughput(benchmark):
    rate = _measure(benchmark, "interp")
    _record({"interp_pkts_per_s": rate})
    print(f"\npipeline interpreter: ~{rate:,.0f} packets/s (CMS)")
    assert rate > 1_000  # interpreter keeps trace-scale tests viable


def test_compiled_packet_throughput(benchmark):
    rate = _measure(benchmark, "compiled")
    payload = _record({"compiled_pkts_per_s": rate})
    print(f"\ncompiled plan engine: ~{rate:,.0f} packets/s (CMS)")
    if "speedup" in payload:
        print(f"speedup over interpreter: {payload['speedup']:.1f}x")
    assert rate > 10_000

    # Acceptance bar for the compiled engine: at least 10x the
    # interpreter on the CMS microbenchmark (both rates measured the
    # same way in this session).
    if "speedup" in payload:
        assert payload["speedup"] >= 10.0, payload


def test_vector_packet_throughput(benchmark):
    rate = _measure(benchmark, "vector")
    payload = _record({"vector_pkts_per_s": rate})
    print(f"\nvector engine: ~{rate:,.0f} packets/s (CMS)")
    if "vector_speedup_over_compiled" in payload:
        print("speedup over compiled: "
              f"{payload['vector_speedup_over_compiled']:.1f}x")

    # Hard gate: the columnar engine must never regress below the
    # scalar compiled engine it replaces on the batched path.
    if "compiled_pkts_per_s" in payload:
        assert rate >= payload["compiled_pkts_per_s"], payload


def _timed(run):
    import time

    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def test_sharded_throughput(benchmark, monkeypatch):
    """Vector engine behind the persistent-pool fan-out, 1/2/4 workers.

    One pytest-benchmark entry (workers=4 wall-clock); the baseline,
    the 1/2-worker rows, the makespan models, and the fork-per-batch
    comparison row are measured inline and merged into the JSON, since
    the fixture allows one benchmark per test.

    Every recorded rate comes from the *same* interleaved measurement
    loop: each round times baseline, w1, w2, w4 back to back, and each
    config keeps its best round. On frequency-scaled hosts the clock
    drifts over the session; measuring the configs sequentially would
    hand whichever ran at the higher clock a phantom speedup, which on
    a gated ratio means flaky CI. Interleaving exposes every config to
    the same drift.
    """
    import time

    compiled, packets = _cms_setup(SHARD_PACKETS)
    results = {}
    rows = []

    # Spin briefly so a frequency-scaled core is at speed before any
    # timing starts.
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < 1.0:
        sum(range(10_000))

    # Single-process vector at the SAME batch size: the denominator of
    # every wall-clock fan-out ratio (see module docstring).
    base_pipe = Pipeline(compiled, engine="vector")
    pool_pipes = {w: Pipeline(compiled, engine="vector") for w in (1, 2, 4)}

    def base_run():
        base_pipe.process_many(packets, collect=False)

    def pool_run(workers):
        pool_pipes[workers].process_many(
            packets, collect=False, workers=workers)

    runs = [("base", base_run)] + [
        (w, lambda w=w: pool_run(w)) for w in (1, 2, 4)]
    for _ in range(2):  # warmup; first pooled call also spawns workers
        for _, run in runs:
            run()
    best = {}
    for _ in range(6):
        for key, run in runs:
            dt = _timed(run)
            best[key] = min(best.get(key, dt), dt)

    baseline = SHARD_PACKETS / best["base"]
    results["sharded_vector_baseline_pkts_per_s"] = baseline
    rows.append(("vector 1p", baseline, baseline))

    for workers in (1, 2, 4):
        pipe = pool_pipes[workers]
        wall = SHARD_PACKETS / best[workers]
        if workers == 1:
            modeled = wall
        else:
            # Makespan model: workers overlap, so the batch completes
            # when the busiest worker does. Pool workers report their
            # own CPU seconds — no per-batch fork tax to launder out.
            report = pipe.last_shard_report
            assert report["mode"] == "pool", report
            modeled = SHARD_PACKETS / max(report["busy_seconds"])
        results[f"sharded_w{workers}_pkts_per_s"] = wall
        results[f"sharded_w{workers}_modeled_pkts_per_s"] = modeled
        rows.append((f"pool w{workers}", wall, modeled))

    # The pytest-benchmark fixture entry (w4 wall-clock) — recorded
    # rates above come from the interleaved loop, not this.
    benchmark.pedantic(lambda: pool_run(4), rounds=3, iterations=1)
    for pipe in pool_pipes.values():
        pipe.close()

    # Fork-per-batch comparison row: what the pool replaced.
    monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "fork")
    fork_pipe = Pipeline(compiled, engine="vector")
    fork_best = None
    for i in range(3):
        dt = _timed(lambda: fork_pipe.process_many(
            packets, collect=False, workers=4))
        fork_best = dt if fork_best is None else min(fork_best, dt)
    monkeypatch.delenv("REPRO_PISA_SHARD_MODE")
    fork_wall = SHARD_PACKETS / fork_best
    results["sharded_w4_fork_pkts_per_s"] = fork_wall
    rows.append(("fork w4", fork_wall, None))

    payload = _record(results)
    print(f"\nsharded throughput ({SHARD_PACKETS:,} packets):")
    print(f"  {'config':<10} {'wall pkt/s':>14} {'modeled pkt/s':>14} "
          f"{'wall/vector':>12}")
    for label, wall, modeled in rows:
        ratio = f"{wall / baseline:.2f}x"
        mod = f"{modeled:>14,.0f}" if modeled is not None else f"{'—':>14}"
        print(f"  {label:<10} {wall:>14,.0f} {mod} {ratio:>12}")
    if "wall_speedup_over_vector" in payload:
        print("wall w4 speedup over single-process vector: "
              f"{payload['wall_speedup_over_vector']:.2f}x")


def test_reference_sketch_throughput(benchmark):
    cms = CountMinSketch(rows=4, cols=4096)
    keys = np.random.default_rng(1).integers(1, 1 << 20, size=100_000)

    benchmark.pedantic(lambda: cms.update_many(keys),
                       rounds=5, iterations=1, warmup_rounds=1)
    rate = len(keys) / benchmark.stats.stats.min
    print(f"\nvectorized reference sketch: ~{rate:,.0f} updates/s")
    assert rate > 100_000
