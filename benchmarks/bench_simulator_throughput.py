"""Simulator microbenchmarks (not a paper figure).

Packet-processing throughput of all three pipeline engines — the
tree-walking reference interpreter, the compiled execution-plan engine,
and the columnar vector engine — plus the flow-sharded multiprocess
fan-out at 1/2/4 workers and the vectorized reference sketch for
context. Emits ``BENCH_interp.json`` with the headline numbers
(packets/s per configuration and the speedups), the artifact CI uploads
from its benchmark smoke step.

Rates are derived from the ``benchmark`` fixture's statistics (min time
over warmed rounds), not a single un-warmed wall-clock run — the old
approach was flaky on loaded machines.

Sharded rows carry two rates: honest wall-clock packets/s, and a
makespan-modeled aggregate (``packets / max(per-worker busy seconds)``
from ``pipeline.last_shard_report``) that models the fan-out on a host
with at least ``workers`` free cores. On a single-core CI runner the
forked workers time-slice one core, so wall-clock cannot show the
scaling the architecture provides; the model uses each worker's
measured busy time and assumes only that the workers overlap. Busy
seconds come from a warmed in-process run of the same partitions
(``REPRO_PISA_SHARD_MODE=inline``): a freshly forked child pays
copy-on-write page faults on every inherited object it touches, which
inflates its CPU time ~2x — a per-fork artifact a persistent worker
pool would not pay, so it belongs in the wall-clock rows (where it is
reported) but not in the compute model.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE, CountMinSketch

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

PACKETS = 2000
SHARD_PACKETS = 20_000


def _cms_setup(n=PACKETS):
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(n)]
    return compiled, packets


def _measure(benchmark, engine: str) -> float:
    compiled, packets = _cms_setup()
    pipe = Pipeline(compiled, engine=engine)

    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    return PACKETS / benchmark.stats.stats.min


def _record(updates: dict) -> dict:
    """Merge results into ``BENCH_interp.json``.

    Each configuration runs as a separate benchmark test (so
    pytest-benchmark compares them in its own table); the JSON is built
    incrementally and whichever test runs last fills in the speedups.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.setdefault("benchmark", "cms-microbenchmark")
    payload.setdefault("packets", PACKETS)
    payload.update(updates)
    if "interp_pkts_per_s" in payload and "compiled_pkts_per_s" in payload:
        payload["speedup"] = (
            payload["compiled_pkts_per_s"] / payload["interp_pkts_per_s"]
        )
    if "compiled_pkts_per_s" in payload and "vector_pkts_per_s" in payload:
        payload["vector_speedup_over_compiled"] = (
            payload["vector_pkts_per_s"] / payload["compiled_pkts_per_s"]
        )
    if ("vector_pkts_per_s" in payload
            and "sharded_w4_modeled_pkts_per_s" in payload):
        payload["sharded_w4_modeled_speedup_over_vector"] = (
            payload["sharded_w4_modeled_pkts_per_s"]
            / payload["vector_pkts_per_s"]
        )
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_interp_packet_throughput(benchmark):
    rate = _measure(benchmark, "interp")
    _record({"interp_pkts_per_s": rate})
    print(f"\npipeline interpreter: ~{rate:,.0f} packets/s (CMS)")
    assert rate > 1_000  # interpreter keeps trace-scale tests viable


def test_compiled_packet_throughput(benchmark):
    rate = _measure(benchmark, "compiled")
    payload = _record({"compiled_pkts_per_s": rate})
    print(f"\ncompiled plan engine: ~{rate:,.0f} packets/s (CMS)")
    if "speedup" in payload:
        print(f"speedup over interpreter: {payload['speedup']:.1f}x")
    assert rate > 10_000

    # Acceptance bar for the compiled engine: at least 10x the
    # interpreter on the CMS microbenchmark (both rates measured the
    # same way in this session).
    if "speedup" in payload:
        assert payload["speedup"] >= 10.0, payload


def test_vector_packet_throughput(benchmark):
    rate = _measure(benchmark, "vector")
    payload = _record({"vector_pkts_per_s": rate})
    print(f"\nvector engine: ~{rate:,.0f} packets/s (CMS)")
    if "vector_speedup_over_compiled" in payload:
        print("speedup over compiled: "
              f"{payload['vector_speedup_over_compiled']:.1f}x")

    # Hard gate: the columnar engine must never regress below the
    # scalar compiled engine it replaces on the batched path.
    if "compiled_pkts_per_s" in payload:
        assert rate >= payload["compiled_pkts_per_s"], payload


def test_sharded_throughput(benchmark, monkeypatch):
    """Vector engine behind the flow-sharded fan-out, 1/2/4 workers.

    One pytest-benchmark entry (workers=4 wall-clock); the 1/2-worker
    rows and the makespan models are measured inline and merged into
    the JSON, since the fixture allows one benchmark per test.
    """
    compiled, packets = _cms_setup(SHARD_PACKETS)
    results = {}
    for workers in (1, 2, 4):
        pipe = Pipeline(compiled, engine="vector")

        def run():
            pipe.process_many(packets, collect=False, workers=workers)

        if workers == 4:
            benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
            best = benchmark.stats.stats.min
        else:
            import time

            run()  # warmup
            best = None
            for _ in range(3):
                t0 = time.perf_counter()
                run()
                dt = time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
        wall = SHARD_PACKETS / best
        if workers == 1:
            modeled = wall
        else:
            # Makespan model: workers overlap, so the batch completes
            # when the busiest worker does. Per-worker busy seconds are
            # taken from a warmed in-process run of the same partitions
            # so fork copy-on-write faults don't pollute the model (see
            # module docstring); wall above keeps them on the record.
            monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "inline")
            try:
                run()
            finally:
                monkeypatch.delenv("REPRO_PISA_SHARD_MODE")
            report = pipe.last_shard_report
            assert report["mode"] == "inline"
            modeled = SHARD_PACKETS / max(report["busy_seconds"])
        results[f"sharded_w{workers}_pkts_per_s"] = wall
        results[f"sharded_w{workers}_modeled_pkts_per_s"] = modeled
        print(f"\nsharded workers={workers}: ~{wall:,.0f} packets/s wall, "
              f"~{modeled:,.0f} modeled")
    payload = _record(results)
    if "sharded_w4_modeled_speedup_over_vector" in payload:
        print("modeled w4 speedup over single-process vector: "
              f"{payload['sharded_w4_modeled_speedup_over_vector']:.1f}x")


def test_reference_sketch_throughput(benchmark):
    cms = CountMinSketch(rows=4, cols=4096)
    keys = np.random.default_rng(1).integers(1, 1 << 20, size=100_000)

    benchmark.pedantic(lambda: cms.update_many(keys),
                       rounds=5, iterations=1, warmup_rounds=1)
    rate = len(keys) / benchmark.stats.stats.min
    print(f"\nvectorized reference sketch: ~{rate:,.0f} updates/s")
    assert rate > 100_000
