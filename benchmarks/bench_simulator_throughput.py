"""Simulator microbenchmarks (not a paper figure).

Packet-processing throughput of the PISA pipeline interpreter and the
vectorized reference sketch — context for the workload-scale choices in
the quality experiments.
"""

import time

import numpy as np

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE, CountMinSketch


def test_pipeline_packet_throughput(benchmark):
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    pipe = Pipeline(compiled)
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(500)]

    def run():
        for packet in packets:
            pipe.process(packet)

    started = time.perf_counter()
    run()
    rate = 500 / (time.perf_counter() - started)
    benchmark.pedantic(run, rounds=5, iterations=1)
    print(f"\npipeline interpreter: ~{rate:,.0f} packets/s "
          f"(CMS, {compiled.symbol_values['cms_rows']} rows)")
    assert rate > 1_000  # interpreter keeps trace-scale tests viable


def test_reference_sketch_throughput(benchmark):
    cms = CountMinSketch(rows=4, cols=4096)
    keys = np.random.default_rng(1).integers(1, 1 << 20, size=100_000)

    started = time.perf_counter()
    cms.update_many(keys)
    rate = len(keys) / (time.perf_counter() - started)
    benchmark.pedantic(lambda: cms.update_many(keys), rounds=5, iterations=1)
    print(f"\nvectorized reference sketch: ~{rate:,.0f} updates/s")
    assert rate > 100_000
