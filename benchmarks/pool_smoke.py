"""Pool smoke: one pooled 2-worker batch, armed to fail fast.

CI runs this under a 60-second ``timeout`` with ``faulthandler``
enabled (``PYTHONFAULTHANDLER=1``) so a deadlocked worker join dumps
every thread's stack and kills the runner step instead of hanging it
for the job timeout. Belt and braces, the script also arms
``faulthandler.dump_traceback_later`` itself at 45 seconds — inside
the outer timeout — so the stacks land in the log even when the
harness forgets the env var.

Checks, beyond "it returns": the batch really ran on the pool (no
silent degradation), the merged register state is bit-identical to a
single-process run, and ``close()`` leaves no live children.
"""

import faulthandler
import multiprocessing
import sys

faulthandler.enable()
faulthandler.dump_traceback_later(45, exit=True)

from repro.core import compile_source  # noqa: E402
from repro.pisa import Packet, Pipeline, small_target  # noqa: E402
from repro.structures import CMS_SOURCE  # noqa: E402

PACKETS = 20_000
WORKERS = 2


def main() -> int:
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(PACKETS)]

    seq = Pipeline(compiled, engine="vector")
    seq.process_many(packets, collect=False)
    expected = {name: list(seq.registers.get(name).dump())
                for name in seq.registers.names()}

    with Pipeline(compiled, engine="vector") as pipe:
        n = pipe.process_many(packets, collect=False, workers=WORKERS)
        report = pipe.last_shard_report
        print(f"pooled batch: {n} packets, mode={report['mode']}, "
              f"counts={report['counts']}")
        if report["mode"] != "pool":
            print(f"FAIL: degraded to {report['mode']} "
                  f"(requested {report.get('requested_mode')})")
            return 1
        merged = {name: list(pipe.registers.get(name).dump())
                  for name in pipe.registers.names()}
        if merged != expected:
            print("FAIL: pooled register state diverges from single-process")
            return 1

    children = multiprocessing.active_children()
    if children:
        print(f"FAIL: live children after close(): {children}")
        return 1
    print("pool smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
