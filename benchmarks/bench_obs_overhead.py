"""Observability overhead microbenchmark (not a paper figure).

The tracing layer must be effectively free when it is off: the compiled
engine's batch path pays one attribute check and a shared no-op span per
``process_many`` call, and ``process`` (the per-packet hot path) is
never instrumented at all. This benchmark measures

* the raw cost of entering a *disabled* span,
* compiled-engine throughput through the instrumented ``process_many``
  wrapper (tracer disabled) vs the uninstrumented batch body, and
* throughput with the tracer *enabled*, for context.

Emits ``BENCH_obs.json``. Acceptance: the disabled-tracer overhead on
the compiled engine stays under 2%.
"""

import json
import time
from pathlib import Path

from repro import obs
from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

PACKETS = 2000
ROUNDS = 7
SPAN_LOOP = 10_000


def _cms_pipeline():
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(PACKETS)]
    return Pipeline(compiled, engine="compiled"), packets


def _best_rate(fn, rounds: int = ROUNDS) -> float:
    """Packets/s from the best of ``rounds`` warmed runs."""
    fn()  # warmup
    best = min(_timed(fn) for _ in range(rounds))
    return PACKETS / best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _record(updates: dict) -> dict:
    """Merge results into ``BENCH_obs.json`` (tests run independently)."""
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.setdefault("benchmark", "obs-overhead")
    payload.setdefault("packets", PACKETS)
    payload.update(updates)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_disabled_span_is_near_free(benchmark):
    obs.trace.disable()

    def loop():
        span = obs.trace.span
        for _ in range(SPAN_LOOP):
            with span("bench"):
                pass

    benchmark.pedantic(loop, rounds=5, iterations=1, warmup_rounds=1)
    per_span = benchmark.stats.stats.min / SPAN_LOOP
    _record({"disabled_span_seconds": per_span})
    print(f"\ndisabled span: ~{per_span * 1e9:,.0f} ns per entry")
    assert len(obs.trace) == 0
    assert per_span < 5e-6  # well under a batch's noise floor


def test_disabled_tracer_overhead_on_compiled_engine(benchmark):
    """Instrumented batch path vs the uninstrumented body, tracer off."""
    obs.trace.disable()
    pipe, packets = _cms_pipeline()

    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    wrapped = PACKETS / benchmark.stats.stats.min
    raw = _best_rate(lambda: pipe._process_many(packets, False, None))
    overhead = max(0.0, 1.0 - wrapped / raw)
    payload = _record({
        "disabled_pkts_per_s": wrapped,
        "raw_pkts_per_s": raw,
        "disabled_overhead_fraction": overhead,
    })
    print(f"\ncompiled engine, tracer disabled: ~{wrapped:,.0f} packets/s")
    print(f"uninstrumented batch body:        ~{raw:,.0f} packets/s")
    print(f"disabled-instrumentation overhead: {overhead:.2%}")
    assert len(obs.trace) == 0

    # Acceptance bar: the disabled tracer costs the compiled engine
    # less than 2% (both rates measured the same way in this session).
    assert payload["disabled_overhead_fraction"] < 0.02, payload


def test_enabled_tracer_overhead_for_context(benchmark):
    """Advisory: cost of actually recording one span per batch."""
    pipe, packets = _cms_pipeline()
    obs.trace.enable()
    try:
        def run():
            obs.trace.reset()
            pipe.process_many(packets, collect=False)

        benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
        enabled = PACKETS / benchmark.stats.stats.min
    finally:
        obs.trace.disable()
        obs.trace.reset()
    payload = _record({"enabled_pkts_per_s": enabled})
    print(f"\ncompiled engine, tracer enabled: ~{enabled:,.0f} packets/s")
    if "disabled_pkts_per_s" in payload:
        frac = max(0.0, 1.0 - enabled / payload["disabled_pkts_per_s"])
        payload = _record({"enabled_overhead_fraction": frac})
        print(f"enabled-tracer overhead: {frac:.2%}")
