"""Observability overhead microbenchmark (not a paper figure).

The tracing layer must be effectively free when it is off: the compiled
engine's batch path pays one attribute check and a shared no-op span per
``process_many`` call, and ``process`` (the per-packet hot path) is
never instrumented at all. This benchmark measures

* the raw cost of entering a *disabled* span,
* compiled-engine throughput through the instrumented ``process_many``
  wrapper (tracer disabled) vs the uninstrumented batch body,
* throughput with the tracer *enabled*, for context,
* the worker-pool path with cross-process obs shipping vs the same
  path with the capture/merge machinery stubbed out (tracer off), and
* the always-on flight recorder vs the ring disabled.

Emits ``BENCH_obs.json``. Acceptance: the disabled-tracer overhead on
the compiled engine stays under 2%, the pool path's obs shipping under
2%, and the flight recorder under 5%.
"""

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

PACKETS = 2000
ROUNDS = 7
SPAN_LOOP = 10_000


def _cms_pipeline(engine: str = "compiled"):
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    packets = [Packet(fields={"flow_id": i % 997}) for i in range(PACKETS)]
    return Pipeline(compiled, engine=engine), packets


def _best_rate(fn, rounds: int = ROUNDS) -> float:
    """Packets/s from the best of ``rounds`` warmed runs."""
    fn()  # warmup
    best = min(_timed(fn) for _ in range(rounds))
    return PACKETS / best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _paired_overhead(fn_slow, fn_fast, rounds: int = 2 * ROUNDS + 1,
                     packets: int = PACKETS) -> tuple[float, float, float]:
    """``(rate_slow, rate_fast, overhead_fraction)`` for two bodies.

    The bodies run in adjacent pairs and the overhead is the *median*
    per-pair time ratio: ambient load hits both halves of a pair alike,
    and the median discards the pairs a scheduler hiccup still skews —
    comparing two independent best-of-N windows flaps on a busy host.
    Rates are best-of-rounds, for reporting.
    """
    fn_slow()
    fn_fast()  # warmup both
    times_slow, times_fast, ratios = [], [], []
    for _ in range(rounds):
        a = _timed(fn_slow)
        b = _timed(fn_fast)
        times_slow.append(a)
        times_fast.append(b)
        ratios.append(a / b)
    ratios.sort()
    overhead = max(0.0, ratios[len(ratios) // 2] - 1.0)
    return packets / min(times_slow), packets / min(times_fast), overhead


def _record(updates: dict) -> dict:
    """Merge results into ``BENCH_obs.json`` (tests run independently)."""
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload.setdefault("benchmark", "obs-overhead")
    payload.setdefault("packets", PACKETS)
    payload.update(updates)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_disabled_span_is_near_free(benchmark):
    obs.trace.disable()

    def loop():
        span = obs.trace.span
        for _ in range(SPAN_LOOP):
            with span("bench"):
                pass

    benchmark.pedantic(loop, rounds=5, iterations=1, warmup_rounds=1)
    per_span = benchmark.stats.stats.min / SPAN_LOOP
    _record({"disabled_span_seconds": per_span})
    print(f"\ndisabled span: ~{per_span * 1e9:,.0f} ns per entry")
    assert len(obs.trace) == 0
    assert per_span < 5e-6  # well under a batch's noise floor


def test_disabled_tracer_overhead_on_compiled_engine(benchmark):
    """Instrumented batch path vs the uninstrumented body, tracer off."""
    obs.trace.disable()
    pipe, packets = _cms_pipeline()

    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    wrapped, raw, overhead = _paired_overhead(
        lambda: pipe.process_many(packets, collect=False),
        lambda: pipe._process_many(packets, False, None),
    )
    payload = _record({
        "disabled_pkts_per_s": wrapped,
        "raw_pkts_per_s": raw,
        "disabled_overhead_fraction": overhead,
    })
    print(f"\ncompiled engine, tracer disabled: ~{wrapped:,.0f} packets/s")
    print(f"uninstrumented batch body:        ~{raw:,.0f} packets/s")
    print(f"disabled-instrumentation overhead: {overhead:.2%}")
    assert len(obs.trace) == 0

    # Acceptance bar: the disabled tracer costs the compiled engine
    # less than 2% (both rates measured the same way in this session).
    assert payload["disabled_overhead_fraction"] < 0.02, payload


def test_pool_disabled_obs_overhead(benchmark):
    """Worker-pool batch path: obs shipping on vs stubbed out, tracer off.

    With the tracer disabled a pooled batch still ships per-worker
    metric deltas over the control pipe. The baseline stubs the capture
    and merge hooks *before* its pool forks (children inherit the
    stubs), so the difference is exactly the shipping cost.
    """
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("worker pool needs the fork start method")
    obs.trace.disable()
    prev_mode = os.environ.get("REPRO_PISA_SHARD_MODE")
    os.environ["REPRO_PISA_SHARD_MODE"] = "pool"
    # A bigger batch than the single-process legs: per-batch obs
    # shipping is a fixed cost, and the pool's per-batch wall time is
    # noisy enough that a 2k batch can't resolve a 2% bound.
    pool_packets = [Packet(fields={"flow_id": i % 997})
                    for i in range(PACKETS * 4)]
    pipe, _ = _cms_pipeline(engine="vector")

    from repro.obs.aggregate import WorkerObsCapture
    from repro.pisa import pool as pool_mod

    # Stub the worker-side capture while the baseline pool forks — its
    # children inherit the no-ops, so their batches ship None and the
    # parent merge returns immediately. Restored before measuring.
    orig_begin = WorkerObsCapture.begin
    orig_finish = WorkerObsCapture.finish
    WorkerObsCapture.begin = lambda self, ctl=None: None
    WorkerObsCapture.finish = lambda self: None
    base_pipe, _ = _cms_pipeline(engine="vector")
    try:
        base_pipe.process_many(pool_packets, collect=False, workers=2)
        assert base_pipe.last_shard_report["mode"] == "pool", \
            base_pipe.last_shard_report
    finally:
        WorkerObsCapture.begin = orig_begin
        WorkerObsCapture.finish = orig_finish

    try:
        benchmark.pedantic(
            lambda: pipe.process_many(pool_packets, collect=False,
                                      workers=2),
            rounds=ROUNDS, iterations=1, warmup_rounds=1,
        )
        assert pipe.last_shard_report["mode"] == "pool", \
            pipe.last_shard_report
        instrumented, raw, overhead = _paired_overhead(
            lambda: pipe.process_many(pool_packets, collect=False,
                                      workers=2),
            lambda: base_pipe.process_many(pool_packets, collect=False,
                                           workers=2),
            packets=len(pool_packets),
        )
    finally:
        pipe.close()
        base_pipe.close()
        if prev_mode is None:
            os.environ.pop("REPRO_PISA_SHARD_MODE", None)
        else:
            os.environ["REPRO_PISA_SHARD_MODE"] = prev_mode
    payload = _record({
        "pool_pkts_per_s": instrumented,
        "pool_raw_pkts_per_s": raw,
        "pool_obs_overhead_fraction": overhead,
    })
    print(f"\npool path, obs shipping on:  ~{instrumented:,.0f} packets/s")
    print(f"pool path, shipping stubbed: ~{raw:,.0f} packets/s")
    print(f"pool obs-shipping overhead: {overhead:.2%}")
    assert payload["pool_obs_overhead_fraction"] < 0.02, payload


def test_flight_recorder_overhead(benchmark):
    """Always-on flight ring vs the ring disabled, tracer off."""
    obs.trace.disable()
    pipe, packets = _cms_pipeline()
    obs.flight.enabled = True
    benchmark.pedantic(
        lambda: pipe.process_many(packets, collect=False),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    def with_flight():
        obs.flight.enabled = True
        pipe.process_many(packets, collect=False)

    def without_flight():
        obs.flight.enabled = False
        pipe.process_many(packets, collect=False)

    try:
        enabled_rate, disabled_rate, overhead = _paired_overhead(
            with_flight, without_flight)
    finally:
        obs.flight.enabled = True
        obs.flight.clear()
    payload = _record({
        "flight_pkts_per_s": enabled_rate,
        "flight_off_pkts_per_s": disabled_rate,
        "flight_overhead_fraction": overhead,
    })
    print(f"\nflight recorder on:  ~{enabled_rate:,.0f} packets/s")
    print(f"flight recorder off: ~{disabled_rate:,.0f} packets/s")
    print(f"flight-recorder overhead: {overhead:.2%}")
    assert payload["flight_overhead_fraction"] < 0.05, payload


def test_enabled_tracer_overhead_for_context(benchmark):
    """Advisory: cost of actually recording one span per batch."""
    pipe, packets = _cms_pipeline()
    obs.trace.enable()
    try:
        def run():
            obs.trace.reset()
            pipe.process_many(packets, collect=False)

        benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
        enabled = PACKETS / benchmark.stats.stats.min
    finally:
        obs.trace.disable()
        obs.trace.reset()
    payload = _record({"enabled_pkts_per_s": enabled})
    print(f"\ncompiled engine, tracer enabled: ~{enabled:,.0f} packets/s")
    if "disabled_pkts_per_s" in payload:
        frac = max(0.0, 1.0 - enabled / payload["disabled_pkts_per_s"])
        payload = _record({"enabled_overhead_fraction": frac})
        print(f"enabled-tracer overhead: {frac:.2%}")
