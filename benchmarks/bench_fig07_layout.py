"""Figure 7 — the optimal NetCache layout.

Paper claim: under ``0.4*(rows*cols) + 0.6*(kv_items)`` on the ten-stage
target, the count-min sketch occupies few rows placed early while the
key-value store fills the following stages and takes the larger share of
memory.
"""

from repro.eval import run_layout


def test_fig07_netcache_layout(benchmark):
    facts = benchmark.pedantic(run_layout, rounds=1, iterations=1)
    print()
    print(facts.format())

    # Both structures exist and respect the CMS assume caps.
    assert 1 <= facts.cms_rows <= 4
    assert facts.kv_rows >= 1

    # Shape: the CMS is compact — all its rows fit within two stages.
    # (The paper's figure draws it in stage 1; with no data dependency
    # between the modules the block's position is utility-equivalent, so
    # the solver may park it anywhere. Compactness and share are the
    # claims that are actually determined.)
    assert len(facts.cms_stages) <= 2
    # The KVS spreads across most of the pipeline and takes the (much)
    # larger share of structure memory — Figure 12's observation.
    assert len(facts.kv_stages) >= 6
    assert facts.kv_memory_share > 0.6
    # The KVS floor of 8 Mb (NetCache's recommendation) holds.
    assert facts.kv_bits >= 8 * (1 << 20)
