"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure (DESIGN.md §4): it
times the harness via pytest-benchmark, prints the paper-style table
(visible with ``-s``; also captured in the benchmark run logs), and
asserts the figure's *shape* claims.
"""
