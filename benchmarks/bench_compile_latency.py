"""Compile latency — cold vs warm-cache vs warm-started ILP.

The elastic runtime recompiles on its reconfiguration critical path, so
recompile latency is a first-class metric. This benchmark measures the
three acceleration tiers and emits ``BENCH_compile.json``:

* **cold** — NetCache on a 6-stage/64 KB target, empty cache (the full
  parse → IR → bounds → ILP → codegen pipeline, per-phase timings);
* **warm cache** — the byte-identical recompile: served whole from the
  layout cache (acceptance: >= 10x faster than cold);
* **target change** — same source, memory cut in half: the front-end
  tiers hit (parse/IR skipped, bounds and the ILP re-run);
* **warm-start ILP** — the branch-and-bound backend re-solving after a
  target change, seeded with the previous layout as its initial
  incumbent vs solving cold (same objective, fewer nodes).

The warm-start leg uses the library CMS on the small 8-stage target:
large enough for a real search tree, small enough that the from-scratch
``bb`` backend finishes in well under a second.
"""

import dataclasses
import json
import time
from pathlib import Path

from repro.apps.netcache import netcache_source
from repro.core import CompileCache, CompileOptions, compile_source
from repro.pisa import small_target
from repro.pisa.resources import tofino
from repro.structures import CMS_SOURCE

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_compile.json"


def _mini_target(memory_bits: int = 64 * 1024):
    """NetCache-capable target small enough for second-scale solves."""
    return dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=memory_bits
    )


def _phases(compiled) -> dict:
    s = compiled.stats
    return {
        "parse_seconds": s.parse_seconds,
        "ir_seconds": s.ir_seconds,
        "bounds_seconds": s.bounds_seconds,
        "ilp_build_seconds": s.ilp_build_seconds,
        "ilp_solve_seconds": s.ilp_solve_seconds,
        "codegen_seconds": s.codegen_seconds,
        "verify_seconds": s.verify_seconds,
        "total_seconds": s.total_seconds,
        "frontend_cached": s.frontend_cached,
        "bounds_cached": s.bounds_cached,
        "layout_cached": s.layout_cached,
        "verify_cached": s.verify_cached,
    }


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _run() -> dict:
    # The elastic runtime's own composition (no routing table — that is
    # what its reconfigurations actually recompile).
    source = netcache_source(with_routing=False)
    cache = CompileCache()

    cold, cold_wall = _timed(lambda: compile_source(
        source, _mini_target(),
        options=CompileOptions(backend="scipy", cache=cache),
        source_name="netcache",
    ))
    warm, warm_wall = _timed(lambda: compile_source(
        source, _mini_target(),
        options=CompileOptions(backend="scipy", cache=cache),
        source_name="netcache",
    ))
    cut, cut_wall = _timed(lambda: compile_source(
        source, _mini_target(32 * 1024),
        options=CompileOptions(backend="scipy", cache=cache),
        source_name="netcache",
    ))

    # Linked legs: the NetCache module pair through the linker, where
    # the taint-verification phase actually runs (single-program
    # compiles have no module namespace to verify). The warm recompile
    # must answer verification from the cache's verify tier, and the
    # verification share of a warm compile must stay under 10%.
    from repro.apps.netcache import netcache_linked
    from repro.core import compile_linked

    linked_cache = CompileCache()
    linked = netcache_linked(with_routing=False, cache=linked_cache)
    linked_opts = CompileOptions(backend="scipy", cache=linked_cache)
    linked_cold, linked_cold_wall = _timed(
        lambda: compile_linked(linked, _mini_target(), options=linked_opts))
    linked_warm, linked_warm_wall = _timed(
        lambda: compile_linked(linked, _mini_target(), options=linked_opts))

    # Warm-start leg: keep front-end reuse but disable the layout cache
    # (max_layouts=0) so the solver genuinely re-runs, isolating the
    # incumbent seeding from whole-result caching.
    ws_cache = CompileCache(max_layouts=0)
    bb_target = small_target(stages=8, memory_kb=64)
    bb_cold, bb_cold_wall = _timed(lambda: compile_source(
        CMS_SOURCE, bb_target,
        options=CompileOptions(backend="bb", cache=ws_cache),
        source_name="cms",
    ))
    bb_warm, bb_warm_wall = _timed(lambda: compile_source(
        CMS_SOURCE, bb_target,
        options=CompileOptions(backend="bb", cache=ws_cache,
                               warm_start=bb_cold.solution),
        source_name="cms",
    ))

    return {
        "cold": {"wall_seconds": cold_wall, **_phases(cold)},
        "warm_cache": {"wall_seconds": warm_wall, **_phases(warm)},
        "target_change": {"wall_seconds": cut_wall, **_phases(cut)},
        "warm_cache_speedup": cold_wall / max(warm_wall, 1e-9),
        "warm_start_ilp": {
            "cold": {
                "wall_seconds": bb_cold_wall,
                "objective": bb_cold.solution.objective,
                "nodes_explored": bb_cold.solution.nodes_explored,
                "incumbent_source": bb_cold.solution.incumbent_source,
                "symbols": dict(bb_cold.symbol_values),
            },
            "warm": {
                "wall_seconds": bb_warm_wall,
                "objective": bb_warm.solution.objective,
                "nodes_explored": bb_warm.solution.nodes_explored,
                "incumbent_source": bb_warm.solution.incumbent_source,
                "symbols": dict(bb_warm.symbol_values),
            },
        },
        "linked_cold": {"wall_seconds": linked_cold_wall,
                        **_phases(linked_cold)},
        "linked_warm": {"wall_seconds": linked_warm_wall,
                        **_phases(linked_warm)},
        "verify_fraction_of_linked_cold": (
            linked_cold.stats.verify_seconds
            / max(linked_cold_wall, 1e-9)),
        "verify_fraction_of_linked_warm": (
            linked_warm.stats.verify_seconds
            / max(linked_warm_wall, 1e-9)),
        "cache": cache.snapshot(),
        "linked_cache": linked_cache.snapshot(),
        "_cold": cold, "_warm": warm, "_cut": cut,
        "_bb_cold": bb_cold, "_bb_warm": bb_warm,
        "_linked_cold": linked_cold, "_linked_warm": linked_warm,
    }


def test_compile_latency(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    cold, warm, cut = results["_cold"], results["_warm"], results["_cut"]
    bb_cold, bb_warm = results["_bb_cold"], results["_bb_warm"]

    # The identical recompile is served whole from the layout cache —
    # same artifact, flagged as cached, and >= 10x faster (in practice
    # it is a dict lookup, several thousand times faster).
    assert warm.stats.layout_cached
    assert warm.symbol_values == cold.symbol_values
    assert results["warm_cache_speedup"] >= 10.0

    # The target change reuses the front end but re-solves the layout.
    assert cut.stats.frontend_cached
    assert not cut.stats.layout_cached
    assert cut.symbol_values != cold.symbol_values

    # Taint verification rides the linked compile: it runs cold once,
    # the warm recompile answers from the cache's verify tier, and its
    # cost stays under 10% of the compile it rides on.
    linked_cold = results["_linked_cold"]
    linked_warm = results["_linked_warm"]
    assert linked_cold.verify is not None and linked_cold.verify.clean
    assert not linked_cold.stats.verify_cached
    assert linked_warm.stats.verify_cached
    assert results["verify_fraction_of_linked_cold"] < 0.10
    # The warm recompile is itself a cache lookup (microseconds), so a
    # ratio against it is noise — bound the cached verify absolutely:
    # it must stay a dict hit, never a re-run fixpoint.
    assert linked_warm.stats.verify_seconds < 1e-3

    # Warm-started branch-and-bound reaches the cold solve's answer.
    # (Objectives compared with slack far below any utility step: the
    # LP relaxation bounds carry ~1e-4 noise at this objective scale,
    # so stage-bias-level tie-breaks can differ.)
    assert bb_warm.solution.incumbent_source == "warm-start"
    assert bb_warm.symbol_values == bb_cold.symbol_values
    assert abs(bb_warm.solution.objective - bb_cold.solution.objective) < 1e-3
    assert bb_warm.solution.nodes_explored <= bb_cold.solution.nodes_explored

    payload = {k: v for k, v in results.items() if not k.startswith("_")}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")
    print(json.dumps(
        {
            "cold_seconds": round(payload["cold"]["wall_seconds"], 4),
            "warm_cache_seconds": round(
                payload["warm_cache"]["wall_seconds"], 6),
            "warm_cache_speedup": round(payload["warm_cache_speedup"], 1),
            "target_change_seconds": round(
                payload["target_change"]["wall_seconds"], 4),
            "bb_cold_nodes": payload["warm_start_ilp"]["cold"]["nodes_explored"],
            "bb_warm_nodes": payload["warm_start_ilp"]["warm"]["nodes_explored"],
        },
        indent=2,
    ))
