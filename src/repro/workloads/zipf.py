"""Zipf-distributed key workloads.

NetCache-style key-value workloads are heavily skewed; the paper's
quality experiment (Figure 4) depends only on that skew, so a seeded
Zipf sampler over a fixed key universe is the faithful synthetic
substitute for production request traces (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfGenerator", "zipf_trace"]


class ZipfGenerator:
    """Seeded sampler over keys ``1..universe`` with P(k) ∝ 1/rank^alpha.

    Uses an exact inverse-CDF table (not scipy's unbounded Zipf), so the
    key universe is finite and every key can appear.
    """

    def __init__(self, universe: int, alpha: float = 0.99, seed: int = 42):
        if universe <= 0:
            raise ValueError("universe must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.universe = universe
        self.alpha = alpha
        self.seed = seed
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = np.random.default_rng(seed)
        # Keys are assigned to ranks via a seeded shuffle so that key id
        # and popularity rank are uncorrelated (and never 0 — key 0 is the
        # empty-slot sentinel in register-based stores).
        perm_rng = np.random.default_rng(seed ^ 0x5EED)
        self._rank_to_key = perm_rng.permutation(universe) + 1

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys (vectorized)."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u)
        return self._rank_to_key[ranks]

    def hottest(self, n: int) -> np.ndarray:
        """The ``n`` most popular keys, hottest first."""
        return self._rank_to_key[:n].copy()

    def popularity(self, key: int) -> float:
        """Exact request probability of one key."""
        rank_index = int(np.where(self._rank_to_key == key)[0][0])
        prev = self._cdf[rank_index - 1] if rank_index > 0 else 0.0
        return float(self._cdf[rank_index] - prev)

    def optimal_hit_rate(self, cache_size: int) -> float:
        """Hit rate of an oracle cache holding the ``cache_size`` hottest
        keys — the upper bound any NetCache configuration can approach."""
        cache_size = min(cache_size, self.universe)
        return float(self._cdf[cache_size - 1]) if cache_size > 0 else 0.0


def zipf_trace(
    packets: int,
    universe: int = 10_000,
    alpha: float = 0.99,
    seed: int = 42,
) -> np.ndarray:
    """Convenience: one seeded Zipf key trace as an int array."""
    return ZipfGenerator(universe, alpha=alpha, seed=seed).sample(packets)
