"""Workloads with hot-set churn.

NetCache's headline challenge is *dynamic* workloads: the popular key
set drifts over time and the switch cache must follow it (the sketch
re-identifies the new hot keys, the controller replaces the stale ones).
:class:`ChurningZipf` produces a Zipf stream whose rank→key mapping is
partially reshuffled every ``phase_packets`` requests.
"""

from __future__ import annotations

import numpy as np

from .zipf import ZipfGenerator

__all__ = ["ChurningZipf"]


class ChurningZipf:
    """Zipf keys with periodic hot-set rotation.

    Every ``phase_packets`` samples, a fraction ``churn`` of the top
    ranks swaps with keys drawn from the cold tail, modeling flash
    popularity changes. Sampling stays deterministic under ``seed``.
    """

    def __init__(
        self,
        universe: int,
        alpha: float = 0.99,
        phase_packets: int = 10_000,
        churn: float = 0.3,
        hot_ranks: int = 1_000,
        seed: int = 42,
    ):
        if not 0.0 <= churn <= 1.0:
            raise ValueError("churn must be within [0, 1]")
        self.generator = ZipfGenerator(universe, alpha=alpha, seed=seed)
        self.phase_packets = phase_packets
        self.churn = churn
        self.hot_ranks = min(hot_ranks, universe)
        self._rng = np.random.default_rng(seed ^ 0xC0FFEE)
        self._since_rotation = 0
        self.rotations = 0
        self.packets_sampled = 0

    def _rotate(self) -> None:
        """Swap a churn-fraction of hot ranks with random cold keys."""
        self.rotations += 1
        mapping = self.generator._rank_to_key
        n_swap = int(self.hot_ranks * self.churn)
        if n_swap == 0 or len(mapping) <= self.hot_ranks:
            return  # rotation is a no-op (zero churn or no cold tail)
        hot_idx = self._rng.choice(self.hot_ranks, size=n_swap, replace=False)
        cold_idx = self._rng.choice(
            np.arange(self.hot_ranks, len(mapping)), size=n_swap, replace=False
        )
        mapping[hot_idx], mapping[cold_idx] = (
            mapping[cold_idx].copy(),
            mapping[hot_idx].copy(),
        )

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys, rotating the hot set on phase boundaries."""
        out = []
        remaining = count
        while remaining > 0:
            take = min(remaining, self.phase_packets - self._since_rotation)
            out.append(self.generator.sample(take))
            self._since_rotation += take
            remaining -= take
            if self._since_rotation >= self.phase_packets:
                self._rotate()
                self._since_rotation = 0
        self.packets_sampled += count
        return np.concatenate(out)

    def hottest(self, n: int) -> np.ndarray:
        """The *current* hottest keys (changes across rotations)."""
        return self.generator.hottest(n)

    def hot_set(self, n: int | None = None) -> set[int]:
        """The current hot keys as a set (defaults to ``hot_ranks`` keys) —
        what the runtime monitor compares the cache contents against."""
        return {int(k) for k in self.hottest(n or self.hot_ranks)}
