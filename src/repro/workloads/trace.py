"""Synthetic flow-level packet traces.

Heavy-tailed flow-size traces in the style of backbone captures: flow
sizes follow a bounded Pareto, packets of concurrent flows interleave,
and each packet carries flow id, byte length, and timestamp. These feed
the monitoring applications (PRECISION, ConQuest, SketchLearn), whose
behavior depends on the tail shape rather than on exact capture replay —
see DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pisa.packet import Packet

__all__ = ["FlowTrace", "synthesize_trace", "true_flow_counts"]


@dataclass
class FlowTrace:
    """A packet trace with ground truth."""

    flow_ids: np.ndarray          # per-packet flow id
    lengths: np.ndarray           # per-packet bytes
    timestamps: np.ndarray        # per-packet arrival time (seconds)
    flow_sizes: dict[int, int] = field(default_factory=dict)  # ground truth

    def __len__(self) -> int:
        return len(self.flow_ids)

    def packets(self):
        """Iterate as :class:`~repro.pisa.packet.Packet` objects."""
        for fid, length, ts in zip(self.flow_ids, self.lengths, self.timestamps):
            yield Packet(
                fields={"flow_id": int(fid)},
                length=int(length),
                timestamp=float(ts),
            )

    def heavy_flows(self, threshold: int) -> set[int]:
        """Ground-truth flows with at least ``threshold`` packets."""
        return {f for f, c in self.flow_sizes.items() if c >= threshold}


def synthesize_trace(
    flows: int = 1_000,
    mean_packets_per_flow: float = 20.0,
    pareto_shape: float = 1.3,
    max_flow_packets: int = 50_000,
    mean_packet_bytes: int = 700,
    duration: float = 1.0,
    seed: int = 7,
) -> FlowTrace:
    """Generate an interleaved heavy-tail trace.

    Flow sizes are bounded-Pareto (shape ``pareto_shape``, scaled to the
    requested mean); packets are shuffled across the duration so flows
    interleave like a real capture.
    """
    rng = np.random.default_rng(seed)
    raw = rng.pareto(pareto_shape, flows) + 1.0
    sizes = np.clip(
        np.round(raw * mean_packets_per_flow / raw.mean()).astype(np.int64),
        1,
        max_flow_packets,
    )
    flow_ids = np.repeat(np.arange(1, flows + 1, dtype=np.int64), sizes)
    order = rng.permutation(len(flow_ids))
    flow_ids = flow_ids[order]
    lengths = np.clip(
        rng.exponential(mean_packet_bytes, len(flow_ids)).astype(np.int64),
        64,
        1500,
    )
    timestamps = np.sort(rng.random(len(flow_ids))) * duration
    sizes_map = {int(f + 1): int(s) for f, s in enumerate(sizes)}
    return FlowTrace(
        flow_ids=flow_ids,
        lengths=lengths,
        timestamps=timestamps,
        flow_sizes=sizes_map,
    )


def true_flow_counts(flow_ids: np.ndarray) -> dict[int, int]:
    """Exact packet counts per flow for an id array."""
    unique, counts = np.unique(np.asarray(flow_ids), return_counts=True)
    return {int(f): int(c) for f, c in zip(unique, counts)}
