"""Synthetic workloads: Zipf key traces, churn, and flow traces."""

from .churn import ChurningZipf
from .trace import FlowTrace, synthesize_trace, true_flow_counts
from .zipf import ZipfGenerator, zipf_trace

__all__ = [
    "ChurningZipf",
    "FlowTrace",
    "synthesize_trace",
    "true_flow_counts",
    "ZipfGenerator",
    "zipf_trace",
]
