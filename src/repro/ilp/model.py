"""Lightweight mixed-integer linear programming (MILP) modeling layer.

The paper's prototype generates its layout ILP for the Gurobi Optimizer.
Gurobi is proprietary and unavailable offline, so this package provides a
small, self-contained modeling layer (variables, linear expressions,
constraints, objective) that can be handed to interchangeable exact
solvers:

* :mod:`repro.ilp.solver_scipy` — scipy's HiGHS-backed ``milp``.
* :mod:`repro.ilp.solver_bb` — a from-scratch branch-and-bound solver
  built on LP relaxations, used as a fallback and as a cross-check.

The modeling style intentionally mirrors common MILP APIs::

    m = Model("layout")
    x = m.add_var("x", vartype=VarType.BINARY)
    y = m.add_var("y", lb=0, ub=10, vartype=VarType.INTEGER)
    m.add_constr(x + 2 * y <= 7, name="cap")
    m.maximize(3 * x + y)
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "VarType",
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "Model",
    "ModelError",
]


class ModelError(Exception):
    """Raised for malformed models (bad bounds, non-linear use, etc.)."""


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Direction of a constraint relation."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Var:
    """A decision variable.

    Variables are created through :meth:`Model.add_var` so that every
    variable is registered with exactly one model. They are hashable and
    compared by identity of their ``(model_id, index)`` pair, which keeps
    expression arithmetic cheap.
    """

    name: str
    index: int
    lb: float
    ub: float
    vartype: VarType
    model_id: int

    def __hash__(self) -> int:  # index is unique within a model
        return hash((self.model_id, self.index))

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, Var):
            return self.model_id == other.model_id and self.index == other.index
        # ``var == expr`` builds an equality constraint, like ``expr == expr``.
        if isinstance(other, (LinExpr, int, float)):
            return LinExpr.from_term(self) == other
        return NotImplemented

    # -- arithmetic lifts to LinExpr -------------------------------------
    def __add__(self, other):
        return LinExpr.from_term(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return LinExpr.from_term(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, coef):
        return LinExpr.from_term(self) * coef

    __rmul__ = __mul__

    def __neg__(self):
        return LinExpr.from_term(self) * -1.0

    def __le__(self, other):
        return LinExpr.from_term(self) <= other

    def __ge__(self, other):
        return LinExpr.from_term(self) >= other

    def __repr__(self) -> str:
        return f"Var({self.name})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``.

    Supports ``+``, ``-``, scalar ``*``, and comparisons (which produce
    :class:`Constraint` objects). Non-linear products raise
    :class:`ModelError` at construction time, which surfaces modeling bugs
    early rather than at solve time.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Var, float] | None = None, constant: float = 0.0):
        self.terms: dict[Var, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @classmethod
    def from_term(cls, var: Var, coef: float = 1.0) -> "LinExpr":
        return cls({var: float(coef)})

    @classmethod
    def total(cls, items: Iterable["LinExpr | Var | float"]) -> "LinExpr":
        """Sum an iterable of expressions/vars/constants efficiently."""
        out = cls()
        for item in items:
            out += item
        return out

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # -- arithmetic -------------------------------------------------------
    def _iadd(self, other, sign: float) -> "LinExpr":
        if isinstance(other, (int, float)):
            self.constant += sign * other
        elif isinstance(other, Var):
            self.terms[other] = self.terms.get(other, 0.0) + sign
        elif isinstance(other, LinExpr):
            for var, coef in other.terms.items():
                self.terms[var] = self.terms.get(var, 0.0) + sign * coef
            self.constant += sign * other.constant
        else:
            raise ModelError(f"cannot combine LinExpr with {type(other).__name__}")
        return self

    def __add__(self, other):
        return self.copy()._iadd(other, 1.0)

    __radd__ = __add__

    def __iadd__(self, other):
        return self._iadd(other, 1.0)

    def __sub__(self, other):
        return self.copy()._iadd(other, -1.0)

    def __isub__(self, other):
        return self._iadd(other, -1.0)

    def __rsub__(self, other):
        return (self * -1.0)._iadd(other, 1.0)

    def __mul__(self, coef):
        if not isinstance(coef, (int, float)):
            raise ModelError("LinExpr can only be scaled by a scalar (model is linear)")
        out = LinExpr(constant=self.constant * coef)
        out.terms = {v: c * coef for v, c in self.terms.items()}
        return out

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- relations --------------------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, Sense.EQ)

    def __hash__(self):  # LinExpr is mutable; identity hash is intentional
        return id(self)

    # -- evaluation and display -------------------------------------------
    def value(self, assignment: Mapping[Var, float]) -> float:
        """Evaluate under a variable assignment (missing vars count as 0)."""
        return self.constant + sum(
            coef * assignment.get(var, 0.0) for var, coef in self.terms.items()
        )

    def variables(self) -> list[Var]:
        return list(self.terms)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` with an optional name."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    def satisfied(self, assignment: Mapping[Var, float], tol: float = 1e-6) -> bool:
        """Check the constraint under an assignment, within tolerance."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} 0"


@dataclass
class Objective:
    """Objective function; the model normalizes to maximization.

    ``terms`` optionally names linear sub-expressions of ``expr`` (the
    linker labels each module's weighted utility contribution) so a
    solved assignment can be broken down per contributor.
    """

    expr: LinExpr = field(default_factory=LinExpr)
    maximize: bool = True
    terms: dict[str, LinExpr] = field(default_factory=dict)

    def breakdown(self, assignment) -> dict[str, float]:
        """Value of each named term under a solution assignment."""
        return {name: expr.value(assignment)
                for name, expr in self.terms.items()}


class Model:
    """A mixed-integer linear program.

    Holds variables, constraints and an objective. Solving is delegated to
    the backends in :mod:`repro.ilp.solver`.
    """

    _next_model_id = 0

    def __init__(self, name: str = "model"):
        self.name = name
        self.model_id = Model._next_model_id
        Model._next_model_id += 1
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective = Objective()
        self._names: set[str] = set()

    # -- construction -------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Var:
        """Create and register a decision variable.

        Binary variables ignore ``lb``/``ub`` and use the 0/1 domain.
        Duplicate names get a numeric suffix so debug output stays readable.
        """
        if vartype is VarType.BINARY:
            lb, ub = 0.0, 1.0
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        if name in self._names:
            name = f"{name}#{len(self.variables)}"
        self._names.add(name)
        var = Var(name, len(self.variables), float(lb), float(ub), vartype, self.model_id)
        self.variables.append(var)
        return var

    def add_vars(self, names: Iterable[str], **kwargs) -> list[Var]:
        """Create several variables with shared domain settings."""
        return [self.add_var(name, **kwargs) for name in names]

    def add_constr(self, constr: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constr, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (use <=, >=, == on expressions); "
                f"got {type(constr).__name__}"
            )
        for var in constr.expr.terms:
            if var.model_id != self.model_id:
                raise ModelError(f"constraint uses variable {var.name!r} from another model")
        if name:
            constr.name = name
        self.constraints.append(constr)
        return constr

    def maximize(self, expr: LinExpr | Var,
                 terms: dict[str, LinExpr] | None = None) -> None:
        if isinstance(expr, Var):
            expr = LinExpr.from_term(expr)
        self.objective = Objective(expr, maximize=True, terms=dict(terms or {}))

    def minimize(self, expr: LinExpr | Var) -> None:
        if isinstance(expr, Var):
            expr = LinExpr.from_term(expr)
        self.objective = Objective(expr, maximize=False)

    # -- introspection --------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def integer_variables(self) -> list[Var]:
        return [v for v in self.variables if v.vartype is not VarType.CONTINUOUS]

    def is_feasible(self, assignment: Mapping[Var, float], tol: float = 1e-6) -> bool:
        """Check an assignment against bounds, integrality, and constraints."""
        for var in self.variables:
            val = assignment.get(var, 0.0)
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vartype is not VarType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        return all(c.satisfied(assignment, tol) for c in self.constraints)

    def to_matrix_form(self):
        """Export ``(c, A, lo, hi, bounds, integrality)`` numpy arrays.

        Returns the model as dense numpy structures suitable for
        ``scipy.optimize.milp``/``linprog``: objective vector ``c`` (for a
        *maximization* written as minimize ``-c``), a single constraint
        matrix ``A`` with row bounds ``lo <= A x <= hi``, per-variable
        bounds, and an integrality vector.
        """
        import numpy as np

        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.expr.terms.items():
            c[var.index] = coef
        if self.objective.maximize:
            c = -c

        rows = len(self.constraints)
        a = np.zeros((rows, n))
        lo = np.full(rows, -np.inf)
        hi = np.full(rows, np.inf)
        for r, constr in enumerate(self.constraints):
            for var, coef in constr.expr.terms.items():
                a[r, var.index] = coef
            rhs = -constr.expr.constant
            if constr.sense is Sense.LE:
                hi[r] = rhs
            elif constr.sense is Sense.GE:
                lo[r] = rhs
            else:
                lo[r] = hi[r] = rhs

        lbs = np.array([v.lb for v in self.variables])
        ubs = np.array([v.ub for v in self.variables])
        integrality = np.array(
            [0 if v.vartype is VarType.CONTINUOUS else 1 for v in self.variables]
        )
        return c, a, lo, hi, (lbs, ubs), integrality

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"constrs={self.num_constraints})"
        )
