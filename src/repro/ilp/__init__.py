"""Generic mixed-integer linear programming substrate.

The P4All compiler core (:mod:`repro.core`) expresses the Figure-10 layout
problem through this package. It provides:

* :class:`Model`, :class:`Var`, :class:`LinExpr`, :class:`Constraint` —
  a small modeling layer (:mod:`repro.ilp.model`);
* :func:`solve` — backend dispatch over scipy-HiGHS and a from-scratch
  branch-and-bound solver (:mod:`repro.ilp.solver`).
"""

from .lpwriter import model_to_lp, write_lp
from .model import Constraint, LinExpr, Model, ModelError, Sense, Var, VarType
from .solution import Solution, SolveStatus, SolverError
from .solver import available_backends, solve

__all__ = [
    "model_to_lp",
    "write_lp",
    "Constraint",
    "LinExpr",
    "Model",
    "ModelError",
    "Sense",
    "Var",
    "VarType",
    "Solution",
    "SolveStatus",
    "SolverError",
    "available_backends",
    "solve",
]
