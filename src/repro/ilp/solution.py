"""Solver-independent solution objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from .model import Model, Var

__all__ = ["SolveStatus", "Solution", "SolverError"]


class SolverError(Exception):
    """Raised when a backend cannot process the model at all."""


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: A feasible (heuristic or incumbent) solution without an optimality
    #: proof — what the greedy fallback path and accepted timeout
    #: incumbents carry.
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"
    ERROR = "error"

    @property
    def ok(self) -> bool:
        return self is SolveStatus.OPTIMAL

    @property
    def usable(self) -> bool:
        """True when the status can legitimately carry variable values."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                        SolveStatus.TIMEOUT)


@dataclass
class Solution:
    """Result of solving a :class:`~repro.ilp.model.Model`.

    ``values`` maps variables to (already-rounded, for integer variables)
    solution values; ``objective`` is the objective value in the model's
    own sense (i.e., the maximized value for maximization models).
    """

    status: SolveStatus
    objective: float = 0.0
    values: Mapping[Var, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    backend: str = ""
    nodes_explored: int = 0
    #: Where the final incumbent came from: ``"warm-start"`` (a caller-
    #: provided seed the search never improved on), ``"rounding"`` (the
    #: rounding heuristic), ``"search"`` (an integral LP relaxation), or
    #: ``""`` for backends that don't track provenance.
    incumbent_source: str = ""

    @property
    def has_incumbent(self) -> bool:
        """True when the solver produced usable variable values.

        A :attr:`SolveStatus.TIMEOUT` solution *with* an incumbent is a
        feasible (if possibly sub-optimal) layout; one *without* carries
        no assignment at all and must not be decoded into a program.
        Callers branch on this instead of string-matching error text.
        """
        return bool(self.values) and self.status.usable

    def __getitem__(self, var: Var) -> float:
        return self.values[var]

    def value(self, var: Var, default: float = 0.0) -> float:
        return self.values.get(var, default)

    def int_value(self, var: Var, default: int = 0) -> int:
        return int(round(self.values.get(var, default)))

    def check(self, model: Model, tol: float = 1e-5) -> bool:
        """Verify this solution is feasible for ``model``."""
        return self.status.ok and model.is_feasible(self.values, tol)

    def __repr__(self) -> str:
        return (
            f"Solution({self.status.value}, obj={self.objective:.6g}, "
            f"backend={self.backend!r}, {self.solve_seconds * 1e3:.1f} ms)"
        )
