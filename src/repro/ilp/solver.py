"""Backend dispatch for MILP solving.

``solve(model)`` picks the best available exact backend: scipy's HiGHS
MILP engine when importable, otherwise the built-in branch and bound.
Callers can force a backend by name, which the cross-check tests and the
solver-ablation benchmark use.
"""

from __future__ import annotations

from ..obs import metrics as obs_metrics
from ..obs import trace
from .model import Model
from .solution import Solution, SolverError

__all__ = ["solve", "available_backends"]

_BACKENDS = ("scipy", "bb")


def available_backends() -> tuple[str, ...]:
    """Names of usable backends, preferred first."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover
        return ("bb",)
    return _BACKENDS


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    warm_start: "dict | None" = None,
) -> Solution:
    """Solve a model with the chosen backend.

    ``backend`` is ``"auto"`` (prefer HiGHS), ``"scipy"``, or ``"bb"``.
    ``warm_start`` is an optional feasible assignment (Var → value) used
    to seed the incumbent; backends without warm-start support (scipy's
    ``milp`` exposes none) accept and ignore it.
    """
    if backend == "auto":
        backend = available_backends()[0]
    if backend in ("scipy", "bb"):
        with trace.span(
            "ilp.solve",
            backend=backend,
            variables=model.num_variables,
            constraints=model.num_constraints,
            time_limit=time_limit,
            warm_start=warm_start is not None,
        ) as span:
            if backend == "scipy":
                from .solver_scipy import solve_scipy

                solution = solve_scipy(
                    model, time_limit=time_limit, warm_start=warm_start
                )
            else:
                from .solver_bb import solve_branch_and_bound

                solution = solve_branch_and_bound(
                    model, time_limit=time_limit, warm_start=warm_start
                )
            span.set_attrs(
                status=solution.status.value,
                nodes_explored=solution.nodes_explored,
                solve_seconds=solution.solve_seconds,
            )
        _record_solve_metrics(solution)
        return solution
    raise SolverError(
        f"unknown ILP backend {backend!r}; options: auto, scipy, bb "
        "(the compile driver additionally accepts 'greedy', which bypasses "
        "the ILP entirely)"
    )


def _record_solve_metrics(solution: Solution) -> None:
    """Per-solve counters/histograms on the global registry."""
    backend = solution.backend or "unknown"
    obs_metrics.counter(
        "p4all_ilp_solves_total",
        help="ILP solves, by backend and terminal status.",
        labels=("backend", "status"),
    ).inc(backend=backend, status=solution.status.value)
    obs_metrics.histogram(
        "p4all_ilp_solve_seconds",
        help="Wall time of one ILP solve.",
        labels=("backend",),
    ).observe(solution.solve_seconds, backend=backend)
    if solution.nodes_explored:
        obs_metrics.counter(
            "p4all_ilp_nodes_explored_total",
            help="Branch-and-bound / MIP nodes explored across solves.",
            labels=("backend",),
        ).inc(solution.nodes_explored, backend=backend)
