"""Backend dispatch for MILP solving.

``solve(model)`` picks the best available exact backend: scipy's HiGHS
MILP engine when importable, otherwise the built-in branch and bound.
Callers can force a backend by name, which the cross-check tests and the
solver-ablation benchmark use.
"""

from __future__ import annotations

from .model import Model
from .solution import Solution, SolverError

__all__ = ["solve", "available_backends"]

_BACKENDS = ("scipy", "bb")


def available_backends() -> tuple[str, ...]:
    """Names of usable backends, preferred first."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover
        return ("bb",)
    return _BACKENDS


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    warm_start: "dict | None" = None,
) -> Solution:
    """Solve a model with the chosen backend.

    ``backend`` is ``"auto"`` (prefer HiGHS), ``"scipy"``, or ``"bb"``.
    ``warm_start`` is an optional feasible assignment (Var → value) used
    to seed the incumbent; backends without warm-start support (scipy's
    ``milp`` exposes none) accept and ignore it.
    """
    if backend == "auto":
        backend = available_backends()[0]
    if backend == "scipy":
        from .solver_scipy import solve_scipy

        return solve_scipy(model, time_limit=time_limit, warm_start=warm_start)
    if backend == "bb":
        from .solver_bb import solve_branch_and_bound

        return solve_branch_and_bound(
            model, time_limit=time_limit, warm_start=warm_start
        )
    raise SolverError(
        f"unknown ILP backend {backend!r}; options: auto, scipy, bb "
        "(the compile driver additionally accepts 'greedy', which bypasses "
        "the ILP entirely)"
    )
