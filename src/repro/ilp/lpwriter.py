"""CPLEX-LP-format export for MILP models.

``write_lp``/``model_to_lp`` serialize a :class:`~repro.ilp.model.Model`
in the widely-supported LP text format, so layout ILPs can be inspected
by hand or loaded into external solvers (Gurobi, CPLEX, HiGHS CLI, ...)
— handy when debugging a formulation or comparing against the paper's
Gurobi setup.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

from .model import Model, Sense, VarType

__all__ = ["model_to_lp", "write_lp"]

_NAME_RE = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    """LP identifiers: alphanumerics and underscores, not digit-initial."""
    clean = _NAME_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "v_" + clean
    return clean


def _unique_names(model: Model) -> dict:
    seen: dict[str, int] = {}
    names = {}
    for var in model.variables:
        base = _sanitize(var.name)
        count = seen.get(base, 0)
        seen[base] = count + 1
        names[var] = base if count == 0 else f"{base}__{count}"
    return names


def _expr_text(terms, names) -> str:
    # Terms sorted by emitted name: LinExpr term dicts are built in
    # whatever order the modeling code touched variables, which is not a
    # property the serialized text should expose — sorted output makes
    # two builds of the same model byte-identical, so the LP text can
    # serve as a model fingerprint.
    parts = []
    for var, coef in sorted(terms.items(), key=lambda kv: names[kv[0]]):
        if coef == 0:
            continue
        sign = "-" if coef < 0 else "+"
        mag = abs(coef)
        coef_text = "" if mag == 1 else f"{mag:.12g} "
        parts.append(f"{sign} {coef_text}{names[var]}")
    if not parts:
        return "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def model_to_lp(model: Model) -> str:
    """Serialize the model in CPLEX LP format (objective in the model's
    own sense; constraint constants folded into the right-hand side).

    The output is deterministic: terms within every expression and the
    variables of the Bounds/General/Binary sections are emitted in
    sorted-name order, independent of construction order and
    ``PYTHONHASHSEED``. Constraints keep model order (their ``_i``
    suffix is the model index, which is already stable)."""
    names = _unique_names(model)
    lines = [f"\\ {model.name}"]
    lines.append("Maximize" if model.objective.maximize else "Minimize")
    lines.append(f" obj: {_expr_text(model.objective.expr.terms, names)}")
    lines.append("Subject To")
    for i, constr in enumerate(model.constraints):
        label = _sanitize(constr.name) if constr.name else f"c{i}"
        rhs = -constr.expr.constant
        op = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[constr.sense]
        lines.append(
            f" {label}_{i}: {_expr_text(constr.expr.terms, names)} {op} {rhs:.12g}"
        )
    lines.append("Bounds")
    for var in sorted(model.variables, key=lambda v: names[v]):
        name = names[var]
        lo = "-inf" if math.isinf(var.lb) else f"{var.lb:.12g}"
        hi = "+inf" if math.isinf(var.ub) else f"{var.ub:.12g}"
        lines.append(f" {lo} <= {name} <= {hi}")
    general = sorted(
        names[v] for v in model.variables if v.vartype is VarType.INTEGER
    )
    binary = sorted(
        names[v] for v in model.variables if v.vartype is VarType.BINARY
    )
    if general:
        lines.append("General")
        lines.append(" " + " ".join(general))
    if binary:
        lines.append("Binary")
        lines.append(" " + " ".join(binary))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(model: Model, path: str | Path) -> None:
    """Write the model to an ``.lp`` file."""
    Path(path).write_text(model_to_lp(model))
