"""MILP backend on top of :func:`scipy.optimize.milp` (HiGHS).

This is the primary solver: HiGHS is an exact branch-and-cut MILP solver,
standing in for the Gurobi Optimizer the paper's prototype invoked.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs import trace
from .model import Model, VarType
from .solution import Solution, SolveStatus, SolverError

__all__ = ["solve_scipy"]

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIMEOUT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
}


def solve_scipy(
    model: Model,
    time_limit: float | None = None,
    warm_start: dict | None = None,
) -> Solution:
    """Solve ``model`` exactly with scipy's HiGHS MILP solver.

    Integer variable values in the returned solution are rounded to the
    nearest integer (HiGHS returns them within tolerance of integrality).
    ``warm_start`` is accepted for backend interchangeability but unused:
    ``scipy.optimize.milp`` exposes no incumbent-seeding API.
    """
    del warm_start
    try:
        from scipy.optimize import LinearConstraint, milp
        from scipy.optimize import Bounds
    except ImportError as exc:  # pragma: no cover - scipy is a hard dependency
        raise SolverError("scipy.optimize.milp unavailable") from exc

    c, a, lo, hi, (lbs, ubs), integrality = model.to_matrix_form()
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    constraints = [LinearConstraint(a, lo, hi)] if len(model.constraints) else []
    started = time.perf_counter()
    with trace.span(
        "ilp.scipy",
        variables=len(model.variables),
        time_limit=time_limit,
    ) as span:
        result = milp(
            c=c,
            constraints=constraints,
            bounds=Bounds(lbs, ubs),
            integrality=integrality,
            options=options,
        )
        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
        span.set_attrs(
            status=status.value,
            nodes_explored=int(getattr(result, "mip_node_count", 0) or 0),
        )
    elapsed = time.perf_counter() - started
    if result.x is None:
        return Solution(status=status, solve_seconds=elapsed, backend="scipy-highs")

    values = {}
    for var in model.variables:
        val = float(result.x[var.index])
        if var.vartype is not VarType.CONTINUOUS:
            val = float(round(val))
        values[var] = val
    objective = model.objective.expr.value(values)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solve_seconds=elapsed,
        backend="scipy-highs",
        nodes_explored=int(getattr(result, "mip_node_count", 0) or 0),
    )
