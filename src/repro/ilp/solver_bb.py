"""From-scratch branch-and-bound MILP solver.

Implements classic LP-relaxation branch and bound:

* each node is the model plus tightened variable bounds;
* the LP relaxation is solved with scipy's HiGHS simplex (``linprog``);
* integer-infeasible relaxations are split on a most-fractional variable;
* a best-bound node order with incumbent pruning keeps the tree small;
* a rounding heuristic seeds the incumbent early.

This is not meant to beat HiGHS's own MILP engine — it exists as an
independent exact solver so the layout ILPs can be cross-checked
(``tests/ilp/test_cross_check.py``) and so the system has no single
proprietary-ish dependency in its critical path, mirroring how the paper's
design is solver-agnostic even though its prototype called Gurobi.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import trace
from .model import Model, VarType
from .solution import Solution, SolveStatus, SolverError

__all__ = ["solve_branch_and_bound"]

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by LP bound (best-first)."""

    priority: float
    seq: int
    lbs: np.ndarray = field(compare=False)
    ubs: np.ndarray = field(compare=False)


def _solve_lp(c, a, lo, hi, lbs, ubs):
    """Solve the LP relaxation; returns (status, x, objective)."""
    from scipy.optimize import linprog

    a_ub_rows, b_ub = [], []
    a_eq_rows, b_eq = [], []
    for r in range(a.shape[0]):
        row = a[r]
        if lo[r] == hi[r] and np.isfinite(lo[r]):
            a_eq_rows.append(row)
            b_eq.append(lo[r])
            continue
        if np.isfinite(hi[r]):
            a_ub_rows.append(row)
            b_ub.append(hi[r])
        if np.isfinite(lo[r]):
            a_ub_rows.append(-row)
            b_ub.append(-lo[r])

    res = linprog(
        c,
        A_ub=np.array(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq_rows) if a_eq_rows else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lbs, ubs)),
        method="highs",
    )
    if res.status == 2:
        return SolveStatus.INFEASIBLE, None, math.inf
    if res.status == 3:
        return SolveStatus.UNBOUNDED, None, -math.inf
    if res.status != 0:
        return SolveStatus.ERROR, None, math.inf
    return SolveStatus.OPTIMAL, res.x, res.fun


def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    best, best_gap = None, _INT_TOL
    for i in int_idx:
        gap = abs(x[i] - round(x[i]))
        frac_gap = min(x[i] - math.floor(x[i]), math.ceil(x[i]) - x[i])
        if gap > _INT_TOL and frac_gap > best_gap:
            best, best_gap = i, frac_gap
    return best


def _try_rounding(x, int_idx, model: Model, lbs, ubs):
    """Cheap rounding heuristic: round integers, check full feasibility."""
    candidate = x.copy()
    for i in int_idx:
        candidate[i] = round(candidate[i])
        candidate[i] = min(max(candidate[i], lbs[i]), ubs[i])
    values = {var: float(candidate[var.index]) for var in model.variables}
    if model.is_feasible(values, tol=1e-6):
        return values
    return None


def solve_branch_and_bound(
    model: Model,
    time_limit: float | None = None,
    max_nodes: int = 200_000,
    warm_start: dict | None = None,
) -> Solution:
    """Traced wrapper over :func:`_solve_branch_and_bound` — the span
    records the search's size and outcome (nodes explored, incumbent
    source) for the observability layer."""
    with trace.span(
        "ilp.bb",
        variables=len(model.variables),
        time_limit=time_limit,
        warm_start=warm_start is not None,
    ) as span:
        solution = _solve_branch_and_bound(
            model, time_limit=time_limit, max_nodes=max_nodes,
            warm_start=warm_start,
        )
        span.set_attrs(
            status=solution.status.value,
            nodes_explored=solution.nodes_explored,
            incumbent_source=solution.incumbent_source,
        )
        return solution


def _solve_branch_and_bound(
    model: Model,
    time_limit: float | None = None,
    max_nodes: int = 200_000,
    warm_start: dict | None = None,
) -> Solution:
    """Solve ``model`` exactly via LP-based branch and bound.

    Raises :class:`SolverError` only on unusable models; resource
    exhaustion is reported through :class:`SolveStatus.TIMEOUT` with the
    best incumbent found so far.

    ``warm_start`` (Var → value) seeds the incumbent before the search
    begins, so nodes whose LP bound cannot beat the seeded objective are
    pruned instead of explored — the previous layout is a ready-made
    lower bound on a recompile. Infeasible seeds are silently ignored
    (the search simply starts cold), so callers may pass best-effort
    re-encodings of stale solutions.
    """
    c, a, lo, hi, (lbs0, ubs0), integrality = model.to_matrix_form()
    int_idx = np.nonzero(integrality)[0]

    for var in model.variables:
        if var.vartype is not VarType.CONTINUOUS and not (
            np.isfinite(var.lb) and np.isfinite(var.ub)
        ):
            raise SolverError(
                f"branch and bound needs finite bounds on integer var {var.name!r}"
            )

    started = time.perf_counter()
    seq = itertools.count()
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf  # minimization objective (c already negated for max)
    incumbent_source = ""
    nodes_explored = 0

    if warm_start is not None and model.is_feasible(warm_start, tol=1e-6):
        arr = np.array([float(warm_start.get(v, 0.0)) for v in model.variables])
        arr[int_idx] = np.round(arr[int_idx])
        incumbent_x = arr
        incumbent_obj = float(c @ arr)
        incumbent_source = "warm-start"

    status0, x0, obj0 = _solve_lp(c, a, lo, hi, lbs0, ubs0)
    if status0 is SolveStatus.INFEASIBLE:
        return Solution(SolveStatus.INFEASIBLE, backend="bb")
    if status0 is SolveStatus.UNBOUNDED:
        return Solution(SolveStatus.UNBOUNDED, backend="bb")
    if status0 is SolveStatus.ERROR:
        return Solution(SolveStatus.ERROR, backend="bb")

    heap: list[_Node] = [_Node(obj0, next(seq), lbs0.copy(), ubs0.copy())]
    timed_out = False

    while heap:
        if time_limit is not None and time.perf_counter() - started > time_limit:
            timed_out = True
            break
        if nodes_explored >= max_nodes:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.priority >= incumbent_obj - 1e-9:
            continue  # bound: cannot beat incumbent
        status, x, obj = _solve_lp(c, a, lo, hi, node.lbs, node.ubs)
        nodes_explored += 1
        if status is not SolveStatus.OPTIMAL or obj >= incumbent_obj - 1e-9:
            continue

        branch_var = _most_fractional(x, int_idx)
        if branch_var is None:
            # Integral solution: round residual noise and accept.
            snapped = x.copy()
            snapped[int_idx] = np.round(snapped[int_idx])
            incumbent_x, incumbent_obj = snapped, obj
            incumbent_source = "search"
            continue

        rounded = _try_rounding(x, int_idx, model, node.lbs, node.ubs)
        if rounded is not None:
            arr = np.array([rounded[v] for v in model.variables])
            robj = float(c @ arr)
            if robj < incumbent_obj:
                incumbent_x, incumbent_obj = arr, robj
                incumbent_source = "rounding"

        pivot = x[branch_var]
        down_ub = node.ubs.copy()
        down_ub[branch_var] = math.floor(pivot)
        up_lb = node.lbs.copy()
        up_lb[branch_var] = math.ceil(pivot)
        if down_ub[branch_var] >= node.lbs[branch_var]:
            heapq.heappush(heap, _Node(obj, next(seq), node.lbs.copy(), down_ub))
        if up_lb[branch_var] <= node.ubs[branch_var]:
            heapq.heappush(heap, _Node(obj, next(seq), up_lb, node.ubs.copy()))

    elapsed = time.perf_counter() - started
    if incumbent_x is None:
        status = SolveStatus.TIMEOUT if timed_out else SolveStatus.INFEASIBLE
        return Solution(status, solve_seconds=elapsed, backend="bb",
                        nodes_explored=nodes_explored)

    values = {}
    for var in model.variables:
        val = float(incumbent_x[var.index])
        if var.vartype is not VarType.CONTINUOUS:
            val = float(round(val))
        values[var] = val
    return Solution(
        status=SolveStatus.TIMEOUT if timed_out else SolveStatus.OPTIMAL,
        objective=model.objective.expr.value(values),
        values=values,
        solve_seconds=elapsed,
        backend="bb",
        nodes_explored=nodes_explored,
        incumbent_source=incumbent_source,
    )
