"""A small Prometheus-style metrics registry.

Three instrument kinds, all label-aware and thread-safe:

* :class:`Counter` — monotone (cache hits, packets processed, solver
  nodes explored, reconfiguration outcomes);
* :class:`Gauge` — a value that goes both ways (per-stage ALU/memory
  occupancy of the live layout, windowed hit rate);
* :class:`Histogram` — cumulative-bucket distributions (ILP solve
  seconds, reconfiguration latency).

Instruments are registered once by name on a :class:`MetricsRegistry`
(re-registration with the same shape returns the same object, so
call sites can re-declare instead of threading references around), and
the whole registry renders to the Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`) — the textfile-collector
contract, validated by
:func:`repro.obs.export.validate_prometheus_text`.

Updates are a dict write under a lock — cheap enough to leave always
on; hot paths keep them off the per-packet path by updating per batch.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricError"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavored, like Prometheus').
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class MetricError(ValueError):
    """Bad metric name, labels, or conflicting re-registration."""


def _escape(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Common machinery: name/label validation and per-labelset storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = ()):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._values: dict[tuple, Any] = {}

    def _key(self, label_values: dict[str, Any]) -> tuple:
        if set(label_values) != set(self.labels):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[label]) for label in self.labels)

    def _label_str(self, key: tuple) -> str:
        if not self.labels:
            return ""
        inner = ",".join(
            f'{label}="{_escape(value)}"'
            for label, value in zip(self.labels, key)
        )
        return "{" + inner + "}"

    def samples(self) -> list[tuple[str, str, float]]:
        """``(name, label_str, value)`` rows for the text exposition."""
        with self._lock:
            return [
                (self.name, self._label_str(key), float(value))
                for key, value in sorted(self._values.items())
            ]

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "labels": list(self.labels),
                "values": {",".join(k) if k else "": v
                           for k, v in self._values.items()},
            }


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **label_values: Any) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **label_values: Any) -> float:
        key = self._key(label_values)
        with self._lock:
            return float(self._values.get(key, 0))


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **label_values: Any) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **label_values: Any) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **label_values: Any) -> None:
        self.inc(-amount, **label_values)

    def value(self, **label_values: Any) -> float:
        key = self._key(label_values)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **label_values: Any) -> None:
        key = self._key(label_values)
        value = float(value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * len(self.buckets),
                         "sum": 0.0, "count": 0}
                self._values[key] = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][i] += 1
            state["sum"] += value
            state["count"] += 1

    def merge_state(self, state: dict[str, Any], **label_values: Any) -> None:
        """Fold a foreign ``{"counts", "sum", "count"}`` state in,
        bucket-wise. Cross-process aggregation: a worker ships its
        histogram state and the parent merges it here."""
        counts = state["counts"]
        if len(counts) != len(self.buckets):
            raise MetricError(
                f"histogram {self.name!r} merge: {len(counts)} buckets "
                f"shipped, {len(self.buckets)} registered"
            )
        key = self._key(label_values)
        with self._lock:
            mine = self._values.get(key)
            if mine is None:
                mine = {"counts": [0] * len(self.buckets),
                        "sum": 0.0, "count": 0}
                self._values[key] = mine
            for i, c in enumerate(counts):
                mine["counts"][i] += c
            mine["sum"] += state["sum"]
            mine["count"] += state["count"]

    def snapshot(self, **label_values: Any) -> dict[str, Any]:
        key = self._key(label_values)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                return {"counts": [0] * len(self.buckets),
                        "sum": 0.0, "count": 0}
            return {"counts": list(state["counts"]),
                    "sum": state["sum"], "count": state["count"]}

    def samples(self) -> list[tuple[str, str, float]]:
        rows: list[tuple[str, str, float]] = []
        with self._lock:
            for key, state in sorted(self._values.items()):
                base = self._label_str(key)
                joiner = "," if base else ""
                stripped = base[1:-1] if base else ""
                for bound, count in zip(self.buckets, state["counts"]):
                    le = _format_value(bound)
                    labels = "{" + stripped + joiner + f'le="{le}"' + "}"
                    rows.append((self.name + "_bucket", labels, float(count)))
                inf_labels = "{" + stripped + joiner + 'le="+Inf"' + "}"
                rows.append((self.name + "_bucket", inf_labels,
                             float(state["count"])))
                rows.append((self.name + "_sum", base, float(state["sum"])))
                rows.append((self.name + "_count", base,
                             float(state["count"])))
        return rows

    def to_dict(self) -> dict[str, Any]:
        out = super().to_dict()
        out["buckets"] = list(self.buckets)
        return out


class MetricsRegistry:
    """Owns a namespace of instruments and renders them together."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, labels, **kwargs):
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labels != labels:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labels}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._register(Histogram, name, help, labels, buckets=buckets)
        return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Forget every instrument (tests and fresh CLI invocations)."""
        with self._lock:
            self._metrics.clear()

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (textfile
        collector contract: ``# HELP`` / ``# TYPE`` then samples)."""
        lines: list[str] = []
        for metric in self.collect():
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, label_str, value in metric.samples():
                lines.append(f"{name}{label_str} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> dict[str, Any]:
        return {m.name: m.to_dict() for m in self.collect()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"
