"""Live fleet dashboard: backs ``p4all top``.

:class:`TopDashboard` renders one frame of fleet / pipeline / tenant
state straight from the live :class:`~repro.obs.metrics.MetricsRegistry`
— no trace file, no scraping. Counters become rates by differencing
consecutive renders; gauges and SLO EWMAs are shown as-is. The CLI
driver (:func:`run_top`) embeds a fabric or elastic-runtime scenario
and repaints a frame at every monitoring window by subscribing to the
telemetry bus, so ``p4all top`` is a self-contained demo of the whole
observability plane: worker metrics merged cross-process, SLO
violations surfacing as they fire, and the flight recorder armed
underneath.

The dashboard reads only public registry state (metric ``to_dict``
snapshots), so it also works against a registry rebuilt from another
process's shipped deltas.
"""

from __future__ import annotations

import sys
import time

__all__ = ["TopDashboard", "run_top"]


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "█" * filled + "·" * (width - filled)


class TopDashboard:
    """Renders the registry as a framed multi-section terminal page.

    Stateful only for rate computation: each :meth:`render` snapshots
    every counter sample and differences against the previous frame's
    snapshot over the elapsed wall time.
    """

    def __init__(self, registry=None, width: int = 78):
        if registry is None:
            from . import metrics as registry  # the global registry
        self.registry = registry
        self.width = width
        self.frames = 0
        self._prev: dict[tuple[str, str], float] = {}
        self._prev_t: float | None = None

    # -- registry access ---------------------------------------------------------
    def _samples(self, name: str) -> dict[str, float]:
        """``label_key -> value`` for one metric (empty if unregistered).

        Label keys are the comma-joined label values, matching the
        metric's own ``to_dict`` encoding."""
        metric = self.registry.get(name)
        if metric is None:
            return {}
        values = metric.to_dict()["values"]
        if metric.kind == "histogram":
            return {k: float(v["count"]) for k, v in values.items()}
        return {k: float(v) for k, v in values.items()}

    def _hist_mean(self, name: str) -> float | None:
        metric = self.registry.get(name)
        if metric is None or metric.kind != "histogram":
            return None
        total_sum = 0.0
        total_count = 0
        for state in metric.to_dict()["values"].values():
            total_sum += state["sum"]
            total_count += state["count"]
        if not total_count:
            return None
        return total_sum / total_count

    def _rate(self, name: str, key: str, value: float,
              dt: float | None) -> str:
        prev = self._prev.get((name, key))
        if dt is None or prev is None or dt <= 0:
            return ""
        return f" ({(value - prev) / dt:,.0f}/s)"

    # -- sections ----------------------------------------------------------------
    def _rule(self, title: str) -> str:
        body = f"── {title} "
        return body + "─" * max(self.width - len(body), 0)

    def _fleet_lines(self, dt: float | None) -> list[str]:
        lines: list[str] = []
        per_switch = self._samples("p4all_fabric_packets_total")
        reconfigs = self._samples("p4all_fleet_reconfigs_total")
        migrations = self._samples("p4all_fleet_migrations_total")
        for switch in sorted(per_switch):
            pkts = per_switch[switch]
            # label order: (switch, cause, outcome)
            nrec = sum(v for k, v in reconfigs.items()
                       if k.split(",")[0] == switch)
            extra = f"  reconfigs {int(nrec)}" if nrec else ""
            lines.append(
                f"  {switch:<10} packets {_fmt_num(pkts):>10}"
                f"{self._rate('p4all_fabric_packets_total', switch, pkts, dt)}"
                f"{extra}"
            )
        hit = self._samples("p4all_fabric_window_hit_rate").get("")
        if hit is not None:
            lines.append(f"  window hit rate {hit:6.3f}  {_bar(hit)}")
        if migrations:
            parts = ", ".join(
                f"{k.replace(',', '→', 1).replace(',', ' ', 1)} ×{int(v)}"
                for k, v in sorted(migrations.items())
            )
            lines.append(f"  migrations {parts}")
        return lines

    def _pipeline_lines(self, dt: float | None) -> list[str]:
        lines: list[str] = []
        for engine, pkts in sorted(
                self._samples("p4all_packets_total").items()):
            lines.append(
                f"  engine {engine or '-':<9} packets {_fmt_num(pkts):>10}"
                f"{self._rate('p4all_packets_total', engine, pkts, dt)}"
            )
        workers = self._samples("p4all_worker_packets_total")
        if workers:
            parts = ", ".join(
                f"w{k.split(',')[0]}[{k.split(',')[1]}] {_fmt_num(v)}"
                for k, v in sorted(workers.items())
            )
            lines.append(f"  worker packets {parts}")
        batches = self._samples("p4all_shard_batches_total")
        if batches:
            total = sum(batches.values())
            lines.append(f"  shard batches {_fmt_num(total)}")
        hit = self._samples("p4all_window_hit_rate").get("")
        if hit is not None:
            lines.append(f"  window hit rate {hit:6.3f}  {_bar(hit)}")
        return lines

    def _tenant_lines(self) -> list[str]:
        lines: list[str] = []
        ewma = self._samples("p4all_slo_ewma")
        violations = self._samples("p4all_slo_violations_total")
        # label order for both: (rule, subject)
        for key in sorted(ewma):
            rule, _, subject = key.partition(",")
            nviol = violations.get(key, 0)
            status = f"VIOLATIONS {int(nviol)}" if nviol else "ok"
            lines.append(
                f"  {subject:<12} {rule:<18} ewma {ewma[key]:10.4f}  {status}"
            )
        total = sum(violations.values())
        if total:
            lines.append(f"  slo violations total {int(total)}")
        return lines

    def _control_lines(self) -> list[str]:
        lines: list[str] = []
        for name, label in (("p4all_reconfigs_total", "runtime reconfigs"),
                            ("p4all_fabric_reconfigs_total",
                             "fabric reconfigs")):
            rows = self._samples(name)
            if rows:
                parts = ", ".join(
                    f"{k.replace(',', '/')} ×{int(v)}"
                    for k, v in sorted(rows.items())
                )
                lines.append(f"  {label}: {parts}")
        mean = self._hist_mean("p4all_reconfig_seconds")
        if mean is not None:
            lines.append(f"  mean reconfig {mean:.3f}s")
        kinds = self._samples("p4all_telemetry_events_total")
        if kinds:
            ranked = sorted(kinds.items(), key=lambda kv: -kv[1])[:6]
            parts = ", ".join(f"{k} ×{int(v)}" for k, v in ranked)
            lines.append(f"  events: {parts}")
        return lines

    # -- the frame ---------------------------------------------------------------
    def render(self) -> str:
        """One full frame; advances the rate baseline."""
        now = time.perf_counter()
        dt = (now - self._prev_t) if self._prev_t is not None else None
        self.frames += 1
        header = f"p4all top — frame {self.frames}"
        if dt is not None:
            header += f", +{dt:.2f}s"
        lines = [header]
        for title, body in (("fleet", self._fleet_lines(dt)),
                            ("pipeline", self._pipeline_lines(dt)),
                            ("tenants / SLO", self._tenant_lines()),
                            ("control plane", self._control_lines())):
            if body:
                lines.append(self._rule(title))
                lines.extend(body)
        if len(lines) == 1:
            lines.append("(no metrics yet)")

        # Advance the rate baseline: snapshot every counter sample.
        self._prev_t = now
        self._prev = {}
        for metric in self.registry.collect():
            if metric.kind != "counter":
                continue
            for key, value in metric.to_dict()["values"].items():
                self._prev[(metric.name, key)] = float(value)
        return "\n".join(lines)


# -- the `p4all top` scenario driver -----------------------------------------

def _clear_screen(out) -> None:
    out.write("\x1b[H\x1b[2J")


def run_top(mode: str = "fabric", packets: int = 8000, switches: int = 3,
            window: int = 1000, universe: int = 4000, alpha: float = 1.1,
            seed: int = 42, engine: str | None = None,
            cut: bool = True, clear: bool | None = None,
            out=None, target=None, options=None) -> int:
    """Drive an embedded scenario and repaint a dashboard frame at
    every monitoring window.

    ``mode`` picks the scenario: ``"fabric"`` shards NetCache over a
    flat fleet (with a mid-run memory cut on the first switch when
    ``cut``); ``"run"`` drives the single-switch elastic runtime under
    a churning Zipf stream. ``clear`` forces/suppresses the ANSI
    clear-screen between frames (default: only when ``out`` is a tty).
    """
    import dataclasses

    from ..pisa.resources import get_target
    from ..runtime import TelemetryBus

    out = out or sys.stdout
    use_ansi = out.isatty() if clear is None else clear
    target = target or get_target("tofino")
    telemetry = TelemetryBus()
    dash = TopDashboard()

    def repaint(event) -> None:
        if event.kind not in ("fabric_window", "window"):
            return
        frame = dash.render()
        if use_ansi:
            _clear_screen(out)
        out.write(frame + "\n")
        if not use_ansi:
            out.write("\n")
        out.flush()

    telemetry.subscribe(repaint)

    if mode == "fabric":
        from ..fabric import FabricTopology, FleetConfig, FleetController
        from ..workloads import ZipfGenerator

        fabric = FabricTopology.flat(switches, target)
        config = FleetConfig(window_packets=window, engine=engine)
        controller = FleetController(fabric, config=config,
                                     telemetry=telemetry, options=options)
        if cut:
            first = fabric.serving()[0]
            controller.schedule_cut(
                packets // 2, first,
                dataclasses.replace(
                    target,
                    memory_bits_per_stage=target.memory_bits_per_stage // 2,
                ),
            )
        stream = ZipfGenerator(universe, alpha=alpha, seed=seed)
        with controller:
            report = controller.run(stream, packets=packets)
        summary = (f"done: {report.packets} packets, "
                   f"hit rate {report.hit_rate:.3f}, "
                   f"{len(report.reconfigs)} reconfigs, "
                   f"{len(report.slo_violations)} SLO violations")
    elif mode == "run":
        from ..runtime import ElasticRuntime, RuntimeConfig
        from ..workloads.churn import ChurningZipf

        config = RuntimeConfig(window_packets=window, engine=engine)
        runtime = ElasticRuntime(target, config=config, telemetry=telemetry,
                                 options=options)
        if cut:
            runtime.schedule_target_change(
                packets // 2,
                dataclasses.replace(
                    target,
                    memory_bits_per_stage=target.memory_bits_per_stage // 2,
                ),
            )
        stream = ChurningZipf(universe, alpha=alpha, seed=seed)
        report = runtime.run(stream, packets=packets)
        summary = (f"done: {report.packets} packets, "
                   f"final hit rate "
                   f"{report.timeline[-1] if report.timeline else 0.0:.3f}, "
                   f"{len(report.reconfigs)} reconfigs, "
                   f"{len(report.slo_violations)} SLO violations")
    else:
        raise ValueError(f"unknown top mode {mode!r}")

    frame = dash.render()
    if use_ansi:
        _clear_screen(out)
    out.write(frame + "\n" + summary + "\n")
    out.flush()
    telemetry.close()
    return 0
