"""Bridge the runtime :class:`~repro.runtime.telemetry.TelemetryBus`
into the tracer's span tree.

The telemetry bus predates the tracing layer and remains the runtime's
source of structured control-plane events (tests and the run report
consume it directly). This bridge subscribes to a bus and mirrors every
event into the active span as a ``telemetry.<kind>`` instant event —
so a ``swap_committed`` lands *inside* the ``runtime.reconfigure`` span
that produced it on the exported timeline, instead of living in a
parallel universe — and counts events per kind on the metrics registry.

Bridging is idempotent per (bus, tracer) pair and costs one callback
per telemetry event (control-plane frequency, never per packet). With
the tracer disabled the mirror is a cheap enabled-check; the event
counter stays on.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["bridge_telemetry", "bridge_fleet_report"]


def bridge_telemetry(bus, tracer: Tracer | None = None,
                     registry: MetricsRegistry | None = None):
    """Subscribe a mirror of ``bus`` onto ``tracer`` (default: the
    global tracer/registry). Returns ``bus``; safe to call twice."""
    from . import metrics as default_registry
    from . import trace as default_tracer

    tracer = tracer if tracer is not None else default_tracer
    registry = registry if registry is not None else default_registry
    bridged = getattr(bus, "_obs_bridged", None)
    if bridged is None:
        bridged = set()
        bus._obs_bridged = bridged
    key = (id(tracer), id(registry))
    if key in bridged:
        return bus
    counter = registry.counter(
        "p4all_telemetry_events_total",
        help="Telemetry bus events mirrored into the span tree, by kind.",
        labels=("kind",),
    )

    from . import flight

    def _mirror(event) -> None:
        counter.inc(kind=event.kind)
        # Control-plane events always land in the flight recorder ring
        # — that is the record a post-crash dump is for.
        flight.note("telemetry", event.kind, **event.data)
        if tracer.enabled:
            tracer.event("telemetry." + event.kind, **event.to_dict())

    bus.subscribe(_mirror)
    bridged.add(key)
    return bus


def bridge_fleet_report(report, tracer: Tracer | None = None) -> None:
    """Mirror a :class:`~repro.fabric.controller.FleetReport` into the
    active span tree, the way runtime telemetry already lands there.

    Emits one ``fleet.report`` instant with the fleet-level summary and
    one ``fleet.reconfig`` instant per per-switch reconfiguration
    record, all inside whatever span is open (the fleet controller
    calls this while its ``fabric.run`` span is still live). The same
    records go to the flight recorder unconditionally.
    """
    from . import flight
    from . import trace as default_tracer

    tracer = tracer if tracer is not None else default_tracer
    summary = {
        "packets": getattr(report, "packets", 0),
        "hits": getattr(report, "hits", 0),
        "hit_rate": getattr(report, "hit_rate", 0.0),
        "switches": len(getattr(report, "switch_stats", {}) or {}),
        "reconfigs": len(getattr(report, "reconfigs", []) or []),
        "migrations": len(getattr(report, "migrations", []) or []),
    }
    flight.note("fleet", "fleet_report", **summary)
    if tracer.enabled:
        tracer.event("fleet.report", **summary)
        for item in getattr(report, "reconfigs", []) or []:
            # FleetReport stores reconfigs as (switch, record) pairs.
            if isinstance(item, tuple) and len(item) == 2:
                attrs = {"switch": item[0]}
                record = item[1]
            else:
                attrs = {}
                record = item
            if hasattr(record, "to_dict"):
                attrs.update(record.to_dict())
            elif isinstance(record, dict):
                attrs.update(record)
            tracer.event("fleet.reconfig", **attrs)
