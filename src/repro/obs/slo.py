"""Per-tenant SLO monitoring: EWMA + threshold rules over runtime signals.

The elastic control loop's whole promise is that tenants keep their
service level through resource cuts and migrations. This module watches
the signals that promise is made of — per-module hit rate, headroom
over the utility floor the ILP was told to respect, reconfiguration
latency — smooths each (rule, subject) series with an EWMA, and raises
a structured ``slo_violation`` exactly once per excursion (with a
matching ``slo_recovered`` when the series comes back).

Violations go everywhere an operator might be looking:

* the runtime's :class:`~repro.runtime.telemetry.TelemetryBus` (so the
  runtime/fleet controllers and run reports consume them, and the
  bridge mirrors them into the active span for ``p4all obs``);
* the ``p4all_slo_violations_total{rule,subject}`` counter and the
  ``p4all_slo_ewma{rule,subject}`` gauge;
* the flight recorder ring.

:class:`SloMonitor` is deliberately passive — controllers feed it via
:meth:`~SloMonitor.observe` from signals they already compute, so it
adds no measurement of its own to the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["SloRule", "SloMonitor", "default_slo_rules"]


@dataclass(frozen=True)
class SloRule:
    """One threshold rule over an EWMA-smoothed series.

    ``direction="min"`` fires when the EWMA drops *below* ``threshold``
    (hit rate, headroom); ``"max"`` fires when it rises above
    (latency). ``warmup`` samples are consumed before the rule is ever
    evaluated — windowed hit rates are garbage until caches fill — and
    ``min_samples`` more must arrive before the first verdict.
    """

    name: str
    threshold: float
    direction: str = "min"      # "min" | "max"
    alpha: float = 0.4          # EWMA weight of the newest sample
    min_samples: int = 3
    warmup: int = 0

    def __post_init__(self):
        if self.direction not in ("min", "max"):
            raise ValueError(f"SloRule direction must be min|max, "
                             f"got {self.direction!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"SloRule alpha must be in (0, 1], "
                             f"got {self.alpha}")

    def breached(self, ewma: float) -> bool:
        if self.direction == "min":
            return ewma < self.threshold
        return ewma > self.threshold


def default_slo_rules() -> tuple[SloRule, ...]:
    """The rules the runtime and fleet controllers install by default."""
    return (
        # Per-tenant windowed hit rate: fire when the smoothed rate
        # sinks below 25%. Warm up past the cold-cache windows first.
        SloRule("hit_rate", threshold=0.25, direction="min",
                alpha=0.35, min_samples=3, warmup=5),
        # Weighted utility minus the tenant's declared floor: any
        # negative headroom means the ILP's floor promise is broken —
        # one committed layout is enough evidence, no smoothing.
        SloRule("utility_headroom", threshold=0.0, direction="min",
                alpha=1.0, min_samples=1),
        # Reconfiguration wall-clock: the control loop must stay
        # responsive to pressure.
        SloRule("reconfig_seconds", threshold=30.0, direction="max",
                alpha=0.5, min_samples=1),
    )


@dataclass
class _Series:
    ewma: float = 0.0
    samples: int = 0
    violating: bool = False


class SloMonitor:
    """Tracks (rule, subject) series and raises structured violations."""

    def __init__(self, rules=None, telemetry=None,
                 tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None,
                 recorder=None):
        if tracer is None:
            from . import trace as tracer
        if registry is None:
            from . import metrics as registry
        if recorder is None:
            from . import flight as recorder
        self.rules: dict[str, SloRule] = {
            r.name: r for r in (rules if rules is not None
                                else default_slo_rules())
        }
        self.telemetry = telemetry
        self.tracer = tracer
        self.registry = registry
        self.recorder = recorder
        self._series: dict[tuple[str, str], _Series] = {}
        self.violations: list[dict[str, Any]] = []
        self._ewma_gauge = registry.gauge(
            "p4all_slo_ewma",
            help="EWMA-smoothed SLO signal per rule and subject.",
            labels=("rule", "subject"),
        )
        self._violation_counter = registry.counter(
            "p4all_slo_violations_total",
            help="SLO violation transitions per rule and subject.",
            labels=("rule", "subject"),
        )

    # -- feeding ---------------------------------------------------------------
    def observe(self, rule_name: str, subject: str, value: float,
                packet_index: int | None = None) -> dict[str, Any] | None:
        """Feed one sample; returns the violation record when this
        sample tips the series over, else None."""
        rule = self.rules.get(rule_name)
        if rule is None:
            return None
        series = self._series.setdefault((rule_name, subject), _Series())
        series.samples += 1
        if series.samples == 1:
            series.ewma = float(value)
        else:
            series.ewma += rule.alpha * (float(value) - series.ewma)
        self._ewma_gauge.set(series.ewma, rule=rule_name, subject=subject)
        if series.samples < rule.warmup + rule.min_samples:
            return None
        breached = rule.breached(series.ewma)
        if breached and not series.violating:
            series.violating = True
            return self._raise(rule, subject, value, series, packet_index)
        if not breached and series.violating:
            series.violating = False
            self._emit("slo_recovered", rule, subject, value, series,
                       packet_index)
        return None

    def _raise(self, rule: SloRule, subject: str, value: float,
               series: _Series, packet_index) -> dict[str, Any]:
        record = {
            "rule": rule.name,
            "subject": subject,
            "value": float(value),
            "ewma": series.ewma,
            "threshold": rule.threshold,
            "direction": rule.direction,
            "packet_index": packet_index,
        }
        self.violations.append(record)
        self._violation_counter.inc(rule=rule.name, subject=subject)
        self.recorder.note("slo", "slo_violation", **record)
        self._emit("slo_violation", rule, subject, value, series,
                   packet_index)
        return record

    def _emit(self, kind: str, rule: SloRule, subject: str, value: float,
              series: _Series, packet_index) -> None:
        if self.telemetry is not None:
            # The bridge mirrors bus events into the span tree, so
            # emitting here reaches the trace too (no double event).
            self.telemetry.emit(
                kind, packet_index=packet_index, rule=rule.name,
                subject=subject, value=float(value), ewma=series.ewma,
                threshold=rule.threshold, direction=rule.direction,
            )
        else:
            self.tracer.event(
                "slo." + kind, rule=rule.name, subject=subject,
                value=float(value), ewma=series.ewma,
                threshold=rule.threshold,
            )

    # -- introspection ---------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Current EWMA/violating state of every tracked series."""
        return {
            f"{rule}:{subject}": {
                "ewma": s.ewma,
                "samples": s.samples,
                "violating": s.violating,
            }
            for (rule, subject), s in sorted(self._series.items())
        }

    def __len__(self) -> int:
        return len(self.violations)
