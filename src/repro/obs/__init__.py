"""Unified observability: tracing spans + metrics across the stack.

One substrate for all measurement (see docs/OBSERVABILITY.md):

* :data:`trace` — the process-wide :class:`~repro.obs.tracer.Tracer`.
  Disabled by default (near-zero overhead: one attribute check per
  instrumentation site); enabled by ``p4all ... --trace out.json``,
  ``REPRO_TRACE=1``, or :meth:`~repro.obs.tracer.Tracer.enable`.
  Exports to Chrome trace-event JSON (open in Perfetto /
  ``chrome://tracing``) and JSONL.
* :data:`metrics` — the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  histograms; always on (updates are batch-level, never per-packet).
  Exports to the Prometheus text exposition format.
* :func:`~repro.obs.bridge.bridge_telemetry` — mirrors a runtime
  :class:`~repro.runtime.telemetry.TelemetryBus` into the active span
  tree so control-plane events land on the same timeline.

Instrumentation sites just do::

    from ..obs import trace, metrics

    with trace.span("ilp.solve", backend=backend) as sp:
        solution = ...
        sp.set_attr("status", solution.status.value)
    metrics.counter("p4all_ilp_solves_total", labels=("backend",)) \\
        .inc(backend=backend)

This package imports nothing from the rest of :mod:`repro`, so every
layer (lang → core → ilp → pisa → runtime) may depend on it without
cycles.
"""

from .aggregate import (
    WorkerObsCapture,
    adopt_spans,
    apply_obs_control,
    merge_metric_deltas,
    merge_worker_obs,
    metric_deltas,
    obs_control,
    snapshot_metrics,
)
from .bridge import bridge_fleet_report, bridge_telemetry
from .export import (
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_prometheus_file,
    validate_prometheus_text,
    write_chrome_trace,
    write_prometheus,
    write_trace_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .record import FlightRecorder, install_flight_dump, maybe_install_from_env
from .slo import SloMonitor, SloRule, default_slo_rules
from .tracer import NULL_SPAN, Span, SpanEvent, Tracer

__all__ = [
    "trace",
    "metrics",
    "flight",
    "observed",
    "FlightRecorder",
    "install_flight_dump",
    "maybe_install_from_env",
    "SloMonitor",
    "SloRule",
    "default_slo_rules",
    "WorkerObsCapture",
    "obs_control",
    "apply_obs_control",
    "snapshot_metrics",
    "metric_deltas",
    "merge_metric_deltas",
    "adopt_spans",
    "merge_worker_obs",
    "bridge_fleet_report",
    "Tracer",
    "Span",
    "SpanEvent",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "bridge_telemetry",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_prometheus",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_prometheus_text",
    "validate_prometheus_file",
]

#: Process-wide tracer. Disabled unless REPRO_TRACE is set (or a CLI
#: flag / test enables it); instrumentation is free while disabled.
trace = Tracer()

#: Process-wide metrics registry; always on.
metrics = MetricsRegistry()

#: Process-wide flight recorder; always on (one tuple append per
#: note). Registered as a tracer sink so finished spans land in the
#: ring even when no exporter is configured.
flight = FlightRecorder()
trace.sinks.append(flight.on_span)

# REPRO_FLIGHT=/path/out.jsonl arms crash/signal dumping process-wide.
maybe_install_from_env(flight)


class observed:
    """Context manager tying a region to exported artifacts.

    Enables the global tracer when ``trace_path`` is given, and on exit
    — even an exceptional one, so a failed compile still leaves its
    partial timeline behind — writes the Chrome trace and/or Prometheus
    textfile. The CLI wraps each ``--trace``/``--metrics`` command in
    one of these.
    """

    def __init__(self, trace_path=None, metrics_path=None,
                 flight_path=None, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None,
                 recorder: FlightRecorder | None = None):
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.flight_path = flight_path
        self.tracer = tracer if tracer is not None else trace
        self.registry = registry if registry is not None else metrics
        self.recorder = recorder if recorder is not None else flight
        self._uninstall_flight = None

    def __enter__(self) -> "observed":
        if self.trace_path is not None:
            self.tracer.enable(reset=True)
        if self.flight_path is not None:
            # Arm crash/signal dumping for the duration of the region;
            # a clean exit writes the ring below anyway.
            self._uninstall_flight = install_flight_dump(
                self.flight_path, self.recorder
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.trace_path is not None:
            write_chrome_trace(self.tracer, self.trace_path)
            self.tracer.disable()
        if self.metrics_path is not None:
            write_prometheus(self.registry, self.metrics_path)
        if self.flight_path is not None:
            if self._uninstall_flight is not None:
                self._uninstall_flight()
                self._uninstall_flight = None
            if exc_type is None:  # crash path already dumped via hook
                self.recorder.dump(self.flight_path, self.registry)
        return False
