"""Hierarchical tracing spans over ``time.perf_counter``.

A :class:`Tracer` records a tree of timed :class:`Span`\\ s — one node
per interesting region of work (a compile phase, an ILP solve, a state
migration) — plus point-in-time events attached to whichever span was
active when they fired (the runtime's telemetry bus is bridged in this
way, see :mod:`repro.obs.bridge`). The result is one coherent timeline
of a reconfiguration instead of three disjoint peepholes.

Design constraints, in order:

1. **Near-zero overhead when disabled.** ``tracer.span(...)`` on a
   disabled tracer is one attribute check and returns a preallocated
   no-op context manager — no allocation, no locking, no clock read.
   The packet-processing hot path is never instrumented per-packet at
   all (only per batch), so the disabled tracer costs nothing there.
2. **Thread-safe.** The active-span stack is thread-local (the
   planner's candidate race compiles on worker threads); the finished-
   span list is guarded by a lock. Spans started on a worker thread
   become roots of that thread's track in the Chrome trace view.
3. **Plain data.** A finished span is just numbers, strings, and dicts,
   so exporters (:mod:`repro.obs.export`) need no live tracer.

Timestamps are ``perf_counter`` seconds relative to the tracer's epoch
(reset on :meth:`Tracer.enable`/:meth:`Tracer.reset`); the matching
wall-clock epoch is kept so exports can anchor the timeline in real
time.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any

__all__ = ["Span", "SpanEvent", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """The do-nothing span a disabled tracer hands out.

    A single shared instance: entering, exiting, annotating, and
    attaching events are all no-ops, so instrumentation sites never
    branch on whether tracing is on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, _name: str, _value: Any) -> None:
        pass

    def set_attrs(self, **_attrs: Any) -> None:
        pass

    def event(self, _name: str, **_attrs: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: Shared no-op span (also useful as a default in tests).
NULL_SPAN = _NullSpan()


class SpanEvent:
    """A point-in-time annotation inside a span (or at top level)."""

    __slots__ = ("name", "ts", "attrs")

    def __init__(self, name: str, ts: float, attrs: dict[str, Any]):
        self.name = name
        self.ts = ts
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ts": self.ts, "attrs": self.attrs}


class Span:
    """One timed region. Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "start", "end", "events", "thread_id", "thread_name")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.start = 0.0
        self.end = 0.0
        self.events: list[SpanEvent] = []
        self.thread_id = 0
        self.thread_name = ""

    # -- context manager -------------------------------------------------------
    def __enter__(self) -> "Span":
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        stack = self.tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start = time.perf_counter() - self.tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter() - self.tracer._epoch
        stack = self.tracer._stack()
        # Tolerate a mid-span reset() (stack cleared underneath us) and
        # exceptions that unwound through several spans at once.
        if self in stack:
            while stack and stack[-1] is not self:
                stack.pop()
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self.tracer._record(self)
        return False

    # -- annotation ------------------------------------------------------------
    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to this span."""
        self.events.append(
            SpanEvent(name, time.perf_counter() - self.tracer._epoch, attrs)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": self.attrs,
            "events": [e.to_dict() for e in self.events],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms)")


class Tracer:
    """Collects spans; disabled (and effectively free) by default.

    Enable explicitly (``trace.enable()``, the CLI's ``--trace`` flag)
    or ambiently with ``REPRO_TRACE=1`` in the environment.
    """

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._events: list[SpanEvent] = []   # events outside any span
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        #: Callables invoked with each finished span (flight recorder,
        #: live aggregators). Called outside the lock; must not raise.
        self.sinks: list = []

    # -- lifecycle -------------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans/events and restart the clock epoch."""
        with self._lock:
            self._spans = []
            self._events = []
            self._ids = itertools.count(1)
            self._epoch = time.perf_counter()
            self.wall_epoch = time.time()
            self._local = threading.local()

    # -- recording -------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def clear_recorded(self) -> None:
        """Drop finished spans/events but keep the epoch and id counter.

        Worker-side capture uses this between batches: the epoch must
        stay aligned with the parent's so merged timestamps land on one
        timeline, and ids must keep advancing so adopted spans never
        collide.
        """
        with self._lock:
            self._spans = []
            self._events = []
            self._local = threading.local()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        for sink in self.sinks:
            try:
                sink(span)
            except Exception:
                pass

    def span(self, name: str, **attrs: Any):
        """Start a span; returns a context manager.

        On a disabled tracer this is one attribute check returning the
        shared :data:`NULL_SPAN` — the near-zero-overhead path.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event on the active span (or at the
        top level when no span is active on this thread)."""
        if not self.enabled:
            return
        ev = SpanEvent(name, time.perf_counter() - self._epoch, attrs)
        stack = self._stack()
        if stack:
            stack[-1].events.append(ev)
        else:
            with self._lock:
                self._events.append(ev)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, or None."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    # -- introspection ---------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    @property
    def orphan_events(self) -> list[SpanEvent]:
        """Events recorded while no span was active."""
        with self._lock:
            return list(self._events)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self)} spans)"
