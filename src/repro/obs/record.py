"""Flight recorder: an always-on bounded ring of recent activity.

Tracing is opt-in and metrics are aggregates — when a run crashes you
want the *last few seconds of raw events*, which neither gives you. The
:class:`FlightRecorder` keeps a ``deque(maxlen=...)`` of recent entries
(finished spans via a tracer sink, batch notes from the engines,
telemetry events via the bridge, SLO violations) at a cost of one bool
check plus one tuple append per entry — cheap enough to leave on.

The ring dumps to JSONL:

* on demand — ``p4all obs --flight dump.jsonl`` or
  :meth:`FlightRecorder.dump`;
* on signal — :func:`install_flight_dump` hooks ``SIGUSR1``;
* on crash — the same installer chains ``sys.excepthook`` so an
  unhandled exception leaves ``<path>`` behind with the final moments
  and a closing metrics snapshot.

Set ``REPRO_FLIGHT=/path/out.jsonl`` to arm crash/signal dumping for
any process without touching code (:func:`maybe_install_from_env`).
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import signal
import sys
import threading
import time
from typing import Any

__all__ = [
    "FlightRecorder",
    "install_flight_dump",
    "maybe_install_from_env",
]


def _json_safe(value: Any):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


class FlightRecorder:
    """Bounded ring buffer of recent observability entries.

    Entries are ``(seq, wall_time, kind, name, data)`` tuples; appends
    to a bounded deque are atomic under the GIL, so :meth:`note` takes
    no lock on the hot side.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._ring: collections.deque = collections.deque(maxlen=capacity)
        self._seq = itertools.count(1)

    # -- recording -------------------------------------------------------------
    def note(self, kind: str, name: str, **data: Any) -> None:
        """Append one entry. The always-on call sites guard nothing —
        this bool check *is* the disabled path."""
        if not self.enabled:
            return
        self._ring.append(
            (next(self._seq), time.time(), kind, name, data or None)
        )

    def on_span(self, span) -> None:
        """Tracer sink: record each finished span's shape and timing."""
        if not self.enabled:
            return
        self._ring.append(
            (next(self._seq), time.time(), "span", span.name,
             {"duration": span.duration, "attrs": dict(span.attrs)})
        )

    # -- introspection ---------------------------------------------------------
    def entries(self) -> list[dict]:
        out = []
        for seq, wall, kind, name, data in list(self._ring):
            entry = {"seq": seq, "wall_time": wall, "kind": kind,
                     "name": name}
            if data:
                entry["data"] = _json_safe(data)
            out.append(entry)
        return out

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # -- dumping ---------------------------------------------------------------
    def dump(self, path, registry=None) -> int:
        """Write the ring as JSONL (oldest first), closing with a
        metrics snapshot when a registry is given (default: the global
        one). Returns the number of ring entries written."""
        if registry is None:
            from . import metrics as registry
        entries = self.entries()
        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
            snap = {"kind": "metrics_snapshot", "wall_time": time.time(),
                    "metrics": _json_safe(registry.to_dict())}
            fh.write(json.dumps(snap) + "\n")
        return len(entries)


def install_flight_dump(path, recorder: "FlightRecorder | None" = None):
    """Arm crash/signal dumping of ``recorder`` (default: the global
    ring) to ``path``. Hooks ``SIGUSR1`` (main thread only, best
    effort) and chains ``sys.excepthook``; returns an ``uninstall()``
    that restores both."""
    if recorder is None:
        from . import flight as recorder

    def _dump(reason: str) -> None:
        try:
            recorder.note("flight", "dump", reason=reason)
            recorder.dump(path)
        except Exception:
            pass

    prev_hook = sys.excepthook

    def _excepthook(exc_type, exc, tb):
        recorder.note("crash", exc_type.__name__, message=str(exc))
        _dump("crash")
        prev_hook(exc_type, exc, tb)

    sys.excepthook = _excepthook

    prev_signal = None
    installed_signal = False
    if threading.current_thread() is threading.main_thread():
        try:
            prev_signal = signal.signal(
                signal.SIGUSR1, lambda signum, frame: _dump("signal")
            )
            installed_signal = True
        except (ValueError, OSError, AttributeError):
            pass

    def uninstall() -> None:
        if sys.excepthook is _excepthook:
            sys.excepthook = prev_hook
        if installed_signal:
            try:
                signal.signal(signal.SIGUSR1, prev_signal)
            except (ValueError, OSError):
                pass

    return uninstall


def maybe_install_from_env(recorder: "FlightRecorder | None" = None):
    """Arm dumping to ``$REPRO_FLIGHT`` when set; returns the
    ``uninstall`` or None."""
    path = os.environ.get("REPRO_FLIGHT", "")
    if not path:
        return None
    return install_flight_dump(path, recorder)
