"""Human-readable summaries of exported observability artifacts.

Backs ``p4all obs``: given a Chrome trace JSON (and optionally a
Prometheus textfile or a flight-recorder JSONL), print an aggregate
table per span name, the reconstructed tree of the slowest root span
(exact parentage via the ``span_id``/``parent_id`` the exporter stashes
in ``args``), instant events grouped by name — with SLO violations
called out — and the metric families with their samples. Works on the
files alone — no live tracer or registry needed.

Each text renderer sits on a ``*_data`` companion that returns the same
content as plain dicts/lists; ``p4all obs --format json`` emits those
verbatim, so scripts get structure without scraping the tables.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "summarize_chrome_trace",
    "summarize_prometheus_text",
    "summarize_prometheus_file",
    "summarize_trace_file",
    "summarize_flight_file",
    "trace_summary_data",
    "prometheus_summary_data",
    "flight_summary_data",
]

#: Instant-event names that carry an SLO violation: the telemetry
#: bridge mirrors bus events as ``telemetry.<kind>``, the monitor's
#: direct tracer path emits ``slo.<kind>``.
_SLO_EVENT_NAMES = ("telemetry.slo_violation", "slo.slo_violation")


def _fmt_ms(us: float) -> str:
    return f"{us / 1000.0:10.3f}ms"


def trace_summary_data(obj: dict, top: int = 20) -> dict:
    """Structured summary of a Chrome trace-event JSON object."""
    complete = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "X"]
    instants = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "i"]

    stats: dict[str, list[float]] = {}
    for event in complete:
        stats.setdefault(event["name"], []).append(float(event.get("dur", 0)))
    ranked = sorted(stats.items(), key=lambda kv: -sum(kv[1]))
    aggregates = [
        {"name": name, "count": len(durs), "total_us": sum(durs),
         "mean_us": sum(durs) / len(durs), "max_us": max(durs)}
        for name, durs in ranked[:top]
    ]

    events_by_name: dict[str, int] = {}
    for event in instants:
        events_by_name[event["name"]] = events_by_name.get(event["name"], 0) + 1

    slo_violations = [
        {k: v for k, v in event.get("args", {}).items() if k != "span_id"}
        for event in instants if event["name"] in _SLO_EVENT_NAMES
    ]

    workers = sorted({
        event["args"]["worker"]
        for event in complete
        if event["name"].endswith("worker.batch")
        and "worker" in event.get("args", {})
    }, key=str)

    return {
        "spans": len(complete),
        "events": len(instants),
        "span_names": len(stats),
        "aggregates": aggregates,
        "events_by_name": dict(sorted(events_by_name.items(),
                                      key=lambda kv: -kv[1])),
        "slo_violations": slo_violations,
        "workers": workers,
    }


def summarize_chrome_trace(obj: dict, tree_depth: int = 6,
                           top: int = 20) -> str:
    """Aggregate + tree view of a Chrome trace-event JSON object."""
    complete = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "X"]
    instants = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "i"]
    if not complete:
        return "trace contains no spans"
    data = trace_summary_data(obj, top=top)

    lines = [
        f"{data['spans']} spans, {data['events']} events, "
        f"{data['span_names']} distinct span names",
        "",
        f"{'span':<28} {'count':>6} {'total':>12} {'mean':>12} {'max':>12}",
    ]
    for row in data["aggregates"]:
        lines.append(
            f"{row['name']:<28} {row['count']:>6} "
            f"{_fmt_ms(row['total_us']):>12} "
            f"{_fmt_ms(row['mean_us']):>12} {_fmt_ms(row['max_us']):>12}"
        )
    if data["span_names"] > top:
        lines.append(f"... and {data['span_names'] - top} more span names")

    if data["events_by_name"]:
        lines += ["", "events by name:"]
        for name, count in list(data["events_by_name"].items())[:top]:
            lines.append(f"  {name:<40} {count:>6}")

    if data["slo_violations"]:
        lines += ["", f"SLO violations ({len(data['slo_violations'])}):"]
        for record in data["slo_violations"]:
            lines.append(
                f"  {record.get('rule', '?')} on "
                f"{record.get('subject', '?')}: value "
                f"{record.get('value', '?')} ewma {record.get('ewma', '?')} "
                f"vs threshold {record.get('threshold', '?')}"
            )

    # -- tree of the slowest root ----------------------------------------------
    by_id: dict[int, dict] = {}
    children: dict[int | None, list[dict]] = {}
    for event in complete:
        args = event.get("args", {})
        sid = args.get("span_id")
        if sid is None:
            continue
        by_id[sid] = event
        children.setdefault(args.get("parent_id"), []).append(event)
    roots = [e for e in complete
             if e.get("args", {}).get("parent_id") not in by_id]
    if roots:
        root = max(roots, key=lambda e: float(e.get("dur", 0)))
        lines += ["", f"slowest root span ({_fmt_ms(float(root['dur'])).strip()}):"]

        def walk(event: dict, depth: int) -> None:
            indent = "  " * depth
            n_events = sum(
                1 for i in instants
                if i.get("args", {}).get("span_id")
                == event["args"].get("span_id")
            )
            suffix = f"  [{n_events} events]" if n_events else ""
            lines.append(
                f"{indent}{event['name']:<{max(30 - 2 * depth, 8)}} "
                f"{_fmt_ms(float(event.get('dur', 0)))}{suffix}"
            )
            if depth >= tree_depth:
                return
            kids = children.get(event["args"].get("span_id"), [])
            for kid in sorted(kids, key=lambda e: e["ts"]):
                walk(kid, depth + 1)

        walk(root, 0)
    return "\n".join(lines)


def summarize_trace_file(path: str | Path, **kwargs) -> str:
    return summarize_chrome_trace(json.loads(Path(path).read_text()), **kwargs)


def prometheus_summary_data(text: str) -> dict:
    """Structured family-by-family view of a Prometheus textfile."""
    families: dict[str, dict] = {}
    order: list[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(parts[2], {"type": parts[3],
                                               "samples": []})
                if parts[2] not in order:
                    order.append(parts[2])
            continue
        name = line.split("{", 1)[0].split()[0]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        families.setdefault(family, {"type": "untyped", "samples": []})
        if family not in order:
            order.append(family)
        families[family]["samples"].append(line)
    return {"families": families, "order": order}


def summarize_prometheus_text(text: str, max_samples: int = 8) -> str:
    """Family-by-family view of a Prometheus textfile."""
    data = prometheus_summary_data(text)
    families, order = data["families"], data["order"]
    if not families:
        return "no metrics"
    lines = [f"{len(families)} metric families"]
    for name in order:
        info = families[name]
        lines.append(f"\n{name} ({info['type']}, "
                     f"{len(info['samples'])} samples)")
        for sample in info["samples"][:max_samples]:
            lines.append(f"  {sample}")
        if len(info["samples"]) > max_samples:
            lines.append(
                f"  ... and {len(info['samples']) - max_samples} more"
            )
    return "\n".join(lines)


def summarize_prometheus_file(path: str | Path, **kwargs) -> str:
    return summarize_prometheus_text(Path(path).read_text(), **kwargs)


def flight_summary_data(path: str | Path) -> dict:
    """Structured view of a flight-recorder JSONL dump."""
    entries: list[dict] = []
    snapshot = None
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") == "metrics_snapshot":
            snapshot = record
        else:
            entries.append(record)
    by_kind: dict[str, int] = {}
    for entry in entries:
        by_kind[entry.get("kind", "?")] = by_kind.get(entry.get("kind", "?"), 0) + 1
    return {
        "entries": len(entries),
        "by_kind": dict(sorted(by_kind.items(), key=lambda kv: -kv[1])),
        "last": entries[-10:],
        "metrics_families": (len(snapshot["metrics"])
                             if snapshot and "metrics" in snapshot else 0),
        "slo_violations": [e for e in entries
                           if e.get("kind") in ("slo", "telemetry")
                           and e.get("name") == "slo_violation"],
    }


def summarize_flight_file(path: str | Path) -> str:
    """Terminal rendering of a flight-recorder JSONL dump."""
    data = flight_summary_data(path)
    if not data["entries"]:
        return "flight dump is empty"
    lines = [f"{data['entries']} flight entries, "
             f"{data['metrics_families']} metric families in the closing "
             f"snapshot"]
    lines.append("entries by kind:")
    for kind, count in data["by_kind"].items():
        lines.append(f"  {kind:<16} {count:>6}")
    if data["slo_violations"]:
        lines.append(f"SLO violations ({len(data['slo_violations'])}):")
        for entry in data["slo_violations"]:
            record = entry.get("data", {})
            lines.append(
                f"  {record.get('rule', '?')} on "
                f"{record.get('subject', '?')}: ewma "
                f"{record.get('ewma', '?')} vs {record.get('threshold', '?')}"
            )
    lines.append("last entries:")
    for entry in data["last"]:
        detail = ""
        if entry.get("data"):
            pairs = ", ".join(f"{k}={v}" for k, v in
                              list(entry["data"].items())[:4])
            detail = f"  ({pairs})"
        lines.append(f"  #{entry.get('seq', '?')} {entry.get('kind', '?')}"
                     f"/{entry.get('name', '?')}{detail}")
    return "\n".join(lines)
