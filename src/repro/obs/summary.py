"""Human-readable summaries of exported observability artifacts.

Backs ``p4all obs``: given a Chrome trace JSON (and optionally a
Prometheus textfile), print an aggregate table per span name, the
reconstructed tree of the slowest root span (exact parentage via the
``span_id``/``parent_id`` the exporter stashes in ``args``), and the
metric families with their samples. Works on the files alone — no live
tracer or registry needed.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["summarize_chrome_trace", "summarize_prometheus_text",
           "summarize_prometheus_file", "summarize_trace_file"]


def _fmt_ms(us: float) -> str:
    return f"{us / 1000.0:10.3f}ms"


def summarize_chrome_trace(obj: dict, tree_depth: int = 6,
                           top: int = 20) -> str:
    """Aggregate + tree view of a Chrome trace-event JSON object."""
    complete = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "X"]
    instants = [e for e in obj.get("traceEvents", [])
                if e.get("ph") == "i"]
    if not complete:
        return "trace contains no spans"

    # -- aggregate by span name ------------------------------------------------
    stats: dict[str, list[float]] = {}
    for event in complete:
        stats.setdefault(event["name"], []).append(float(event.get("dur", 0)))
    lines = [
        f"{len(complete)} spans, {len(instants)} events, "
        f"{len(stats)} distinct span names",
        "",
        f"{'span':<28} {'count':>6} {'total':>12} {'mean':>12} {'max':>12}",
    ]
    ranked = sorted(stats.items(), key=lambda kv: -sum(kv[1]))
    for name, durs in ranked[:top]:
        lines.append(
            f"{name:<28} {len(durs):>6} {_fmt_ms(sum(durs)):>12} "
            f"{_fmt_ms(sum(durs) / len(durs)):>12} {_fmt_ms(max(durs)):>12}"
        )
    if len(ranked) > top:
        lines.append(f"... and {len(ranked) - top} more span names")

    # -- tree of the slowest root ----------------------------------------------
    by_id: dict[int, dict] = {}
    children: dict[int | None, list[dict]] = {}
    for event in complete:
        args = event.get("args", {})
        sid = args.get("span_id")
        if sid is None:
            continue
        by_id[sid] = event
        children.setdefault(args.get("parent_id"), []).append(event)
    roots = [e for e in complete
             if e.get("args", {}).get("parent_id") not in by_id]
    if roots:
        root = max(roots, key=lambda e: float(e.get("dur", 0)))
        lines += ["", f"slowest root span ({_fmt_ms(float(root['dur'])).strip()}):"]

        def walk(event: dict, depth: int) -> None:
            indent = "  " * depth
            n_events = sum(
                1 for i in instants
                if i.get("args", {}).get("span_id")
                == event["args"].get("span_id")
            )
            suffix = f"  [{n_events} events]" if n_events else ""
            lines.append(
                f"{indent}{event['name']:<{max(30 - 2 * depth, 8)}} "
                f"{_fmt_ms(float(event.get('dur', 0)))}{suffix}"
            )
            if depth >= tree_depth:
                return
            kids = children.get(event["args"].get("span_id"), [])
            for kid in sorted(kids, key=lambda e: e["ts"]):
                walk(kid, depth + 1)

        walk(root, 0)
    return "\n".join(lines)


def summarize_trace_file(path: str | Path, **kwargs) -> str:
    return summarize_chrome_trace(json.loads(Path(path).read_text()), **kwargs)


def summarize_prometheus_text(text: str, max_samples: int = 8) -> str:
    """Family-by-family view of a Prometheus textfile."""
    families: dict[str, dict] = {}
    order: list[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(parts[2], {"type": parts[3],
                                               "samples": []})
                if parts[2] not in order:
                    order.append(parts[2])
            continue
        name = line.split("{", 1)[0].split()[0]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        families.setdefault(family, {"type": "untyped", "samples": []})
        if family not in order:
            order.append(family)
        families[family]["samples"].append(line)
    if not families:
        return "no metrics"
    lines = [f"{len(families)} metric families"]
    for name in order:
        info = families[name]
        lines.append(f"\n{name} ({info['type']}, "
                     f"{len(info['samples'])} samples)")
        for sample in info["samples"][:max_samples]:
            lines.append(f"  {sample}")
        if len(info["samples"]) > max_samples:
            lines.append(
                f"  ... and {len(info['samples']) - max_samples} more"
            )
    return "\n".join(lines)


def summarize_prometheus_file(path: str | Path, **kwargs) -> str:
    return summarize_prometheus_text(Path(path).read_text(), **kwargs)
