"""Cross-process trace/metric aggregation.

The pooled engines (:mod:`repro.pisa.pool`, :mod:`repro.pisa.sharded`)
and the fabric's switch workers (:mod:`repro.fabric.parallel`) fork the
hot path into child processes — which fork *copies* of the global
tracer and metrics registry that the parent never sees again. This
module closes that gap with a capture/merge protocol over the existing
control pipes:

1. The parent ships an :func:`obs_control` tuple with each batch so the
   child's tracer agrees on enablement and clock epoch (``perf_counter``
   is CLOCK_MONOTONIC on Linux, shared across ``fork``, so equal epochs
   mean worker timestamps land directly on the parent's timeline).
2. The child wraps the batch in a :class:`WorkerObsCapture`: snapshot
   the metrics registry before, diff after (:func:`metric_deltas`), and
   export any spans it finished. The result is a plain-data payload
   appended to the existing batch-end reply.
3. The parent calls :func:`merge_worker_obs`: counters are summed,
   histograms merged bucket-wise, gauges overwritten, and spans adopted
   (:func:`adopt_spans`) with fresh ids, re-parented under the live
   batch span, and labeled with their worker — so one Chrome trace, one
   Prometheus export, and one ``p4all obs`` summary show the whole pool.

Everything shipped is plain tuples/dicts/lists, picklable over the
pipes the engines already run.
"""

from __future__ import annotations

from typing import Any

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Span, SpanEvent, Tracer

__all__ = [
    "obs_control",
    "apply_obs_control",
    "snapshot_metrics",
    "metric_deltas",
    "merge_metric_deltas",
    "export_spans",
    "adopt_spans",
    "WorkerObsCapture",
    "merge_worker_obs",
]


# -- control: parent -> worker -------------------------------------------------

def obs_control(tracer: Tracer | None = None) -> tuple:
    """The parent-side tuple shipped with each batch: ``(enabled,
    perf_epoch, wall_epoch)``. Cheap enough to send unconditionally."""
    if tracer is None:
        from . import trace as tracer
    return (tracer.enabled, tracer._epoch, tracer.wall_epoch)


def apply_obs_control(ctl, tracer: Tracer | None = None) -> None:
    """Align a worker's tracer with the parent's control tuple.

    Sets enablement and *adopts the parent's epochs* instead of
    resetting to local ones — a pool worker forks once at pool creation
    but the parent may enable tracing (resetting its epoch) much later,
    so the epochs must be re-shipped per batch for timestamps to align.
    Recorded spans from prior batches are dropped; they were already
    shipped.
    """
    if tracer is None:
        from . import trace as tracer
    if ctl is None:
        tracer.enabled = False
        return
    enabled, epoch, wall_epoch = ctl
    tracer.enabled = bool(enabled)
    tracer._epoch = epoch
    tracer.wall_epoch = wall_epoch
    tracer.clear_recorded()


# -- metrics: snapshot / delta / merge ----------------------------------------

def _metric_meta(metric) -> dict[str, Any]:
    meta = {
        "name": metric.name,
        "kind": metric.kind,
        "help": metric.help,
        "labels": tuple(metric.labels),
    }
    if isinstance(metric, Histogram):
        meta["buckets"] = tuple(metric.buckets)
    return meta


def snapshot_metrics(registry: MetricsRegistry | None = None) -> dict:
    """Deep-copy the current per-labelset values of every instrument,
    keyed by metric name. The baseline :func:`metric_deltas` diffs
    against."""
    if registry is None:
        from . import metrics as registry
    snap: dict[str, dict] = {}
    for metric in registry.collect():
        with metric._lock:
            if isinstance(metric, Histogram):
                values = {
                    key: {"counts": list(state["counts"]),
                          "sum": state["sum"], "count": state["count"]}
                    for key, state in metric._values.items()
                }
            else:
                values = dict(metric._values)
        snap[metric.name] = values
    return snap


def metric_deltas(registry: MetricsRegistry | None = None,
                  baseline: dict | None = None) -> list[dict]:
    """What changed since ``baseline``, as a list of plain dicts.

    Counters and histograms ship the *difference* (so the parent can
    sum them in); gauges ship their current value for changed keys (the
    parent overwrites — last writer wins, which is the right call for
    occupancy-style gauges a worker recomputes per batch).
    """
    return _deltas_and_snapshot(registry, baseline)[0]


def _deltas_and_snapshot(registry: MetricsRegistry | None = None,
                         baseline: dict | None = None
                         ) -> tuple[list[dict], dict]:
    """One registry walk yielding both the deltas since ``baseline``
    and a fresh snapshot — :class:`WorkerObsCapture` feeds the snapshot
    straight back as the next batch's baseline, so a steady-state
    worker pays a single walk per batch."""
    if registry is None:
        from . import metrics as registry
    baseline = baseline or {}
    out: list[dict] = []
    snap: dict[str, dict] = {}
    for metric in registry.collect():
        base = baseline.get(metric.name, {})
        rows: list[tuple] = []
        with metric._lock:
            items = list(metric._values.items())
        if isinstance(metric, Histogram):
            current = {}
            for key, state in items:
                current[key] = {"counts": list(state["counts"]),
                                "sum": state["sum"],
                                "count": state["count"]}
                prev = base.get(key)
                if prev is None:
                    delta = current[key]
                else:
                    delta = {
                        "counts": [c - p for c, p in
                                   zip(state["counts"], prev["counts"])],
                        "sum": state["sum"] - prev["sum"],
                        "count": state["count"] - prev["count"],
                    }
                if delta["count"] or delta["sum"]:
                    rows.append((key, delta))
            snap[metric.name] = current
        elif isinstance(metric, Counter):
            for key, value in items:
                delta = value - base.get(key, 0)
                if delta:
                    rows.append((key, delta))
            snap[metric.name] = dict(items)
        else:  # Gauge (and any untyped metric): ship changed values
            for key, value in items:
                if key not in base or base[key] != value:
                    rows.append((key, value))
            snap[metric.name] = dict(items)
        if rows:
            entry = _metric_meta(metric)
            entry["values"] = rows
            out.append(entry)
    return out, snap


def merge_metric_deltas(deltas: list[dict],
                        registry: MetricsRegistry | None = None) -> None:
    """Fold worker deltas into ``registry`` (default: the global one).

    Instruments are (re-)registered by the shipped shape, so a metric
    only a worker ever touched still appears in the parent's export.
    """
    if registry is None:
        from . import metrics as registry
    for entry in deltas:
        name, kind, labels = entry["name"], entry["kind"], entry["labels"]
        if kind == "counter":
            metric = registry.counter(name, help=entry["help"], labels=labels)
            for key, delta in entry["values"]:
                metric.inc(delta, **dict(zip(labels, key)))
        elif kind == "histogram":
            metric = registry.histogram(name, help=entry["help"],
                                        labels=labels,
                                        buckets=entry["buckets"])
            for key, state in entry["values"]:
                metric.merge_state(state, **dict(zip(labels, key)))
        elif kind == "gauge":
            metric = registry.gauge(name, help=entry["help"], labels=labels)
            for key, value in entry["values"]:
                metric.set(value, **dict(zip(labels, key)))


# -- spans: export / adopt ----------------------------------------------------

def export_spans(tracer: Tracer | None = None) -> list[dict]:
    """Finished spans as plain dicts, completion order preserved."""
    if tracer is None:
        from . import trace as tracer
    return [s.to_dict() for s in tracer.spans]


def adopt_spans(tracer: Tracer, span_dicts: list[dict],
                parent: Span | None = None, track: int = 0,
                track_name: str = "", **attrs: Any) -> list[Span]:
    """Rebuild foreign span dicts as spans of ``tracer``.

    Two passes, because worker span lists are in completion order
    (children before their parents): first construct every span with a
    fresh id from the adopting tracer, then remap parent links through
    the id map. Roots re-parent under ``parent`` (typically the live
    ``pisa.batch`` span), land on Chrome-trace track ``track``, and all
    spans gain ``attrs`` (e.g. ``worker=2``).
    """
    id_map: dict[int, Span] = {}
    adopted: list[Span] = []
    for d in span_dicts:
        sp = Span(tracer, d["name"], dict(d.get("attrs") or {}))
        sp.attrs.update(attrs)
        sp.start = d["start"]
        sp.end = d["end"]
        sp.thread_id = track or d.get("thread_id", 0)
        sp.thread_name = track_name or d.get("thread_name", "")
        sp.events = [
            SpanEvent(e["name"], e["ts"], dict(e.get("attrs") or {}))
            for e in d.get("events") or []
        ]
        old_id = d.get("span_id")
        if old_id is not None:
            id_map[old_id] = sp
        adopted.append(sp)
    for d, sp in zip(span_dicts, adopted):
        old_parent = d.get("parent_id")
        mapped = id_map.get(old_parent) if old_parent is not None else None
        if mapped is not None:
            sp.parent_id = mapped.span_id
        elif parent is not None:
            sp.parent_id = parent.span_id
        tracer._record(sp)
    return adopted


# -- the worker-side capture + parent-side merge ------------------------------

_UNSET = object()


class WorkerObsCapture:
    """Worker-side bracket around one batch.

    ``begin()`` aligns the tracer with the parent (or, in fork-per-batch
    children that inherited correct state, just clears stale spans) and
    snapshots metrics; ``finish()`` returns the plain-data payload to
    append to the batch-end reply — or ``None`` when there is nothing
    to ship, so the common untraced path costs one snapshot/diff of the
    registry per batch.
    """

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None):
        if tracer is None:
            from . import trace as tracer
        if registry is None:
            from . import metrics as registry
        self.tracer = tracer
        self.registry = registry
        self._baseline: dict | None = None

    def begin(self, ctl=_UNSET) -> None:
        if ctl is not _UNSET:
            apply_obs_control(ctl, self.tracer)
        else:
            self.tracer.clear_recorded()
        if self._baseline is None:  # later batches reuse finish()'s walk
            self._baseline = snapshot_metrics(self.registry)

    def finish(self) -> dict | None:
        spans = export_spans(self.tracer) if self.tracer.enabled else []
        events = ([e.to_dict() for e in self.tracer.orphan_events]
                  if self.tracer.enabled else [])
        deltas, self._baseline = _deltas_and_snapshot(self.registry,
                                                      self._baseline)
        self.tracer.clear_recorded()
        if not spans and not events and not deltas:
            return None
        return {"spans": spans, "events": events, "metrics": deltas}


def merge_worker_obs(payload: dict | None, worker: int | str,
                     track: int = 0, track_name: str = "",
                     tracer: Tracer | None = None,
                     registry: MetricsRegistry | None = None,
                     parent: Span | None = None) -> None:
    """Parent-side merge of one worker's :meth:`WorkerObsCapture.finish`
    payload. Metrics always merge; spans only when the parent tracer is
    enabled (re-parented under ``parent``, defaulting to the current
    open span, with a ``worker`` attribute on every adopted span)."""
    if payload is None:
        return
    if tracer is None:
        from . import trace as tracer
    if registry is None:
        from . import metrics as registry
    merge_metric_deltas(payload.get("metrics") or [], registry)
    if not tracer.enabled:
        return
    if parent is None:
        parent = tracer.current_span()
    if not track_name:
        track_name = f"worker-{worker}"
    adopt_spans(tracer, payload.get("spans") or [], parent=parent,
                track=track, track_name=track_name, worker=worker)
    for e in payload.get("events") or []:
        ev = SpanEvent(e["name"], e["ts"],
                       {**(e.get("attrs") or {}), "worker": worker})
        try:
            parent.events.append(ev)
        except AttributeError:  # no open span (or NULL_SPAN): keep as orphan
            with tracer._lock:
                tracer._events.append(ev)
