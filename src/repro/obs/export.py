"""Exporters: Chrome trace-event JSON, Prometheus textfile, JSONL.

The Chrome trace-event format (the ``chrome://tracing`` / Perfetto
"JSON Object Format") is the tracing interchange target: every finished
span becomes a complete (``"ph": "X"``) event, every span-attached
event an instant (``"ph": "i"``) event on the same thread track, plus
``"M"`` metadata events naming the process and threads. ``args`` carry
the span's attributes along with ``span_id``/``parent_id`` so the exact
tree (not just the per-thread nesting Perfetto infers from timestamps)
survives the round trip — ``p4all obs`` rebuilds it from there.

The validators are deliberately strict and dependency-free: the CI
``obs-smoke`` job and the test suite run emitted artifacts through them
so a malformed trace fails loudly here rather than silently rendering
an empty timeline in Perfetto.
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path
from typing import Any

from .metrics import _NAME_RE, MetricsRegistry
from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_prometheus",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_prometheus_text",
    "validate_prometheus_file",
]

_US = 1e6  # seconds → microseconds (trace-event timestamps are µs)


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of span attrs to JSON-serializable data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    return str(value)


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Render a tracer's spans as a Chrome trace-event JSON object."""
    pid = os.getpid()
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": "p4all"},
        }
    ]
    thread_names: dict[int, str] = {}
    for span in tracer.spans:
        thread_names.setdefault(span.thread_id, span.thread_name)
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(_json_safe(span.attrs))
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": pid,
                "tid": span.thread_id,
                "args": args,
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": ev.ts * _US,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {"span_id": span.span_id,
                             **_json_safe(ev.attrs)},
                }
            )
    for ev in tracer.orphan_events:
        events.append(
            {
                "name": ev.name,
                "cat": "event",
                "ph": "i",
                "s": "p",
                "ts": ev.ts * _US,
                "pid": pid,
                "tid": 0,
                "args": _json_safe(ev.attrs),
            }
        )
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": name or f"thread-{tid}"},
            }
        )
    events.sort(key=lambda e: (e["ph"] != "M", e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "wall_epoch": tracer.wall_epoch,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1,
                               sort_keys=True))
    return path


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> int:
    """One JSON object per finished span; returns the span count."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    spans = tracer.spans
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(_json_safe(span.to_dict()),
                                sort_keys=True) + "\n")
    return len(spans)


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_prometheus())
    return path


# ---------------------------------------------------------------------------
# Validation (CI smoke + tests).

_REQUIRED_BY_PHASE = {"X": ("dur",), "i": ("s",), "M": ()}


def validate_chrome_trace(obj: Any) -> int:
    """Check a Chrome trace-event JSON object; returns the event count.

    Raises :class:`ValueError` on the first malformation. Checks the
    object form (``traceEvents`` list), per-event required fields, phase
    kinds, non-negative microsecond timestamps/durations, and that
    ``args`` are JSON objects.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(f"traceEvents[{i}] missing {field!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"traceEvents[{i}] has a non-string name")
        ph = event["ph"]
        if ph not in _REQUIRED_BY_PHASE:
            raise ValueError(
                f"traceEvents[{i}] has unsupported phase {ph!r} "
                f"(expected one of {sorted(_REQUIRED_BY_PHASE)})"
            )
        for field in _REQUIRED_BY_PHASE[ph]:
            if field not in event:
                raise ValueError(
                    f"traceEvents[{i}] (ph={ph!r}) missing {field!r}"
                )
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or math.isnan(ts) or ts < 0:
            raise ValueError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has invalid dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{i}] args must be an object")
    return len(events)


def validate_chrome_trace_file(path: str | Path) -> int:
    return validate_chrome_trace(json.loads(Path(path).read_text()))


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_prometheus_text(text: str) -> int:
    """Check Prometheus text exposition format; returns the sample count.

    Enforces: well-formed ``# TYPE``/``# HELP`` lines, every sample
    preceded by a ``# TYPE`` for its family (``_bucket``/``_sum``/
    ``_count`` suffixes resolve to their histogram family), metric and
    label name syntax, float-parseable values, and histogram buckets
    carrying an ``le`` label.
    """
    declared: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"line {lineno}: invalid metric name {name!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ValueError(
                        f"line {lineno}: bad TYPE line {line!r}"
                    )
                declared[name] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in declared:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        labels = m.group("labels")
        label_names = []
        if labels:
            body = labels[1:-1].strip()
            if body:
                for pair in _split_label_pairs(body, lineno):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise ValueError(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
                    label_names.append(pair.split("=", 1)[0])
        if (declared[family] == "histogram" and name.endswith("_bucket")
                and "le" not in label_names):
            raise ValueError(
                f"line {lineno}: histogram bucket sample missing le label"
            )
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {value!r}"
                ) from None
        samples += 1
    return samples


def _split_label_pairs(body: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs, depth_quote, start = [], False, 0
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and depth_quote:
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        elif ch == "," and not depth_quote:
            pairs.append(body[start:i].strip())
            start = i + 1
        i += 1
    if depth_quote:
        raise ValueError(f"line {lineno}: unterminated label value")
    tail = body[start:].strip()
    if tail:
        pairs.append(tail)
    return pairs


def validate_prometheus_file(path: str | Path) -> int:
    return validate_prometheus_text(Path(path).read_text())
