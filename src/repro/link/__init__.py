"""Module linker: multi-program composition as IR, not string splicing.

The front end turns each elastic module into a cacheable
:class:`~repro.link.moduleir.ModuleIR`; :func:`link_p4all_modules` (for
``P4AllModule`` objects plus app glue) and :func:`link_files` (for
standalone ``.p4all`` sources) merge the IRs into one
:class:`~repro.link.linker.LinkedProgram` with module identity —
namespace ownership, per-module utility terms, isolation diagnostics —
preserved for every downstream layer. Compile a linked program with
:func:`repro.core.compile_linked`.
"""

from .errors import IsolationError, LinkError
from .linker import (
    APP_MODULE,
    FlowDiagnostic,
    LinkedProgram,
    link_files,
    link_p4all_modules,
    splice_modules,
)
from .moduleir import (
    ModuleIR,
    build_module_ir,
    module_fragment_source,
    module_ir,
    module_ir_from_source,
)

__all__ = [
    "APP_MODULE",
    "FlowDiagnostic",
    "IsolationError",
    "LinkError",
    "LinkedProgram",
    "ModuleIR",
    "build_module_ir",
    "link_files",
    "link_p4all_modules",
    "module_fragment_source",
    "module_ir",
    "module_ir_from_source",
    "splice_modules",
]
