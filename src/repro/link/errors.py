"""Linker error types.

Both subclass :class:`~repro.core.errors.CompileError` so existing
callers (the CLI, the runtime planner) that already catch compile
errors handle link failures without new plumbing.
"""

from __future__ import annotations

from ..core.errors import CompileError

__all__ = ["LinkError", "IsolationError"]


class LinkError(CompileError):
    """Modules cannot be linked into one program (collision, bad input)."""


class IsolationError(LinkError):
    """A module touches stateful storage owned by another module.

    Cross-module register access defeats per-tenant isolation: one
    tenant's actions could read or corrupt another tenant's state. The
    linker rejects it by default; pass ``allow_cross_module_state=True``
    to downgrade the failure to diagnostics on the linked program.
    """
