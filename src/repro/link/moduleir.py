"""Per-module front end: parse one elastic module into a cacheable IR.

A :class:`ModuleIR` is the namespaced, per-module unit the linker works
with: the module's symbolic sizes, assumes, metadata fields, top-level
declarations, apply-block statements, and utility term — each held as
*AST nodes*, not strings. A module is rendered to a small standalone
fragment (wrapping its apply calls in a ``__module_apply__`` control so
the fragment parses on its own), parsed once, and memoized by fragment
text, so editing one module of a linked program re-parses only that
module.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..core.cache import source_fingerprint
from ..lang import ast
from ..lang.errors import P4AllError
from ..lang.parser import parse_program
from .errors import LinkError

__all__ = [
    "ModuleIR",
    "WRAPPER_CONTROL",
    "module_fragment_source",
    "build_module_ir",
    "module_ir",
    "module_ir_from_source",
    "rename_module_ir",
]

#: Name of the synthetic control that wraps a module's apply calls so a
#: fragment parses standalone. Stripped (inlined) during linking.
WRAPPER_CONTROL = "__module_apply__"

#: Struct names the checker recognises as the metadata struct.
METADATA_STRUCTS = ("metadata", "metadata_t", "meta_t")


@dataclass
class ModuleIR:
    """The analyzed, linkable form of one elastic module."""

    name: str
    source: str
    fingerprint: str
    entry: str
    program: ast.Program
    symbolic_decls: list = field(default_factory=list)
    assume_decls: list = field(default_factory=list)
    const_decls: list = field(default_factory=list)
    metadata_fields: list = field(default_factory=list)
    decls: list = field(default_factory=list)
    apply_stmts: list = field(default_factory=list)
    utility: ast.Expr | None = None
    registers: list = field(default_factory=list)
    actions: list = field(default_factory=list)
    tables: list = field(default_factory=list)
    controls: list = field(default_factory=list)
    #: symbol name -> kind ("symbolic"/"register"/"action"/"table"/
    #: "control"/"field"/"const") — the ownership labels the linker
    #: projects into the :class:`~repro.lang.symbols.ModuleNamespace`
    #: and the taint verifier consumes.
    labels: dict = field(default_factory=dict)

    @property
    def symbolics(self) -> list:
        return [d.name for d in self.symbolic_decls]

    @property
    def consts(self) -> list:
        return [d.name for d in self.const_decls]

    def symbol_labels(self) -> dict:
        """Every symbol this module declares, labeled with its kind and
        owner: ``{name: (kind, module_name)}``."""
        return {name: (kind, self.name) for name, kind in self.labels.items()}

    def owned_names(self) -> list:
        """Names this module introduces into the link-global namespace.

        Metadata fields and consts are deliberately excluded: fields are
        the sharing surface between modules (identical re-declarations
        unify), and const collisions are resolved decl-by-decl.
        """
        return (list(self.symbolics) + list(self.registers)
                + list(self.actions) + list(self.tables)
                + list(self.controls))


def module_fragment_source(module) -> str:
    """Render a ``P4AllModule``-shaped object as a standalone fragment.

    Duck-typed on the module's string fields so this layer never imports
    ``repro.structures``. The fragment is parse-only input: references
    to metadata fields supplied by app glue are fine, since semantic
    checking happens on the *linked* program.
    """
    lines: list[str] = []
    for sym in module.symbolics:
        lines.append(f"symbolic int {sym};")
    for assume in module.assumes:
        lines.append(f"assume {assume};")
    if module.metadata_fields:
        lines.append("struct metadata {")
        for fld in module.metadata_fields:
            lines.append(f"    {fld}")
        lines.append("}")
    for decl in module.declarations:
        lines.append(decl)
    lines.append(f"control {WRAPPER_CONTROL}(inout metadata meta) {{")
    lines.append("    apply {")
    for call in module.apply_calls:
        lines.append(f"        {call}")
    lines.append("    }")
    lines.append("}")
    if module.utility_term:
        lines.append(f"optimize {module.utility_term};")
    return "\n".join(lines) + "\n"


def _extract(name: str, source: str, fingerprint: str, entry: str,
             program: ast.Program) -> ModuleIR:
    """Slice a parsed fragment into the linkable pieces."""
    ir = ModuleIR(name=name, source=source, fingerprint=fingerprint,
                  entry=entry, program=program)
    for decl in program.decls:
        if isinstance(decl, ast.SymbolicDecl):
            ir.symbolic_decls.append(decl)
        elif isinstance(decl, ast.AssumeDecl):
            ir.assume_decls.append(decl)
        elif isinstance(decl, ast.ConstDecl):
            ir.const_decls.append(decl)
        elif isinstance(decl, ast.OptimizeDecl):
            ir.utility = decl.utility
        elif (isinstance(decl, ast.StructDecl)
              and decl.name in METADATA_STRUCTS):
            ir.metadata_fields.extend(decl.fields)
        elif isinstance(decl, ast.ControlDecl) and decl.name == entry:
            # Inline the wrapper: hoist locals, keep the apply body.
            ir.decls.extend(decl.locals)
            ir.apply_stmts.extend(decl.apply.stmts)
        else:
            ir.decls.append(decl)
    ir.registers = [r.name for r in program.registers()]
    ir.actions = [a.name for a in program.actions()]
    ir.tables = [t.name for t in program.tables()]
    ir.controls = [c.name for c in program.controls() if c.name != entry]
    for kind, group in (
        ("symbolic", ir.symbolics),
        ("register", ir.registers),
        ("action", ir.actions),
        ("table", ir.tables),
        ("control", ir.controls),
        ("field", [fd.name for fd in ir.metadata_fields]),
        ("const", ir.consts),
    ):
        for sym in group:
            ir.labels[sym] = kind
    return ir


def build_module_ir(name: str, source: str,
                    entry: str = WRAPPER_CONTROL) -> ModuleIR:
    """Parse one module fragment into its IR (uncached)."""
    try:
        program = parse_program(source, filename=f"<module {name}>")
    except P4AllError as exc:
        raise LinkError(f"module '{name}' failed to parse: {exc}") from exc
    return _extract(name, source, source_fingerprint(source), entry, program)


# Process-wide memo for linker calls without an explicit CompileCache
# (e.g. legacy compose() sweeps). Bounded: cleared wholesale at the cap.
_FRAGMENT_MEMO: dict = {}
_FRAGMENT_MEMO_CAP = 256


def _memoized_ir(name: str, source: str, cache, entry: str) -> ModuleIR:
    key = f"{entry}\x00{name}\x00{source}"
    if cache is not None and hasattr(cache, "module"):
        ir, _hit = cache.module(key, lambda: build_module_ir(name, source, entry))
        return ir
    ir = _FRAGMENT_MEMO.get(key)
    if ir is None:
        if len(_FRAGMENT_MEMO) >= _FRAGMENT_MEMO_CAP:
            _FRAGMENT_MEMO.clear()
        ir = build_module_ir(name, source, entry)
        _FRAGMENT_MEMO[key] = ir
    return ir


def module_ir(module, cache=None) -> ModuleIR:
    """Front-end one ``P4AllModule``, memoized per fragment text."""
    return _memoized_ir(module.name, module_fragment_source(module), cache,
                        WRAPPER_CONTROL)


def module_ir_from_source(name: str, source: str, cache=None,
                          entry: str = "Ingress") -> ModuleIR:
    """Front-end a standalone ``.p4all`` source as one module.

    The file's entry control (``Ingress`` by default) plays the wrapper
    role: its apply block becomes the module's apply statements and its
    locals are hoisted, so entry controls never collide across files.
    """
    return _memoized_ir(name, source, cache, entry)


def rename_module_ir(ir: ModuleIR, renames: dict) -> ModuleIR:
    """Apply a symbol-rename map, returning a fresh ModuleIR.

    Deep-copies the fragment program and rewrites every ``Name`` use,
    declaration name, and table action reference. Used by the linker to
    prefix-rewrite colliding names; the original IR (and the cache entry
    holding it) is left untouched.
    """
    if not renames:
        return ir
    program = copy.deepcopy(ir.program)
    for node in ast.walk(program):
        if isinstance(node, ast.Name) and node.ident in renames:
            node.ident = renames[node.ident]
        elif isinstance(node, (ast.SymbolicDecl, ast.RegisterDecl,
                               ast.ActionDecl, ast.ControlDecl)):
            if node.name in renames:
                node.name = renames[node.name]
        elif isinstance(node, ast.TableDecl):
            if node.name in renames:
                node.name = renames[node.name]
            node.actions = [renames.get(a, a) for a in node.actions]
            if node.default_action in renames:
                node.default_action = renames[node.default_action]
    fingerprint = source_fingerprint(
        ir.fingerprint + "".join(f"{k}\x00{v};" for k, v in sorted(renames.items()))
    )
    return _extract(ir.name, ir.source, fingerprint, ir.entry, program)
