"""The module linker: merge :class:`ModuleIR`\\ s into one program.

This replaces string splicing as the composition mechanism. Each module
is front-ended once (:mod:`repro.link.moduleir`), then the linker:

* merges symbolics/assumes/declarations in the canonical compose order,
  so linked compilation reproduces the legacy ``compose()`` layouts
  bit-for-bit;
* detects cross-module name collisions and prefix-rewrites the later
  module's names (``{module}_{name}``);
* unifies identical metadata field re-declarations and rejects
  conflicting ones;
* verifies tenant isolation *semantically*: a taint pass over the merged
  program (:mod:`repro.analysis.taint`) rejects any cross-module
  information flow — not just shared register names — with a witness
  path (:class:`~repro.analysis.taint.FlowDiagnostic`), downgradable
  per-edge via ``allow_cross_module_state``;
* records per-module utility terms (an explicit weighted sum) and
  optional per-module utility floors for the layout ILP;
* attaches a :class:`~repro.lang.symbols.ModuleNamespace` so every
  downstream layer can attribute resources per module.

The result is a :class:`LinkedProgram` the existing bounds/ILP/codegen
phases consume unchanged (via :func:`repro.core.compile_linked`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..analysis import build_ir
from ..analysis.dependencies import AnalysisError
from ..analysis.ir import instantiate
from ..analysis.taint import FlowDiagnostic, cross_module_flows, propagate_taint
from ..core.cache import source_fingerprint
from ..lang import ast, check_program
from ..lang.errors import P4AllError
from ..obs import trace
from ..lang.pretty import pretty_program
from ..lang.symbols import ModuleNamespace, static_names
from .errors import IsolationError, LinkError
from .moduleir import (
    ModuleIR,
    module_ir,
    module_ir_from_source,
    rename_module_ir,
)

__all__ = ["LinkedProgram", "FlowDiagnostic", "link_p4all_modules",
           "link_files", "splice_modules", "APP_MODULE"]

#: Owner label for app-level glue (extra declarations, routing tables).
APP_MODULE = "(app)"

_PRE_WRAPPER = "__link_pre__"
_POST_WRAPPER = "__link_post__"


@dataclass
class LinkedProgram:
    """One merged program with module identity preserved."""

    name: str
    program: ast.Program
    source: str
    fingerprint: str
    modules: list[ModuleIR] = field(default_factory=list)
    namespace: ModuleNamespace = field(default_factory=ModuleNamespace)
    utility: ast.Expr | None = None
    #: (module, weight, term-expr) triples — the ILP objective is the
    #: explicit weighted sum of these.
    utility_terms: list = field(default_factory=list)
    #: module -> minimum weighted utility, enforced as ILP constraints.
    floors: dict = field(default_factory=dict)
    #: isolation diagnostics collected when cross-module state access is
    #: allowed instead of rejected (rendered strings, one per finding).
    diagnostics: list = field(default_factory=list)
    #: structured :class:`~repro.analysis.taint.FlowDiagnostic` records
    #: for every downgraded cross-module flow (source module → sink
    #: module with a witness path through the dataflow graph).
    flows: list = field(default_factory=list)
    entry: str = "Ingress"
    _relink: "Callable | None" = field(default=None, repr=False, compare=False)

    @property
    def module_names(self) -> list:
        return [m.name for m in self.modules]

    def reweight(self, weights: dict, floors: dict | None = None,
                 cache=None) -> "LinkedProgram":
        """Re-link with new per-module utility weights (and floors).

        Only the objective changes, so every module's frontend artifacts
        are cache hits — one tenant's re-weighting never re-parses the
        others.
        """
        if self._relink is None:
            raise LinkError(
                f"linked program '{self.name}' does not support re-weighting"
            )
        return self._relink(weights, floors, cache)


def splice_modules(
    modules,
    extra_metadata=None,
    utility=None,
    utility_weights=None,
    extra_assumes=None,
    extra_declarations=None,
    pre_apply=None,
    post_apply=None,
    consts=None,
) -> str:
    """Render modules to one source string in the canonical splice order.

    This is the exact legacy ``structures.compose()`` rendering, kept as
    the linker's source-of-record so ``LinkedProgram.source`` (and the
    reimplemented ``compose()``) stay byte-identical with the historical
    output. Duck-typed on the module's string fields.
    """
    lines: list[str] = []
    for name, value in (consts or {}).items():
        lines.append(f"const int {name} = {value};")
    for module in modules:
        for sym in module.symbolics:
            lines.append(f"symbolic int {sym};")
    for module in modules:
        for assume in module.assumes:
            lines.append(f"assume {assume};")
    for assume in extra_assumes or []:
        lines.append(f"assume {assume};")
    lines.append("")

    lines.append("struct metadata {")
    for fd in extra_metadata or []:
        lines.append(f"    {fd}")
    for module in modules:
        for fd in module.metadata_fields:
            lines.append(f"    {fd}")
    lines.append("}")
    lines.append("")

    for decl in extra_declarations or []:
        lines.append(decl)
        lines.append("")
    for module in modules:
        lines.append(module.render_decls())
        lines.append("")

    lines.append("control Ingress(inout metadata meta) {")
    lines.append("    apply {")
    for stmt in pre_apply or []:
        lines.append(f"        {stmt}")
    for module in modules:
        for call in module.apply_calls:
            lines.append(f"        {call}")
    for stmt in post_apply or []:
        lines.append(f"        {stmt}")
    lines.append("    }")
    lines.append("}")
    lines.append("")

    if utility is None and utility_weights:
        terms = []
        for module in modules:
            weight = utility_weights.get(module.name)
            if weight is None or not module.utility_term:
                continue
            terms.append(f"{weight} * ({module.utility_term})")
        utility = " + ".join(terms) if terms else None
    if utility:
        lines.append(f"optimize {utility};")
        lines.append("")
    return "\n".join(lines)


def _glue_fragment(consts, extra_assumes, extra_metadata,
                   extra_declarations, pre_apply, post_apply,
                   utility) -> str:
    """Render app-level glue as its own parseable module fragment."""
    lines: list[str] = []
    for name, value in (consts or {}).items():
        lines.append(f"const int {name} = {value};")
    for assume in extra_assumes or []:
        lines.append(f"assume {assume};")
    if extra_metadata:
        lines.append("struct metadata {")
        for fd in extra_metadata:
            lines.append(f"    {fd}")
        lines.append("}")
    for decl in extra_declarations or []:
        lines.append(decl)
    for wrapper, stmts in ((_PRE_WRAPPER, pre_apply),
                           (_POST_WRAPPER, post_apply)):
        lines.append(f"control {wrapper}(inout metadata meta) {{")
        lines.append("    apply {")
        for stmt in stmts or []:
            lines.append(f"        {stmt}")
        lines.append("    }")
        lines.append("}")
    if utility:
        lines.append(f"optimize {utility};")
    return "\n".join(lines) + "\n"


def _resolve_collisions(irs: Sequence[ModuleIR],
                        fixed: Sequence[ModuleIR] = ()) -> tuple:
    """Prefix-rewrite names of later modules that collide with earlier ones.

    ``fixed`` modules (app glue) may not be renamed — the app refers to
    its own names by text — so a glue collision is a hard error.
    """
    taken: dict[str, str] = {}
    resolved: list[ModuleIR] = []
    renamed_any = False
    for ir in irs:
        renames: dict[str, str] = {}
        owned = ir.owned_names()
        for name in owned:
            if name in taken and taken[name] != ir.name:
                new = f"{ir.name}_{name}"
                if new in taken or new in owned:
                    raise LinkError(
                        f"cannot rename '{name}' of module '{ir.name}': "
                        f"'{new}' is also taken"
                    )
                renames[name] = new
        if renames:
            ir = rename_module_ir(ir, renames)
            renamed_any = True
        for name in ir.owned_names():
            taken[name] = ir.name
        resolved.append(ir)
    for ir in fixed:
        for name in ir.owned_names():
            if name in taken:
                raise LinkError(
                    f"app glue declares '{name}', which module "
                    f"'{taken[name]}' already owns; rename the glue "
                    f"declaration"
                )
            taken[name] = APP_MODULE
    return resolved, renamed_any


def _merge_metadata(groups) -> tuple:
    """Union metadata fields across modules.

    ``groups`` is ``[(owner, [FieldDecl, ...]), ...]`` in splice order.
    Identical re-declarations unify (fields are the intended sharing
    surface — two modules keying on ``meta.flow_id`` both declare it);
    conflicting ones are a link error.
    """
    fields: list = []
    owner: dict[str, str] = {}
    decl_by_name: dict = {}
    for owner_name, group in groups:
        for fd in group:
            prev = decl_by_name.get(fd.name)
            if prev is None:
                decl_by_name[fd.name] = fd
                owner[fd.name] = owner_name
                fields.append(fd)
            elif prev != fd:
                raise LinkError(
                    f"metadata field '{fd.name}' declared differently by "
                    f"'{owner[fd.name]}' and '{owner_name}'"
                )
    return fields, owner


def _merge_consts(groups) -> tuple:
    """Union const declarations; identical duplicates unify."""
    decls: list = []
    owner: dict[str, str] = {}
    decl_by_name: dict = {}
    for owner_name, group in groups:
        for cd in group:
            prev = decl_by_name.get(cd.name)
            if prev is None:
                decl_by_name[cd.name] = cd
                owner[cd.name] = owner_name
                decls.append(cd)
            elif prev != cd:
                raise LinkError(
                    f"const '{cd.name}' declared differently by "
                    f"'{owner[cd.name]}' and '{owner_name}'"
                )
    return decls, owner


_ISOLATION_HINT = ("; modules must share state through metadata fields, "
                   "or link with allow_cross_module_state=True")


def _parse_allow(allow) -> tuple[bool, frozenset]:
    """Normalize ``allow_cross_module_state``.

    ``True`` downgrades every flow to a diagnostic; ``False``/``None``
    rejects all of them; a collection of ``(source, sink)`` module pairs
    downgrades exactly those edges (either direction) and rejects the
    rest.
    """
    if allow is True:
        return True, frozenset()
    if not allow:
        return False, frozenset()
    return False, frozenset(tuple(edge) for edge in allow)


def _edge_allowed(src: str, dst: str, allow_all: bool,
                  allowed: frozenset) -> bool:
    return allow_all or (src, dst) in allowed or (dst, src) in allowed


def _check_isolation_names(irs: Sequence[ModuleIR], register_owner: dict,
                           allow_all: bool, allowed: frozenset) -> list:
    """The legacy *syntactic* check: flag cross-module register names.

    Walks each module's declarations and apply statements; any ``Name``
    that resolves to a register owned by a *different* module is an
    isolation violation. App glue is exempt (it is the composition
    point, e.g. NetCache's routing acts on both modules' results).

    Kept as the fallback when the merged program does not survive the
    semantic front end (the compile will surface that error itself) and
    as a sweep for *declared-but-never-applied* foreign access, which
    produces no dataflow for the taint pass to see.
    """
    diagnostics: list = []
    seen: set = set()
    for ir in irs:
        for root in list(ir.decls) + list(ir.apply_stmts):
            for node in ast.walk(root):
                if not isinstance(node, ast.Name):
                    continue
                owner = register_owner.get(node.ident)
                if owner is None or owner in (ir.name, APP_MODULE):
                    continue
                key = (ir.name, node.ident)
                if key in seen:
                    continue
                seen.add(key)
                message = (
                    f"isolation violation: module '{ir.name}' accesses "
                    f"register '{node.ident}' owned by module '{owner}'"
                )
                if not _edge_allowed(ir.name, owner, allow_all, allowed):
                    raise IsolationError(message + _ISOLATION_HINT)
                diagnostics.append(message)
    return diagnostics


# Link-time flows memo (legacy compose() sweeps re-link the same
# fragments over and over). Process-wide and keyed by the linked
# fingerprint, so it works with or without a CompileCache; the compile
# driver's verify phase has its own CompileCache tier. Bounded: cleared
# wholesale at the cap, like the module-IR memo.
_FLOW_MEMO: dict = {}
_FLOW_MEMO_CAP = 256


def _semantic_flows(program: ast.Program, ns: ModuleNamespace,
                    entry: str, fingerprint: str) -> "list | None":
    """Taint the merged program; ``None`` when the front end rejects it.

    Runs the semantic front end over the merged AST, expands every
    elastic loop at two iterations — enough to exercise the
    iteration-indexed fields without caring about target bounds — and
    returns the sorted cross-module flows. A program the checker rejects
    yields ``None``: the isolation question is moot, the compile will
    fail with the real diagnostic.
    """
    memo_key = (fingerprint, entry)
    if memo_key in _FLOW_MEMO:
        return _FLOW_MEMO[memo_key]
    try:
        info = check_program(program)
        info.namespace = ns
        ir = build_ir(info, entry)
        counts = {sym: 2 for sym in ir.loop_symbolics}
        result = propagate_taint(instantiate(ir, counts), ns,
                                 app_module=APP_MODULE)
        flows = cross_module_flows(result, ns, app_module=APP_MODULE)
    except (P4AllError, AnalysisError):
        flows = None
    if len(_FLOW_MEMO) >= _FLOW_MEMO_CAP:
        _FLOW_MEMO.clear()
    _FLOW_MEMO[memo_key] = flows
    return flows


def _flow_message(flow: FlowDiagnostic) -> str:
    kind = "register" if flow.sink_kind == "register" else "field"
    return (
        f"isolation violation: state of module '{flow.source}' flows into "
        f"{kind} '{flow.sink}' owned by module '{flow.sink_module}' "
        f"(witness: {flow.witness_text()})"
    )


def _verify_isolation(irs: Sequence[ModuleIR], ns: ModuleNamespace,
                      program: ast.Program, entry: str, fingerprint: str,
                      allow) -> tuple[list, list]:
    """The semantic isolation check; returns ``(diagnostics, flows)``.

    Raises :class:`IsolationError` on the first cross-module flow not
    covered by ``allow``; downgraded flows come back as rendered
    diagnostics plus their structured :class:`FlowDiagnostic` records.
    The legacy name-based sweep still runs afterwards to catch foreign
    register references that never reach the dataflow (declared but not
    applied) — its findings are deduplicated against the semantic ones.
    """
    allow_all, allowed = _parse_allow(allow)
    diagnostics: list = []
    flows = _semantic_flows(program, ns, entry, fingerprint)
    kept: list = []
    if flows:
        for flow in flows:
            message = _flow_message(flow)
            if not _edge_allowed(flow.source, flow.sink_module,
                                 allow_all, allowed):
                raise IsolationError(message + _ISOLATION_HINT)
            diagnostics.append(message)
            kept.append(flow)
    covered = {flow.sink for flow in kept} | {
        node for flow in kept for node in flow.witness
    }
    for message in _check_isolation_names(irs, ns.registers,
                                          allow_all, allowed):
        register = message.rsplit("register '", 1)[1].split("'", 1)[0]
        if register not in covered:
            diagnostics.append(message)
    return diagnostics, kept


#: ModuleIR label kind -> the ModuleNamespace store it projects into.
#: Fields and consts are merged separately (sharing surface), so their
#: labels only participate through ``field_owner``/``const_owner``.
_LABEL_STORES = {
    "symbolic": "symbolics",
    "register": "registers",
    "action": "actions",
    "table": "tables",
    "control": "controls",
}


def _build_namespace(irs, field_owner, const_owner,
                     glue: ModuleIR | None) -> ModuleNamespace:
    """Project per-module ownership labels into one ModuleNamespace."""
    ns = ModuleNamespace(modules=[ir.name for ir in irs])
    ns.fields = dict(field_owner)
    ns.consts = dict(const_owner)
    members = list(irs)
    if glue is not None:
        members.append(glue)
    for ir in members:
        owner = APP_MODULE if ir is glue else ir.name
        for sym, (kind, _module) in ir.symbol_labels().items():
            store = _LABEL_STORES.get(kind)
            if store is not None:
                getattr(ns, store)[sym] = owner
    return ns


def _weighted_sum(terms) -> "ast.Expr | None":
    """Fold (module, weight, expr) triples into one left-associated sum.

    Mirrors how the legacy weighted-utility string parses:
    ``w1 * (t1) + w2 * (t2)`` is ``((w1*t1) + (w2*t2))`` left-to-right,
    with integer weights as ``IntLit`` and everything else ``FloatLit``.
    """
    combined = None
    for _module, weight, term in terms:
        if isinstance(weight, int) and not isinstance(weight, bool):
            lit: ast.Expr = ast.IntLit(weight)
        else:
            lit = ast.FloatLit(float(weight))
        weighted = ast.BinaryOp("*", lit, term)
        combined = (weighted if combined is None
                    else ast.BinaryOp("+", combined, weighted))
    return combined


def _flatten_sum(expr: ast.Expr) -> list:
    if isinstance(expr, ast.BinaryOp) and expr.op == "+":
        return _flatten_sum(expr.left) + _flatten_sum(expr.right)
    return [expr]


def _split_utility(expr: ast.Expr, ns: ModuleNamespace) -> list:
    """Attribute each top-level ``+`` term of an explicit utility.

    A term whose symbolics all belong to one module is that module's;
    anything mixed (or purely constant) lands in the ``(app)`` bucket.
    """
    terms = []
    for term in _flatten_sum(expr):
        owners = {ns.symbolics.get(name) for name in static_names(term)}
        owners.discard(None)
        owner = owners.pop() if len(owners) == 1 else APP_MODULE
        terms.append((owner, 1.0, term))
    return terms


def _check_floors(floors, known: set) -> dict:
    floors = dict(floors or {})
    for module in floors:
        if module not in known:
            raise LinkError(
                f"utility floor names unknown module '{module}' "
                f"(have: {', '.join(sorted(known))})"
            )
    return floors


def _merge_program(glue: ModuleIR | None, irs: Sequence[ModuleIR],
                   merged_fields, merged_consts, glue_decls,
                   pre_stmts, post_stmts, utility_expr,
                   source: str, entry: str, name: str) -> ast.Program:
    """Assemble the linked AST in canonical splice order."""
    decls: list = []
    decls.extend(merged_consts)
    for ir in irs:
        decls.extend(ir.symbolic_decls)
    for ir in irs:
        decls.extend(ir.assume_decls)
    if glue is not None:
        decls.extend(glue.assume_decls)
    decls.append(ast.StructDecl(name="metadata", fields=list(merged_fields)))
    decls.extend(glue_decls)
    for ir in irs:
        decls.extend(ir.decls)
    apply_stmts = list(pre_stmts)
    for ir in irs:
        apply_stmts.extend(ir.apply_stmts)
    apply_stmts.extend(post_stmts)
    decls.append(ast.ControlDecl(
        name=entry,
        params=[ast.Param("inout", ast.NamedType("metadata"), "meta")],
        locals=[],
        apply=ast.Block(apply_stmts),
    ))
    if utility_expr is not None:
        decls.append(ast.OptimizeDecl(utility_expr))
    return ast.Program(decls=decls, source=source, filename=f"<linked {name}>")


def _traced_module_ir(builder, module_name: str, *args, **kwargs):
    """Run one module's IR extraction under a ``link.module`` span."""
    with trace.span("link.module", module=module_name):
        return builder(*args, **kwargs)


def link_p4all_modules(
    modules,
    extra_metadata=None,
    utility=None,
    utility_weights=None,
    extra_assumes=None,
    extra_declarations=None,
    pre_apply=None,
    post_apply=None,
    consts=None,
    floors=None,
    cache=None,
    allow_cross_module_state=False,
    name=None,
    entry="Ingress",
) -> LinkedProgram:
    """Link ``P4AllModule`` objects (plus app glue) into one program.

    Takes the full legacy ``compose()`` keyword surface, so
    ``compose()`` is a thin wrapper returning ``.source``. The rendered
    source is byte-identical with the historical splice whenever no
    collision renames fire (library modules are pre-prefixed, so renames
    only trigger when two modules share a prefix).
    """
    modules = list(modules)
    names = [m.name for m in modules]
    if len(set(names)) != len(names):
        raise LinkError(f"duplicate module names in link: {names}")

    with trace.span(
        "link", kind="p4all_modules", modules=len(modules),
        names=",".join(names),
    ) as _span:
        linked = _link_p4all_modules_body(
            modules, extra_metadata, utility, utility_weights,
            extra_assumes, extra_declarations, pre_apply, post_apply,
            consts, floors, cache, allow_cross_module_state, name, entry,
        )
        _span.set_attrs(linked_name=linked.name,
                        diagnostics=len(linked.diagnostics))
        return linked


def _link_p4all_modules_body(
    modules, extra_metadata, utility, utility_weights, extra_assumes,
    extra_declarations, pre_apply, post_apply, consts, floors, cache,
    allow_cross_module_state, name, entry,
) -> LinkedProgram:
    irs = [_traced_module_ir(module_ir, m.name, m, cache) for m in modules]

    glue_source = _glue_fragment(consts, extra_assumes, extra_metadata,
                                 extra_declarations, pre_apply, post_apply,
                                 utility)
    glue = _traced_module_ir(module_ir_from_source, APP_MODULE,
                             APP_MODULE, glue_source, cache,
                             entry=_PRE_WRAPPER)
    # The glue fragment carries two wrapper controls; _PRE is the entry
    # (already inlined), _POST is extracted from the leftover decls.
    post_ctrl = next(
        d for d in glue.decls
        if isinstance(d, ast.ControlDecl) and d.name == _POST_WRAPPER
    )
    glue_decls = [
        d for d in glue.decls
        if not (isinstance(d, ast.ControlDecl) and d.name == _POST_WRAPPER)
    ]
    glue_view = ModuleIR(
        name=glue.name, source=glue.source, fingerprint=glue.fingerprint,
        entry=glue.entry, program=glue.program,
        symbolic_decls=glue.symbolic_decls, assume_decls=glue.assume_decls,
        const_decls=glue.const_decls, metadata_fields=glue.metadata_fields,
        decls=glue_decls, apply_stmts=glue.apply_stmts, utility=glue.utility,
        registers=glue.registers, actions=glue.actions, tables=glue.tables,
        controls=[c for c in glue.controls if c != _POST_WRAPPER],
        labels={k: v for k, v in glue.labels.items()
                if not (v == "control" and k == _POST_WRAPPER)},
    )

    irs, renamed_any = _resolve_collisions(irs, fixed=[glue_view])

    merged_fields, field_owner = _merge_metadata(
        [(APP_MODULE, glue_view.metadata_fields)]
        + [(ir.name, ir.metadata_fields) for ir in irs]
    )
    merged_consts, const_owner = _merge_consts(
        [(APP_MODULE, glue_view.const_decls)]
        + [(ir.name, ir.const_decls) for ir in irs]
    )
    ns = _build_namespace(irs, field_owner, const_owner, glue_view)

    if utility is not None:
        utility_expr = glue_view.utility
        terms = (_split_utility(utility_expr, ns)
                 if utility_expr is not None else [])
    elif utility_weights:
        terms = [
            (ir.name, utility_weights[module.name], ir.utility)
            for module, ir in zip(modules, irs)
            if utility_weights.get(module.name) is not None
            and ir.utility is not None
        ]
        utility_expr = _weighted_sum(terms)
    else:
        terms, utility_expr = [], None

    floors = _check_floors(floors, set(ns.modules) | {APP_MODULE})

    if renamed_any:
        source = ""
    else:
        source = splice_modules(
            modules, extra_metadata=extra_metadata, utility=utility,
            utility_weights=utility_weights, extra_assumes=extra_assumes,
            extra_declarations=extra_declarations, pre_apply=pre_apply,
            post_apply=post_apply, consts=consts,
        )
    link_name = name or "+".join(ir.name for ir in irs)
    program = _merge_program(
        glue_view, irs, merged_fields, merged_consts, glue_decls,
        glue_view.apply_stmts, post_ctrl.apply.stmts, utility_expr,
        source, entry, link_name,
    )
    if renamed_any:
        # The legacy splice would contain duplicate declarations; render
        # the renamed AST instead so the source matches what compiles.
        source = pretty_program(program)
        program.source = source

    fingerprint = _linked_fingerprint(source, floors)
    with trace.span("link.verify", modules=len(irs)) as vspan:
        diagnostics, flows = _verify_isolation(
            irs, ns, program, entry, fingerprint,
            allow_cross_module_state,
        )
        vspan.set_attrs(flows=len(flows))

    def relink(new_weights, new_floors, new_cache):
        return link_p4all_modules(
            modules, extra_metadata=extra_metadata, utility=None,
            utility_weights=new_weights, extra_assumes=extra_assumes,
            extra_declarations=extra_declarations, pre_apply=pre_apply,
            post_apply=post_apply, consts=consts,
            floors=new_floors if new_floors is not None else floors,
            cache=new_cache if new_cache is not None else cache,
            allow_cross_module_state=allow_cross_module_state,
            name=name, entry=entry,
        )

    return LinkedProgram(
        name=link_name, program=program, source=source,
        fingerprint=fingerprint,
        modules=irs, namespace=ns, utility=utility_expr,
        utility_terms=terms, floors=floors, diagnostics=diagnostics,
        flows=flows, entry=entry, _relink=relink,
    )


def link_files(
    sources,
    weights=None,
    floors=None,
    cache=None,
    allow_cross_module_state=False,
    entry="Ingress",
    name=None,
) -> LinkedProgram:
    """Link standalone ``.p4all`` sources into one joint program.

    ``sources`` is a list of paths or ``(module_name, source_text)``
    pairs; a path's module name is its stem. Each file's entry control
    is inlined, so per-file ``Ingress`` controls never collide. Each
    file's ``optimize`` becomes that module's utility term; ``weights``
    (module name → weight, default 1.0 each) build the joint objective.
    """
    named: list = []
    for item in sources:
        if isinstance(item, (str, Path)):
            path = Path(item)
            named.append((path.stem.replace("-", "_"), path.read_text()))
        else:
            module_name, text = item
            named.append((module_name, text))
    names = [n for n, _ in named]
    if len(set(names)) != len(names):
        raise LinkError(f"duplicate module names in link: {names}")

    weights = dict(weights or {})
    for module in weights:
        if module not in names:
            raise LinkError(
                f"--weights names unknown module '{module}' "
                f"(have: {', '.join(names)})"
            )

    with trace.span(
        "link", kind="files", modules=len(named), names=",".join(names),
    ) as _span:
        linked = _link_files_body(named, names, weights, floors, cache,
                                  allow_cross_module_state, entry, name)
        _span.set_attrs(linked_name=linked.name,
                        diagnostics=len(linked.diagnostics))
        return linked


def _link_files_body(
    named, names, weights, floors, cache, allow_cross_module_state,
    entry, name,
) -> LinkedProgram:
    irs = [_traced_module_ir(module_ir_from_source, n,
                             n, text, cache, entry=entry)
           for n, text in named]
    irs, _renamed = _resolve_collisions(irs)

    merged_fields, field_owner = _merge_metadata(
        [(ir.name, ir.metadata_fields) for ir in irs]
    )
    merged_consts, const_owner = _merge_consts(
        [(ir.name, ir.const_decls) for ir in irs]
    )
    ns = _build_namespace(irs, field_owner, const_owner, None)

    terms = [
        (ir.name, weights.get(ir.name, 1.0), ir.utility)
        for ir in irs if ir.utility is not None
    ]
    utility_expr = _weighted_sum(terms)
    floors = _check_floors(floors, set(ns.modules))

    link_name = name or "+".join(ir.name for ir in irs)
    program = _merge_program(
        None, irs, merged_fields, merged_consts, [], [], [], utility_expr,
        "", entry, link_name,
    )
    source = pretty_program(program)
    program.source = source

    fingerprint = _linked_fingerprint(source, floors)
    with trace.span("link.verify", modules=len(irs)) as vspan:
        diagnostics, flows = _verify_isolation(
            irs, ns, program, entry, fingerprint,
            allow_cross_module_state,
        )
        vspan.set_attrs(flows=len(flows))

    def relink(new_weights, new_floors, new_cache):
        return link_files(
            named,
            weights=new_weights if new_weights is not None else weights,
            floors=new_floors if new_floors is not None else floors,
            cache=new_cache if new_cache is not None else cache,
            allow_cross_module_state=allow_cross_module_state,
            entry=entry, name=name,
        )

    return LinkedProgram(
        name=link_name, program=program, source=source,
        fingerprint=fingerprint,
        modules=irs, namespace=ns, utility=utility_expr,
        utility_terms=terms, floors=floors, diagnostics=diagnostics,
        flows=flows, entry=entry, _relink=relink,
    )


def _linked_fingerprint(source: str, floors: dict) -> str:
    salt = "".join(f"\x00floor:{m}={v}" for m, v in sorted(floors.items()))
    return source_fingerprint(source + salt)
