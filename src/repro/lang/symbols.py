"""Symbol resolution and semantic checks for P4All programs.

After parsing, :func:`check_program` validates the program and returns a
:class:`ProgramInfo` summary used by the analysis and compiler layers:

* symbolic values are declared once and referenced consistently;
* register/metadata array extents are static expressions over literals,
  ``const`` values, and symbolics;
* loops are bounded by static expressions and bodies use the loop index
  consistently (elastic arrays indexed by the loop variable);
* action calls match declared arity and iteration-parameter shape;
* every applied control/table/action exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError

__all__ = ["ModuleNamespace", "ProgramInfo", "check_program", "eval_static",
           "StaticEnv"]

StaticEnv = dict[str, int]


def eval_static(expr: ast.Expr, env: StaticEnv, source: str | None = None) -> int:
    """Evaluate a compile-time integer expression.

    ``env`` supplies values for names (consts and, at layout time, chosen
    symbolics). Raises :class:`SemanticError` for anything non-static.
    """
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        # Floats appear only in utility functions; static extents stay ints.
        return expr.value  # type: ignore[return-value]
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in env:
            return env[expr.ident]
        raise SemanticError(
            f"'{expr.ident}' is not a compile-time constant here", expr.loc, source
        )
    if isinstance(expr, ast.UnaryOp):
        val = eval_static(expr.operand, env, source)
        if expr.op == "-":
            return -val
        if expr.op == "!":
            return int(not val)
        if expr.op == "~":
            return ~val
    if isinstance(expr, ast.BinaryOp):
        left = eval_static(expr.left, env, source)
        right = eval_static(expr.right, env, source)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left // right,
            "%": lambda: left % right,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "<": lambda: int(left < right),
            ">": lambda: int(left > right),
            "<=": lambda: int(left <= right),
            ">=": lambda: int(left >= right),
            "&&": lambda: int(bool(left) and bool(right)),
            "||": lambda: int(bool(left) or bool(right)),
        }
        if expr.op in ops:
            try:
                return ops[expr.op]()
            except ZeroDivisionError:
                raise SemanticError("division by zero in static expression",
                                    expr.loc, source) from None
    if isinstance(expr, ast.Ternary):
        cond = eval_static(expr.cond, env, source)
        branch = expr.if_true if cond else expr.if_false
        return eval_static(branch, env, source)
    raise SemanticError(
        f"expression is not a compile-time constant ({type(expr).__name__})",
        getattr(expr, "loc", None),
        source,
    )


def static_names(expr: ast.Expr) -> set[str]:
    """All bare names referenced in a static expression."""
    return {n.ident for n in ast.walk(expr) if isinstance(n, ast.Name)}


@dataclass
class MetadataField:
    """A field of the metadata struct; elastic when ``array_size`` set."""

    name: str
    width: int
    array_size: ast.Expr | None = None

    @property
    def is_elastic(self) -> bool:
        return self.array_size is not None


@dataclass
class RegisterInfo:
    """A register declaration plus derived facts."""

    decl: ast.RegisterDecl
    cell_bits: int

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def is_elastic_count(self) -> bool:
        """True when the number of register arrays is symbolic."""
        return self.decl.count is not None and not isinstance(self.decl.count, ast.IntLit)

    @property
    def is_elastic_size(self) -> bool:
        """True when the per-array cell count is symbolic."""
        return not isinstance(self.decl.size, ast.IntLit)


@dataclass
class ModuleNamespace:
    """Which module owns each linked name.

    Attached to :class:`ProgramInfo` by the linker so downstream layers
    (layout, report, telemetry) can attribute stages, memory, and ALUs
    back to the module that declared them. App-level glue (routing
    tables, extra declarations) is owned by the pseudo-module
    ``"(app)"``, which is *not* listed in :attr:`modules`.
    """

    modules: list[str] = field(default_factory=list)
    symbolics: dict[str, str] = field(default_factory=dict)
    registers: dict[str, str] = field(default_factory=dict)
    actions: dict[str, str] = field(default_factory=dict)
    tables: dict[str, str] = field(default_factory=dict)
    controls: dict[str, str] = field(default_factory=dict)
    fields: dict[str, str] = field(default_factory=dict)
    consts: dict[str, str] = field(default_factory=dict)

    def owner_of_field(self, field_name: str) -> str | None:
        return self.fields.get(field_name)


@dataclass
class ProgramInfo:
    """Symbol tables and derived facts for one checked program."""

    program: ast.Program
    symbolics: list[str] = field(default_factory=list)
    consts: StaticEnv = field(default_factory=dict)
    registers: dict[str, RegisterInfo] = field(default_factory=dict)
    actions: dict[str, ast.ActionDecl] = field(default_factory=dict)
    tables: dict[str, ast.TableDecl] = field(default_factory=dict)
    controls: dict[str, ast.ControlDecl] = field(default_factory=dict)
    metadata: dict[str, MetadataField] = field(default_factory=dict)
    header_fields: dict[str, int] = field(default_factory=dict)
    #: module ownership map when the program came from the linker
    namespace: "ModuleNamespace | None" = None

    def metadata_fixed_bits(self) -> int:
        """PHV bits of inelastic metadata (the paper's ``P_fixed``)."""
        return sum(f.width for f in self.metadata.values() if not f.is_elastic)


_BUILTIN_FUNCS = {"hash", "min", "max"}
# Register methods: name -> (arity, description). The first argument of
# 'read' and 'add_read' is an lvalue destination.
REGISTER_METHODS = {
    "read": 2,       # read(dst, idx)
    "write": 2,      # write(idx, value)
    "add": 2,        # add(idx, amount)
    "add_read": 3,   # add_read(dst, idx, amount) — increment then read
    "max_update": 2, # max_update(idx, value)
    "min_update": 2, # min_update(idx, value)
    "swap": 3,       # swap(dst, idx, value) — read old value, write new
    "cond_add": 3,   # cond_add(idx, cond, amount) — predicated increment
    "cond_add_read": 4,  # cond_add_read(dst, idx, cond, amount) — predicated
                         # increment returning the (possibly updated) value
}


class _Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.source = program.source or None
        self.info = ProgramInfo(program=program)

    def run(self) -> ProgramInfo:
        self._collect_symbolics_and_consts()
        self._collect_types()
        self._collect_registers()
        self._collect_actions_tables_controls()
        self._check_static_extents()
        self._check_bodies()
        self._check_assumes_and_optimize()
        return self.info

    # -- collection passes --------------------------------------------------
    def _collect_symbolics_and_consts(self) -> None:
        for decl in self.program.decls:
            if isinstance(decl, ast.SymbolicDecl):
                if decl.name in self.info.symbolics:
                    raise SemanticError(
                        f"symbolic value '{decl.name}' declared twice", decl.loc, self.source
                    )
                self.info.symbolics.append(decl.name)
        for decl in self.program.decls:
            if isinstance(decl, ast.ConstDecl):
                if decl.name in self.info.consts:
                    raise SemanticError(
                        f"constant '{decl.name}' declared twice", decl.loc, self.source
                    )
                self.info.consts[decl.name] = eval_static(
                    decl.value, self.info.consts, self.source
                )

    def _collect_types(self) -> None:
        for struct in self.program.structs():
            is_meta = struct.name in ("metadata", "metadata_t", "meta_t")
            for fd in struct.fields:
                width = self._field_width(fd)
                if is_meta:
                    if fd.name in self.info.metadata:
                        raise SemanticError(
                            f"metadata field '{fd.name}' declared twice", fd.loc, self.source
                        )
                    self.info.metadata[fd.name] = MetadataField(
                        name=fd.name, width=width, array_size=fd.array_size
                    )
        for header in self.program.headers():
            for fd in header.fields:
                if fd.array_size is not None:
                    raise SemanticError(
                        "header fields cannot be elastic arrays (headers are on the wire)",
                        fd.loc,
                        self.source,
                    )
                self.info.header_fields[f"{header.name}.{fd.name}"] = self._field_width(fd)

    def _field_width(self, fd: ast.FieldDecl) -> int:
        if isinstance(fd.ty, ast.BitType):
            return fd.ty.width
        if isinstance(fd.ty, ast.BoolType):
            return 1
        raise SemanticError(
            f"field '{fd.name}' must have a bit<N> or bool type", fd.loc, self.source
        )

    def _collect_registers(self) -> None:
        for reg in self.program.registers():
            if reg.name in self.info.registers:
                raise SemanticError(
                    f"register '{reg.name}' declared twice", reg.loc, self.source
                )
            if not isinstance(reg.cell_type, ast.BitType):
                raise SemanticError(
                    f"register '{reg.name}' cells must be bit<N>", reg.loc, self.source
                )
            self.info.registers[reg.name] = RegisterInfo(
                decl=reg, cell_bits=reg.cell_type.width
            )

    def _collect_actions_tables_controls(self) -> None:
        for action in self.program.actions():
            if action.name in self.info.actions:
                raise SemanticError(
                    f"action '{action.name}' declared twice", action.loc, self.source
                )
            self.info.actions[action.name] = action
        for table in self.program.tables():
            if table.name in self.info.tables:
                raise SemanticError(
                    f"table '{table.name}' declared twice", table.loc, self.source
                )
            self.info.tables[table.name] = table
        for ctrl in self.program.controls():
            if ctrl.name in self.info.controls:
                raise SemanticError(
                    f"control '{ctrl.name}' declared twice", ctrl.loc, self.source
                )
            self.info.controls[ctrl.name] = ctrl
        for table in self.info.tables.values():
            for action_name in table.actions:
                if action_name not in self.info.actions and action_name != "NoAction":
                    raise SemanticError(
                        f"table '{table.name}' references unknown action '{action_name}'",
                        table.loc,
                        self.source,
                    )

    # -- validation passes --------------------------------------------------
    def _static_ok(self, expr: ast.Expr) -> None:
        """Extents/bounds may reference literals, consts, and symbolics."""
        allowed = set(self.info.symbolics) | set(self.info.consts)
        for name in static_names(expr):
            if name not in allowed:
                raise SemanticError(
                    f"'{name}' is neither a constant nor a symbolic value",
                    expr.loc,
                    self.source,
                )

    def _check_static_extents(self) -> None:
        for reg in self.info.registers.values():
            self._static_ok(reg.decl.size)
            if reg.decl.count is not None:
                self._static_ok(reg.decl.count)
        for fd in self.info.metadata.values():
            if fd.array_size is not None:
                self._static_ok(fd.array_size)

    def _check_bodies(self) -> None:
        for action in self.info.actions.values():
            scope = {p.name for p in action.params}
            if action.iter_param:
                scope.add(action.iter_param)
            self._check_block(action.body, scope, in_action=True)
        for ctrl in self.info.controls.values():
            scope = {p.name for p in ctrl.params}
            self._check_block(ctrl.apply, scope, in_action=False)

    def _check_block(self, block: ast.Block, scope: set[str], in_action: bool) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope, in_action)

    def _check_stmt(self, stmt: ast.Stmt, scope: set[str], in_action: bool) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, in_action)
        elif isinstance(stmt, ast.Assign):
            self._check_lvalue(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond, scope)
            self._check_block(stmt.then_block, scope, in_action)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block, scope, in_action)
        elif isinstance(stmt, ast.ForStmt):
            if in_action:
                raise SemanticError(
                    "loops are not allowed inside actions", stmt.loc, self.source
                )
            self._static_ok(stmt.bound)
            self._check_block(stmt.body, scope | {stmt.var}, in_action)
        elif isinstance(stmt, ast.CallStmt):
            self._check_call_stmt(stmt.call, scope)
        else:
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}", getattr(stmt, "loc", None),
                self.source,
            )

    def _check_call_stmt(self, call: ast.Call, scope: set[str]) -> None:
        func = call.func
        # control.apply(...) / table.apply()
        if isinstance(func, ast.Member) and func.name == "apply":
            if isinstance(func.base, ast.Name):
                target = func.base.ident
                if target in self.info.controls or target in self.info.tables:
                    for arg in call.args:
                        self._check_expr(arg, scope)
                    return
                raise SemanticError(
                    f"'{target}' is not a control or table", func.loc, self.source
                )
            raise SemanticError("apply() target must be a name", func.loc, self.source)
        # register method calls: reg.read(...), reg.write(...), ...
        if isinstance(func, ast.Member) and isinstance(func.base, ast.Name) \
                and func.base.ident in self.info.registers:
            self._check_register_call(call, func, scope)
            return
        # reg[i].method(...) — elastic register instance
        if isinstance(func, ast.Member) and isinstance(func.base, ast.Index) \
                and isinstance(func.base.base, ast.Name) \
                and func.base.base.ident in self.info.registers:
            self._check_register_call(call, func, scope, indexed=True)
            return
        # plain action invocation: act(args) or act(args)[i]
        if isinstance(func, ast.Name):
            action = self.info.actions.get(func.ident)
            if action is None:
                raise SemanticError(
                    f"call to unknown action '{func.ident}'", func.loc, self.source
                )
            if len(call.args) != len(action.params):
                raise SemanticError(
                    f"action '{action.name}' takes {len(action.params)} argument(s), "
                    f"got {len(call.args)}",
                    call.loc,
                    self.source,
                )
            if action.iter_param and call.iter_index is None:
                raise SemanticError(
                    f"action '{action.name}' needs an iteration index: "
                    f"{action.name}(...)[i]",
                    call.loc,
                    self.source,
                )
            if not action.iter_param and call.iter_index is not None:
                raise SemanticError(
                    f"action '{action.name}' takes no iteration index", call.loc, self.source
                )
            for arg in call.args:
                self._check_expr(arg, scope)
            if call.iter_index is not None:
                self._check_expr(call.iter_index, scope)
            return
        raise SemanticError("unsupported call statement", call.loc, self.source)

    def _check_register_call(
        self, call: ast.Call, func: ast.Member, scope: set[str], indexed: bool = False
    ) -> None:
        method = func.name
        if method not in REGISTER_METHODS:
            raise SemanticError(
                f"unknown register method '{method}' "
                f"(expected one of {sorted(REGISTER_METHODS)})",
                func.loc,
                self.source,
            )
        expected = REGISTER_METHODS[method]
        if len(call.args) != expected:
            raise SemanticError(
                f"register method '{method}' takes {expected} argument(s), "
                f"got {len(call.args)}",
                call.loc,
                self.source,
            )
        if indexed:
            self._check_expr(func.base.index, scope)  # type: ignore[union-attr]
        if method in ("read", "add_read", "swap", "cond_add_read"):
            self._check_lvalue(call.args[0], scope)
            for arg in call.args[1:]:
                self._check_expr(arg, scope)
        else:
            for arg in call.args:
                self._check_expr(arg, scope)

    def _check_lvalue(self, expr: ast.Expr, scope: set[str]) -> None:
        if isinstance(expr, ast.Name):
            return  # locals/params — accept
        if isinstance(expr, ast.Member):
            self._check_expr(expr, scope)
            return
        if isinstance(expr, ast.Index):
            self._check_expr(expr.base, scope)
            self._check_expr(expr.index, scope)
            return
        raise SemanticError(
            "assignment target must be a variable, field, or array element",
            getattr(expr, "loc", None),
            self.source,
        )

    def _check_expr(self, expr: ast.Expr, scope: set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Name) and fn.ident not in _BUILTIN_FUNCS:
                    raise SemanticError(
                        f"unknown function '{fn.ident}' in expression "
                        f"(builtins: {sorted(_BUILTIN_FUNCS)})",
                        fn.loc,
                        self.source,
                    )

    def _check_assumes_and_optimize(self) -> None:
        allowed = set(self.info.symbolics) | set(self.info.consts)
        for assume in self.program.assumes():
            for name in static_names(assume.condition):
                if name not in allowed:
                    raise SemanticError(
                        f"assume references '{name}', which is not a symbolic or constant",
                        assume.loc,
                        self.source,
                    )
        opt = self.program.optimize()
        if opt is not None:
            for name in static_names(opt.utility):
                if name not in allowed:
                    raise SemanticError(
                        f"utility function references '{name}', "
                        "which is not a symbolic or constant",
                        opt.loc,
                        self.source,
                    )


def check_program(program: ast.Program) -> ProgramInfo:
    """Run all semantic checks; returns the symbol summary on success."""
    return _Checker(program).run()
