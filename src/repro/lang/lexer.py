"""Hand-written lexer for P4All.

Supports C-style ``//`` and ``/* */`` comments, decimal / hex / binary
integer literals, P4-style width-prefixed literals (``8w255``), and the
full operator set used by the parser.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["Lexer", "tokenize"]

_TWO_CHAR_OPS = {
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "?": TokenKind.QUESTION,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "~": TokenKind.TILDE,
}


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ---------------------------------------------------
    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments, raising on unterminated blocks."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "@":
                # Annotations like @stage(3) are metadata for downstream
                # tools; skip them as trivia so generated P4 re-parses.
                self._advance()
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                if self._peek() == "(":
                    depth = 0
                    while True:
                        c = self._peek()
                        if not c:
                            raise LexError(
                                "unterminated annotation arguments",
                                self._loc(), self.source,
                            )
                        if c == "(":
                            depth += 1
                        elif c == ")":
                            depth -= 1
                        self._advance()
                        if depth == 0:
                            break
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start, self.source)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- token scanners -----------------------------------------------------
    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos].replace("_", "")
            try:
                return Token(TokenKind.INT, int(text, 16), loc)
            except ValueError:
                raise LexError(f"bad hex literal {text!r}", loc, self.source) from None
        if self._peek() == "0" and self._peek(1) in ("b", "B"):
            self._advance(2)
            while self._peek() and self._peek() in "01_":
                self._advance()
            text = self.source[start:self.pos].replace("_", "")
            try:
                return Token(TokenKind.INT, int(text, 2), loc)
            except ValueError:
                raise LexError(f"bad binary literal {text!r}", loc, self.source) from None
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        # Float literal (used in utility functions): ``0.4``, ``12.5``.
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos].replace("_", "")
            return Token(TokenKind.FLOAT, float(text), loc)
        # P4-style width prefix: ``8w255`` — the width part was just read.
        if self._peek() == "w" and self._peek(1).isdigit():
            self._advance()  # skip 'w'; width is informative only
            num_start = self.pos
            while self._peek().isdigit():
                self._advance()
            return Token(TokenKind.INT, int(self.source[num_start:self.pos]), loc)
        text = self.source[start:self.pos].replace("_", "")
        return Token(TokenKind.INT, int(text), loc)

    def _scan_ident(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        if kind is TokenKind.KW_TRUE:
            return Token(kind, True, loc)
        if kind is TokenKind.KW_FALSE:
            return Token(kind, False, loc)
        return Token(kind, text, loc)

    def _scan_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", loc, self.source)
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING, "".join(chars), loc)
            if ch == "\\":
                self._advance()
                esc = self._peek()
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def next_token(self) -> Token:
        """Scan and return the next token (EOF repeats at end of input)."""
        self._skip_trivia()
        loc = self._loc()
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, None, loc)
        if ch.isdigit():
            return self._scan_number()
        if ch.isalpha() or ch == "_":
            return self._scan_ident()
        if ch == '"':
            return self._scan_string()
        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(_TWO_CHAR_OPS[two], two, loc)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc, self.source)

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, including the trailing EOF token."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` fully."""
    return Lexer(source, filename).tokens()
