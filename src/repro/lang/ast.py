"""Abstract syntax tree for P4All.

The AST covers the P4 subset needed by the paper's module library and
applications, plus the four P4All extensions (§3.2):

* ``symbolic int n;``               → :class:`SymbolicDecl`
* ``assume expr;``                  → :class:`AssumeDecl`
* ``optimize expr;``                → :class:`OptimizeDecl`
* symbolic-extent register/metadata arrays → :class:`RegisterDecl` /
  :class:`FieldDecl` with expression-valued extents
* ``for (i < n) { ... }``           → :class:`ForStmt`
* ``action f()[int i] { ... }``     → :class:`ActionDecl` with ``iter_param``

All nodes carry a non-comparing ``loc`` so structural equality in tests
ignores positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import SourceLocation

__all__ = [
    "Node",
    "Type",
    "BitType",
    "BoolType",
    "IntType",
    "NamedType",
    "Expr",
    "IntLit",
    "FloatLit",
    "BoolLit",
    "Name",
    "Member",
    "Index",
    "UnaryOp",
    "BinaryOp",
    "Ternary",
    "Call",
    "Stmt",
    "Block",
    "Assign",
    "IfStmt",
    "ForStmt",
    "CallStmt",
    "Decl",
    "SymbolicDecl",
    "AssumeDecl",
    "OptimizeDecl",
    "ConstDecl",
    "FieldDecl",
    "HeaderDecl",
    "StructDecl",
    "RegisterDecl",
    "Param",
    "ActionDecl",
    "TableKey",
    "TableDecl",
    "ControlDecl",
    "Program",
    "walk",
]


def _loc_field():
    return field(default_factory=SourceLocation.unknown, compare=False, repr=False)


@dataclass
class Node:
    """Base AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (default: none)."""
        return iter(())


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass
class Type(Node):
    pass


@dataclass
class BitType(Type):
    """``bit<W>`` — unsigned integer of fixed width W."""

    width: int
    loc: SourceLocation = _loc_field()


@dataclass
class BoolType(Type):
    loc: SourceLocation = _loc_field()


@dataclass
class IntType(Type):
    """Arbitrary-width compile-time integer (loop indices, symbolics)."""

    loc: SourceLocation = _loc_field()


@dataclass
class NamedType(Type):
    """Reference to a header/struct type by name."""

    name: str
    loc: SourceLocation = _loc_field()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    loc: SourceLocation = _loc_field()


@dataclass
class FloatLit(Expr):
    """A float literal — only meaningful in utility functions (§3.2.4)."""

    value: float
    loc: SourceLocation = _loc_field()


@dataclass
class BoolLit(Expr):
    value: bool
    loc: SourceLocation = _loc_field()


@dataclass
class Name(Expr):
    """A bare identifier: variable, symbolic, register, loop index, ..."""

    ident: str
    loc: SourceLocation = _loc_field()


@dataclass
class Member(Expr):
    """Field access ``base.name`` (e.g. ``meta.min``, ``hdr.ipv4.src``)."""

    base: Expr
    name: str
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.base


@dataclass
class Index(Expr):
    """Array subscript ``base[index]`` (elastic arrays, register rows)."""

    base: Expr
    index: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.base
        yield self.index


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '!', '~'
    operand: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.operand


@dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, bitwise, comparison, logical
    left: Expr
    right: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.left
        yield self.right


@dataclass
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.cond
        yield self.if_true
        yield self.if_false


@dataclass
class Call(Expr):
    """A call expression or statement.

    ``func`` is a :class:`Name` (``hash``, ``min``, an action name, a
    control name) or a :class:`Member` (``reg.write``, ``ctrl.apply``,
    ``table.apply``). P4All action invocations may carry an iteration
    index: ``incr()[i]`` parses with ``iter_index = Name('i')``.
    """

    func: Expr
    args: list[Expr]
    iter_index: Optional[Expr] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.func
        yield from self.args
        if self.iter_index is not None:
            yield self.iter_index


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt]
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.stmts


@dataclass
class Assign(Stmt):
    target: Expr  # Name / Member / Index lvalue
    value: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.target
        yield self.value


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_block: Block
    else_block: Optional[Block] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.cond
        yield self.then_block
        if self.else_block is not None:
            yield self.else_block


@dataclass
class ForStmt(Stmt):
    """``for (i < bound) body`` — bound is usually a symbolic value."""

    var: str
    bound: Expr
    body: Block
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.bound
        yield self.body


@dataclass
class CallStmt(Stmt):
    """A call in statement position (action/control/register/table ops)."""

    call: Call
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.call


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    pass


@dataclass
class SymbolicDecl(Decl):
    """``symbolic int name;`` — a compiler-chosen integer."""

    name: str
    loc: SourceLocation = _loc_field()


@dataclass
class AssumeDecl(Decl):
    """``assume expr;`` — a user constraint added to the layout ILP."""

    condition: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.condition


@dataclass
class OptimizeDecl(Decl):
    """``optimize expr;`` — the utility function the compiler maximizes."""

    utility: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.utility


@dataclass
class ConstDecl(Decl):
    ty: Type
    name: str
    value: Expr
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.ty
        yield self.value


@dataclass
class FieldDecl(Decl):
    """A header/struct field; ``array_size`` makes it an elastic array.

    ``bit<32>[rows] index;`` parses with ``array_size = Name('rows')``.
    """

    ty: Type
    name: str
    array_size: Optional[Expr] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.ty
        if self.array_size is not None:
            yield self.array_size


@dataclass
class HeaderDecl(Decl):
    name: str
    fields: list[FieldDecl] = field(default_factory=list)
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.fields


@dataclass
class StructDecl(Decl):
    name: str
    fields: list[FieldDecl] = field(default_factory=list)
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.fields


@dataclass
class RegisterDecl(Decl):
    """``register<cell>[size] name;`` or ``register<cell>[size][count] name;``

    ``size`` is the number of cells per register array; ``count`` (when
    present) makes this a symbolic array *of* register arrays — the CMS
    matrix ``register<bit<32>>[cols][rows] cms;`` has size ``cols`` and
    count ``rows``. Either extent may be a symbolic expression.
    """

    cell_type: Type
    size: Expr
    name: str
    count: Optional[Expr] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.cell_type
        yield self.size
        if self.count is not None:
            yield self.count


@dataclass
class Param(Decl):
    direction: str  # '', 'in', 'out', 'inout'
    ty: Type
    name: str
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.ty


@dataclass
class ActionDecl(Decl):
    """``action name(params)[int i] { body }``.

    ``iter_param`` is the optional elastic iteration parameter: the action
    is instantiated once per loop iteration, each instance specialized to
    a concrete ``i`` (paper §3.2.3).
    """

    name: str
    params: list[Param]
    body: Block
    iter_param: Optional[str] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.params
        yield self.body


@dataclass
class TableKey(Node):
    expr: Expr
    match_kind: str  # 'exact' | 'ternary' | 'lpm'
    loc: SourceLocation = _loc_field()

    def children(self):
        yield self.expr


@dataclass
class TableDecl(Decl):
    name: str
    keys: list[TableKey] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)
    size: Optional[Expr] = None
    default_action: Optional[str] = None
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.keys
        if self.size is not None:
            yield self.size


@dataclass
class ControlDecl(Decl):
    """A control block: local declarations plus an ``apply`` body."""

    name: str
    params: list[Param]
    locals: list[Decl] = field(default_factory=list)
    apply: Block = field(default_factory=lambda: Block([]))
    loc: SourceLocation = _loc_field()

    def children(self):
        yield from self.params
        yield from self.locals
        yield self.apply


@dataclass
class Program(Node):
    """A parsed P4All compilation unit."""

    decls: list[Decl] = field(default_factory=list)
    source: str = field(default="", compare=False, repr=False)
    filename: str = field(default="<string>", compare=False)

    def children(self):
        yield from self.decls

    # -- convenience accessors ------------------------------------------------
    def symbolics(self) -> list[SymbolicDecl]:
        return [d for d in self.decls if isinstance(d, SymbolicDecl)]

    def assumes(self) -> list[AssumeDecl]:
        return [d for d in self.decls if isinstance(d, AssumeDecl)]

    def optimize(self) -> Optional[OptimizeDecl]:
        for d in self.decls:
            if isinstance(d, OptimizeDecl):
                return d
        return None

    def registers(self) -> list[RegisterDecl]:
        out = [d for d in self.decls if isinstance(d, RegisterDecl)]
        for ctrl in self.controls():
            out.extend(d for d in ctrl.locals if isinstance(d, RegisterDecl))
        return out

    def actions(self) -> list[ActionDecl]:
        out = [d for d in self.decls if isinstance(d, ActionDecl)]
        for ctrl in self.controls():
            out.extend(d for d in ctrl.locals if isinstance(d, ActionDecl))
        return out

    def tables(self) -> list[TableDecl]:
        out = [d for d in self.decls if isinstance(d, TableDecl)]
        for ctrl in self.controls():
            out.extend(d for d in ctrl.locals if isinstance(d, TableDecl))
        return out

    def controls(self) -> list[ControlDecl]:
        return [d for d in self.decls if isinstance(d, ControlDecl)]

    def control(self, name: str) -> ControlDecl:
        for ctrl in self.controls():
            if ctrl.name == name:
                return ctrl
        raise KeyError(f"no control named {name!r}")

    def structs(self) -> list[StructDecl]:
        return [d for d in self.decls if isinstance(d, StructDecl)]

    def headers(self) -> list[HeaderDecl]:
        return [d for d in self.decls if isinstance(d, HeaderDecl)]


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal of ``node`` and its descendants."""
    yield node
    for child in node.children():
        yield from walk(child)
