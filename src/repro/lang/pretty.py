"""Pretty-printer: AST → P4All source text.

Used for diagnostics, golden tests, and round-trip property tests
(``parse(pretty(parse(src)))`` must equal ``parse(src)``). The concrete-P4
code generator in :mod:`repro.core.codegen` reuses the expression printer.
"""

from __future__ import annotations

from . import ast

__all__ = ["pretty_program", "pretty_expr", "pretty_stmt", "pretty_type"]

_INDENT = "    "


def pretty_type(ty: ast.Type) -> str:
    if isinstance(ty, ast.BitType):
        return f"bit<{ty.width}>"
    if isinstance(ty, ast.BoolType):
        return "bool"
    if isinstance(ty, ast.IntType):
        return "int"
    if isinstance(ty, ast.NamedType):
        return ty.name
    raise TypeError(f"unknown type node {type(ty).__name__}")


def pretty_expr(expr: ast.Expr) -> str:
    """Render an expression with minimal but safe parenthesization."""
    return _expr(expr, 0)


# Precedence levels mirrored from the parser (higher binds tighter).
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11


def _expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Member):
        return f"{_expr(expr.base, _UNARY_PREC)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{_expr(expr.base, _UNARY_PREC)}[{_expr(expr.index, 0)}]"
    if isinstance(expr, ast.UnaryOp):
        inner = _expr(expr.operand, _UNARY_PREC)
        text = f"{expr.op}{inner}"
        return text if parent_prec < _UNARY_PREC else f"({text})"
    if isinstance(expr, ast.BinaryOp):
        prec = _PREC[expr.op]
        left = _expr(expr.left, prec)
        right = _expr(expr.right, prec + 1)  # left-associative
        text = f"{left} {expr.op} {right}"
        return text if prec >= parent_prec else f"({text})"
    if isinstance(expr, ast.Ternary):
        text = (
            f"{_expr(expr.cond, 1)} ? {_expr(expr.if_true, 0)} : {_expr(expr.if_false, 0)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.Call):
        func = _expr(expr.func, _UNARY_PREC)
        args = ", ".join(_expr(a, 0) for a in expr.args)
        suffix = f"[{_expr(expr.iter_index, 0)}]" if expr.iter_index is not None else ""
        return f"{func}({args}){suffix}"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def pretty_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        return _block(stmt, indent)
    if isinstance(stmt, ast.Assign):
        return f"{pad}{pretty_expr(stmt.target)} = {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.CallStmt):
        return f"{pad}{pretty_expr(stmt.call)};"
    if isinstance(stmt, ast.IfStmt):
        out = f"{pad}if ({pretty_expr(stmt.cond)}) {_block(stmt.then_block, indent, inline=True)}"
        if stmt.else_block is not None:
            out += f" else {_block(stmt.else_block, indent, inline=True)}"
        return out
    if isinstance(stmt, ast.ForStmt):
        header = f"{pad}for ({stmt.var} < {pretty_expr(stmt.bound)}) "
        return header + _block(stmt.body, indent, inline=True)
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _block(block: ast.Block, indent: int, inline: bool = False) -> str:
    pad = _INDENT * indent
    lines = [pretty_stmt(s, indent + 1) for s in block.stmts]
    body = "\n".join(lines)
    opener = "{" if inline else f"{pad}{{"
    if not lines:
        return opener + " }"
    return f"{opener}\n{body}\n{pad}}}"


def _field(fd: ast.FieldDecl, indent: int) -> str:
    pad = _INDENT * indent
    if fd.array_size is not None:
        return f"{pad}{pretty_type(fd.ty)}[{pretty_expr(fd.array_size)}] {fd.name};"
    return f"{pad}{pretty_type(fd.ty)} {fd.name};"


def _params(params: list[ast.Param]) -> str:
    parts = []
    for p in params:
        prefix = f"{p.direction} " if p.direction else ""
        parts.append(f"{prefix}{pretty_type(p.ty)} {p.name}")
    return ", ".join(parts)


def pretty_decl(decl: ast.Decl, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(decl, ast.SymbolicDecl):
        return f"{pad}symbolic int {decl.name};"
    if isinstance(decl, ast.AssumeDecl):
        return f"{pad}assume {pretty_expr(decl.condition)};"
    if isinstance(decl, ast.OptimizeDecl):
        return f"{pad}optimize {pretty_expr(decl.utility)};"
    if isinstance(decl, ast.ConstDecl):
        return f"{pad}const {pretty_type(decl.ty)} {decl.name} = {pretty_expr(decl.value)};"
    if isinstance(decl, (ast.HeaderDecl, ast.StructDecl)):
        kw = "header" if isinstance(decl, ast.HeaderDecl) else "struct"
        fields = "\n".join(_field(f, indent + 1) for f in decl.fields)
        body = f"\n{fields}\n{pad}" if fields else ""
        return f"{pad}{kw} {decl.name} {{{body}}}"
    if isinstance(decl, ast.RegisterDecl):
        count = f"[{pretty_expr(decl.count)}]" if decl.count is not None else ""
        return (
            f"{pad}register<{pretty_type(decl.cell_type)}>"
            f"[{pretty_expr(decl.size)}]{count} {decl.name};"
        )
    if isinstance(decl, ast.ActionDecl):
        iter_part = f"[int {decl.iter_param}]" if decl.iter_param else ""
        header = f"{pad}action {decl.name}({_params(decl.params)}){iter_part} "
        return header + _block(decl.body, indent, inline=True)
    if isinstance(decl, ast.TableDecl):
        lines = [f"{pad}table {decl.name} {{"]
        inner = _INDENT * (indent + 1)
        inner2 = _INDENT * (indent + 2)
        if decl.keys:
            lines.append(f"{inner}key = {{")
            for key in decl.keys:
                lines.append(f"{inner2}{pretty_expr(key.expr)} : {key.match_kind};")
            lines.append(f"{inner}}}")
        if decl.actions:
            lines.append(f"{inner}actions = {{")
            for name in decl.actions:
                lines.append(f"{inner2}{name};")
            lines.append(f"{inner}}}")
        if decl.size is not None:
            lines.append(f"{inner}size = {pretty_expr(decl.size)};")
        if decl.default_action is not None:
            lines.append(f"{inner}default_action = {decl.default_action};")
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(decl, ast.ControlDecl):
        lines = [f"{pad}control {decl.name}({_params(decl.params)}) {{"]
        for local in decl.locals:
            lines.append(pretty_decl(local, indent + 1))
        lines.append(f"{_INDENT * (indent + 1)}apply " + _block(decl.apply, indent + 1, inline=True))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"unknown declaration node {type(decl).__name__}")


def pretty_program(program: ast.Program) -> str:
    """Render a full program; parses back to an equal AST."""
    return "\n\n".join(pretty_decl(d) for d in program.decls) + "\n"
