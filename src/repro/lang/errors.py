"""Source locations and diagnostic errors for the P4All front end.

Every front-end failure carries a :class:`SourceLocation` and renders a
caret-annotated snippet, because the paper's motivation (§3) is precisely
that P4 toolchains give poor feedback; a reproduction should not repeat
that mistake.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SourceLocation",
    "P4AllError",
    "LexError",
    "ParseError",
    "SemanticError",
]


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position inside a named source buffer.

    Lines and columns are 1-based; ``filename`` is a display name (a path
    or ``"<string>"`` for in-memory programs).
    """

    filename: str = "<string>"
    line: int = 1
    column: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    @staticmethod
    def unknown() -> "SourceLocation":
        return SourceLocation("<unknown>", 0, 0)


class P4AllError(Exception):
    """Base class of all front-end diagnostics.

    ``source`` (the full program text) is optional; when present, the
    stringified error includes the offending line with a caret marker.
    """

    kind = "error"

    def __init__(
        self,
        message: str,
        loc: SourceLocation | None = None,
        source: str | None = None,
    ):
        self.message = message
        self.loc = loc or SourceLocation.unknown()
        self.source = source
        super().__init__(self._render())

    def _render(self) -> str:
        header = f"{self.loc}: {self.kind}: {self.message}"
        if not self.source or self.loc.line <= 0:
            return header
        lines = self.source.splitlines()
        if self.loc.line > len(lines):
            return header
        snippet = lines[self.loc.line - 1]
        caret = " " * (self.loc.column - 1) + "^"
        return f"{header}\n  {snippet}\n  {caret}"


class LexError(P4AllError):
    """Tokenization failure (bad character, unterminated literal, ...)."""

    kind = "lex error"


class ParseError(P4AllError):
    """Grammar violation while parsing."""

    kind = "parse error"


class SemanticError(P4AllError):
    """Name/type/elasticity violation found after parsing."""

    kind = "semantic error"
