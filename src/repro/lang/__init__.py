"""P4All language front end: lexer, parser, AST, checker, pretty-printer.

The concrete syntax is the P4 subset used by the paper's examples plus the
four elastic extensions (symbolic values, symbolic arrays, bounded loops,
utility functions). A minimal elastic program::

    symbolic int rows;
    symbolic int cols;
    assume rows >= 1 && rows <= 4;

    struct metadata {
        bit<32>[rows] index;
        bit<32>[rows] count;
        bit<32> min;
    }

    register<bit<32>>[cols][rows] cms;

    action incr()[int i] {
        meta.index[i] = hash(i, hdr.flow_id);
        cms[i].add_read(meta.count[i], meta.index[i], 1);
    }

    control hash_inc(inout metadata meta) {
        apply {
            for (i < rows) { incr()[i]; }
        }
    }

    optimize rows * cols;
"""

from . import ast
from .errors import LexError, P4AllError, ParseError, SemanticError, SourceLocation
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .pretty import pretty_expr, pretty_program, pretty_stmt, pretty_type
from .symbols import (
    MetadataField,
    ProgramInfo,
    RegisterInfo,
    check_program,
    eval_static,
)

__all__ = [
    "ast",
    "LexError",
    "P4AllError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "pretty_type",
    "MetadataField",
    "ProgramInfo",
    "RegisterInfo",
    "check_program",
    "eval_static",
]
