"""Token definitions for the P4All lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical categories. Keywords get their own kinds for parser clarity."""

    # Literals / identifiers
    INT = "int literal"
    FLOAT = "float literal"
    IDENT = "identifier"
    STRING = "string literal"

    # Keywords (P4 subset + P4All extensions)
    KW_SYMBOLIC = "symbolic"
    KW_ASSUME = "assume"
    KW_OPTIMIZE = "optimize"
    KW_INT = "int"
    KW_BIT = "bit"
    KW_BOOL = "bool"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_CONST = "const"
    KW_HEADER = "header"
    KW_STRUCT = "struct"
    KW_REGISTER = "register"
    KW_ACTION = "action"
    KW_TABLE = "table"
    KW_CONTROL = "control"
    KW_APPLY = "apply"
    KW_KEY = "key"
    KW_ACTIONS = "actions"
    KW_SIZE = "size"
    KW_DEFAULT_ACTION = "default_action"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_EXACT = "exact"
    KW_TERNARY = "ternary"
    KW_LPM = "lpm"
    KW_IN = "in"
    KW_OUT = "out"
    KW_INOUT = "inout"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    QUESTION = "?"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    NOT = "!"
    TILDE = "~"

    EOF = "end of input"


KEYWORDS: dict[str, TokenKind] = {
    "symbolic": TokenKind.KW_SYMBOLIC,
    "assume": TokenKind.KW_ASSUME,
    "optimize": TokenKind.KW_OPTIMIZE,
    "int": TokenKind.KW_INT,
    "bit": TokenKind.KW_BIT,
    "bool": TokenKind.KW_BOOL,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "const": TokenKind.KW_CONST,
    "header": TokenKind.KW_HEADER,
    "struct": TokenKind.KW_STRUCT,
    "register": TokenKind.KW_REGISTER,
    "action": TokenKind.KW_ACTION,
    "table": TokenKind.KW_TABLE,
    "control": TokenKind.KW_CONTROL,
    "apply": TokenKind.KW_APPLY,
    "key": TokenKind.KW_KEY,
    "actions": TokenKind.KW_ACTIONS,
    "size": TokenKind.KW_SIZE,
    "default_action": TokenKind.KW_DEFAULT_ACTION,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "exact": TokenKind.KW_EXACT,
    "ternary": TokenKind.KW_TERNARY,
    "lpm": TokenKind.KW_LPM,
    "in": TokenKind.KW_IN,
    "out": TokenKind.KW_OUT,
    "inout": TokenKind.KW_INOUT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position.

    ``value`` is the raw text for identifiers/operators and the parsed
    integer for :data:`TokenKind.INT`.
    """

    kind: TokenKind
    value: object
    loc: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r} @ {self.loc})"
