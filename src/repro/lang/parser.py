"""Recursive-descent parser for P4All.

Produces a :class:`repro.lang.ast.Program`. The grammar is the P4 subset
used throughout the paper's examples plus the elastic extensions; see
``docs`` in the package ``__init__`` and the module library sources under
``repro/structures/p4all_src`` for concrete programs.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["Parser", "parse_program", "parse_expression"]

_TK = TokenKind

# Binary operator precedence (higher binds tighter); all left-associative.
_BINOP_PRECEDENCE: dict[TokenKind, tuple[int, str]] = {
    _TK.OR: (1, "||"),
    _TK.AND: (2, "&&"),
    _TK.PIPE: (3, "|"),
    _TK.CARET: (4, "^"),
    _TK.AMP: (5, "&"),
    _TK.EQ: (6, "=="),
    _TK.NE: (6, "!="),
    _TK.LT: (7, "<"),
    _TK.GT: (7, ">"),
    _TK.LE: (7, "<="),
    _TK.GE: (7, ">="),
    _TK.SHL: (8, "<<"),
    _TK.SHR: (8, ">>"),
    _TK.PLUS: (9, "+"),
    _TK.MINUS: (9, "-"),
    _TK.STAR: (10, "*"),
    _TK.SLASH: (10, "/"),
    _TK.PERCENT: (10, "%"),
}

_MATCH_KINDS = {
    _TK.KW_EXACT: "exact",
    _TK.KW_TERNARY: "ternary",
    _TK.KW_LPM: "lpm",
}


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0

    # -- token-stream helpers -------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not _TK.EOF:
            self.pos += 1
        return tok

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is kind:
            return self._advance()
        expected = what or f"'{kind.value}'"
        raise ParseError(
            f"expected {expected}, found '{tok.value if tok.value is not None else tok.kind.value}'",
            tok.loc,
            self.source,
        )

    def _expect_gt(self) -> None:
        """Consume a ``>``, splitting a ``>>`` token if necessary.

        Needed for nested angle brackets as in ``register<bit<32>>``.
        """
        tok = self._peek()
        if tok.kind is _TK.GT:
            self._advance()
            return
        if tok.kind is _TK.SHR:
            # Replace the '>>' with a synthetic '>' at the next column.
            split_loc = SourceLocation(tok.loc.filename, tok.loc.line, tok.loc.column + 1)
            self.tokens[self.pos] = Token(_TK.GT, ">", split_loc)
            return
        raise ParseError("expected '>'", tok.loc, self.source)

    def _error(self, message: str, loc: SourceLocation | None = None) -> ParseError:
        return ParseError(message, loc or self._peek().loc, self.source)

    # -- entry points -----------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls: list[ast.Decl] = []
        while not self._check(_TK.EOF):
            decls.append(self._parse_top_decl())
        return ast.Program(decls=decls, source=self.source, filename=self.filename)

    def parse_expression(self) -> ast.Expr:
        expr = self._parse_expr()
        self._expect(_TK.EOF, "end of expression")
        return expr

    # -- declarations -------------------------------------------------------------
    def _parse_top_decl(self) -> ast.Decl:
        tok = self._peek()
        if tok.kind is _TK.KW_SYMBOLIC:
            return self._parse_symbolic()
        if tok.kind is _TK.KW_ASSUME:
            return self._parse_assume()
        if tok.kind is _TK.KW_OPTIMIZE:
            return self._parse_optimize()
        if tok.kind is _TK.KW_CONST:
            return self._parse_const()
        if tok.kind is _TK.KW_HEADER:
            return self._parse_header_or_struct(is_header=True)
        if tok.kind is _TK.KW_STRUCT:
            return self._parse_header_or_struct(is_header=False)
        if tok.kind is _TK.KW_REGISTER:
            return self._parse_register()
        if tok.kind is _TK.KW_ACTION:
            return self._parse_action()
        if tok.kind is _TK.KW_TABLE:
            return self._parse_table()
        if tok.kind is _TK.KW_CONTROL:
            return self._parse_control()
        raise self._error(f"unexpected token '{tok.value}' at top level")

    def _parse_symbolic(self) -> ast.SymbolicDecl:
        loc = self._expect(_TK.KW_SYMBOLIC).loc
        self._expect(_TK.KW_INT, "'int' after 'symbolic'")
        name = self._expect(_TK.IDENT, "symbolic value name").value
        self._expect(_TK.SEMI)
        return ast.SymbolicDecl(name=name, loc=loc)

    def _parse_assume(self) -> ast.AssumeDecl:
        loc = self._expect(_TK.KW_ASSUME).loc
        cond = self._parse_expr()
        self._expect(_TK.SEMI)
        return ast.AssumeDecl(condition=cond, loc=loc)

    def _parse_optimize(self) -> ast.OptimizeDecl:
        loc = self._expect(_TK.KW_OPTIMIZE).loc
        utility = self._parse_expr()
        self._expect(_TK.SEMI)
        return ast.OptimizeDecl(utility=utility, loc=loc)

    def _parse_const(self) -> ast.ConstDecl:
        loc = self._expect(_TK.KW_CONST).loc
        ty = self._parse_type()
        name = self._expect(_TK.IDENT, "constant name").value
        self._expect(_TK.ASSIGN)
        value = self._parse_expr()
        self._expect(_TK.SEMI)
        return ast.ConstDecl(ty=ty, name=name, value=value, loc=loc)

    def _parse_type(self) -> ast.Type:
        tok = self._peek()
        if tok.kind is _TK.KW_BIT:
            self._advance()
            self._expect(_TK.LT)
            width = self._expect(_TK.INT, "bit width").value
            self._expect_gt()
            return ast.BitType(width=int(width), loc=tok.loc)
        if tok.kind is _TK.KW_BOOL:
            self._advance()
            return ast.BoolType(loc=tok.loc)
        if tok.kind is _TK.KW_INT:
            self._advance()
            return ast.IntType(loc=tok.loc)
        if tok.kind is _TK.IDENT:
            self._advance()
            return ast.NamedType(name=tok.value, loc=tok.loc)
        raise self._error("expected a type")

    def _parse_header_or_struct(self, is_header: bool) -> ast.Decl:
        loc = self._advance().loc  # 'header' or 'struct'
        name = self._expect(_TK.IDENT, "type name").value
        self._expect(_TK.LBRACE)
        fields: list[ast.FieldDecl] = []
        while not self._accept(_TK.RBRACE):
            fields.append(self._parse_field())
        cls = ast.HeaderDecl if is_header else ast.StructDecl
        return cls(name=name, fields=fields, loc=loc)

    def _parse_field(self) -> ast.FieldDecl:
        ty = self._parse_type()
        array_size: ast.Expr | None = None
        if self._accept(_TK.LBRACKET):
            array_size = self._parse_expr()
            self._expect(_TK.RBRACKET)
        name_tok = self._expect(_TK.IDENT, "field name")
        self._expect(_TK.SEMI)
        return ast.FieldDecl(
            ty=ty, name=name_tok.value, array_size=array_size, loc=name_tok.loc
        )

    def _parse_register(self) -> ast.RegisterDecl:
        loc = self._expect(_TK.KW_REGISTER).loc
        self._expect(_TK.LT)
        cell = self._parse_type()
        self._expect_gt()
        self._expect(_TK.LBRACKET)
        size = self._parse_expr()
        self._expect(_TK.RBRACKET)
        count: ast.Expr | None = None
        if self._accept(_TK.LBRACKET):
            count = self._parse_expr()
            self._expect(_TK.RBRACKET)
        name = self._expect(_TK.IDENT, "register name").value
        self._expect(_TK.SEMI)
        return ast.RegisterDecl(cell_type=cell, size=size, name=name, count=count, loc=loc)

    def _parse_action(self) -> ast.ActionDecl:
        loc = self._expect(_TK.KW_ACTION).loc
        name = self._expect(_TK.IDENT, "action name").value
        params = self._parse_params()
        iter_param: str | None = None
        if self._accept(_TK.LBRACKET):
            self._expect(_TK.KW_INT, "'int' in iteration parameter")
            iter_param = self._expect(_TK.IDENT, "iteration parameter name").value
            self._expect(_TK.RBRACKET)
        body = self._parse_block()
        return ast.ActionDecl(
            name=name, params=params, body=body, iter_param=iter_param, loc=loc
        )

    def _parse_params(self) -> list[ast.Param]:
        self._expect(_TK.LPAREN)
        params: list[ast.Param] = []
        if not self._check(_TK.RPAREN):
            while True:
                direction = ""
                for kw, text in (
                    (_TK.KW_INOUT, "inout"),
                    (_TK.KW_IN, "in"),
                    (_TK.KW_OUT, "out"),
                ):
                    if self._accept(kw):
                        direction = text
                        break
                ty = self._parse_type()
                name_tok = self._expect(_TK.IDENT, "parameter name")
                params.append(
                    ast.Param(direction=direction, ty=ty, name=name_tok.value, loc=name_tok.loc)
                )
                if not self._accept(_TK.COMMA):
                    break
        self._expect(_TK.RPAREN)
        return params

    def _parse_table(self) -> ast.TableDecl:
        loc = self._expect(_TK.KW_TABLE).loc
        name = self._expect(_TK.IDENT, "table name").value
        self._expect(_TK.LBRACE)
        keys: list[ast.TableKey] = []
        actions: list[str] = []
        size: ast.Expr | None = None
        default_action: str | None = None
        while not self._accept(_TK.RBRACE):
            tok = self._peek()
            if tok.kind is _TK.KW_KEY:
                self._advance()
                self._expect(_TK.ASSIGN)
                self._expect(_TK.LBRACE)
                while not self._accept(_TK.RBRACE):
                    expr = self._parse_expr()
                    self._expect(_TK.COLON)
                    kind_tok = self._advance()
                    if kind_tok.kind not in _MATCH_KINDS:
                        raise self._error(
                            "expected a match kind (exact/ternary/lpm)", kind_tok.loc
                        )
                    self._expect(_TK.SEMI)
                    keys.append(
                        ast.TableKey(expr=expr, match_kind=_MATCH_KINDS[kind_tok.kind], loc=tok.loc)
                    )
            elif tok.kind is _TK.KW_ACTIONS:
                self._advance()
                self._expect(_TK.ASSIGN)
                self._expect(_TK.LBRACE)
                while not self._accept(_TK.RBRACE):
                    actions.append(self._expect(_TK.IDENT, "action name").value)
                    self._accept(_TK.SEMI) or self._accept(_TK.COMMA)
            elif tok.kind is _TK.KW_SIZE:
                self._advance()
                self._expect(_TK.ASSIGN)
                size = self._parse_expr()
                self._expect(_TK.SEMI)
            elif tok.kind is _TK.KW_DEFAULT_ACTION:
                self._advance()
                self._expect(_TK.ASSIGN)
                default_action = self._expect(_TK.IDENT, "action name").value
                self._accept(_TK.LPAREN) and self._expect(_TK.RPAREN)
                self._expect(_TK.SEMI)
            else:
                raise self._error(
                    f"unexpected token '{tok.value}' in table declaration", tok.loc
                )
        return ast.TableDecl(
            name=name,
            keys=keys,
            actions=actions,
            size=size,
            default_action=default_action,
            loc=loc,
        )

    def _parse_control(self) -> ast.ControlDecl:
        loc = self._expect(_TK.KW_CONTROL).loc
        name = self._expect(_TK.IDENT, "control name").value
        params = self._parse_params()
        self._expect(_TK.LBRACE)
        locals_: list[ast.Decl] = []
        apply_block: ast.Block | None = None
        while not self._accept(_TK.RBRACE):
            tok = self._peek()
            if tok.kind is _TK.KW_APPLY:
                self._advance()
                apply_block = self._parse_block()
            elif tok.kind is _TK.KW_ACTION:
                locals_.append(self._parse_action())
            elif tok.kind is _TK.KW_TABLE:
                locals_.append(self._parse_table())
            elif tok.kind is _TK.KW_REGISTER:
                locals_.append(self._parse_register())
            elif tok.kind is _TK.KW_CONST:
                locals_.append(self._parse_const())
            else:
                raise self._error(
                    f"unexpected token '{tok.value}' in control body", tok.loc
                )
        if apply_block is None:
            raise self._error(f"control '{name}' has no apply block", loc)
        return ast.ControlDecl(
            name=name, params=params, locals=locals_, apply=apply_block, loc=loc
        )

    # -- statements ---------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        loc = self._expect(_TK.LBRACE).loc
        stmts: list[ast.Stmt] = []
        while not self._accept(_TK.RBRACE):
            stmts.append(self._parse_stmt())
        return ast.Block(stmts=stmts, loc=loc)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is _TK.KW_IF:
            return self._parse_if()
        if tok.kind is _TK.KW_FOR:
            return self._parse_for()
        if tok.kind is _TK.LBRACE:
            return self._parse_block()
        # Expression-statement: assignment or call.
        expr = self._parse_postfix()
        if self._accept(_TK.ASSIGN):
            value = self._parse_expr()
            self._expect(_TK.SEMI)
            return ast.Assign(target=expr, value=value, loc=tok.loc)
        self._expect(_TK.SEMI)
        if not isinstance(expr, ast.Call):
            raise self._error("expression statement must be a call or assignment", tok.loc)
        return ast.CallStmt(call=expr, loc=tok.loc)

    def _parse_if(self) -> ast.IfStmt:
        loc = self._expect(_TK.KW_IF).loc
        self._expect(_TK.LPAREN)
        cond = self._parse_expr()
        self._expect(_TK.RPAREN)
        then_block = self._parse_block_or_single()
        else_block: ast.Block | None = None
        if self._accept(_TK.KW_ELSE):
            if self._check(_TK.KW_IF):
                nested = self._parse_if()
                else_block = ast.Block(stmts=[nested], loc=nested.loc)
            else:
                else_block = self._parse_block_or_single()
        return ast.IfStmt(cond=cond, then_block=then_block, else_block=else_block, loc=loc)

    def _parse_block_or_single(self) -> ast.Block:
        if self._check(_TK.LBRACE):
            return self._parse_block()
        stmt = self._parse_stmt()
        return ast.Block(stmts=[stmt], loc=stmt.loc)

    def _parse_for(self) -> ast.ForStmt:
        loc = self._expect(_TK.KW_FOR).loc
        self._expect(_TK.LPAREN)
        var = self._expect(_TK.IDENT, "loop variable").value
        self._expect(_TK.LT, "'<' in loop header")
        bound = self._parse_expr()
        self._expect(_TK.RPAREN)
        body = self._parse_block()
        return ast.ForStmt(var=var, bound=bound, body=body, loc=loc)

    # -- expressions ----------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept(_TK.QUESTION):
            if_true = self._parse_expr()
            self._expect(_TK.COLON)
            if_false = self._parse_expr()
            return ast.Ternary(cond=cond, if_true=if_true, if_false=if_false, loc=cond.loc)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            info = _BINOP_PRECEDENCE.get(self._peek().kind)
            if info is None or info[0] < min_prec:
                return left
            prec, op = info
            op_loc = self._advance().loc
            right = self._parse_binary(prec + 1)
            left = ast.BinaryOp(op=op, left=left, right=right, loc=op_loc)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (_TK.MINUS, _TK.NOT, _TK.TILDE):
            self._advance()
            operand = self._parse_unary()
            op = {"-": "-", "!": "!", "~": "~"}[tok.value]
            return ast.UnaryOp(op=op, operand=operand, loc=tok.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is _TK.DOT:
                self._advance()
                # 'apply' is a keyword but also a method name (table/control apply).
                if self._check(_TK.KW_APPLY):
                    self._advance()
                    expr = ast.Member(base=expr, name="apply", loc=tok.loc)
                else:
                    name = self._expect(_TK.IDENT, "member name").value
                    expr = ast.Member(base=expr, name=name, loc=tok.loc)
            elif tok.kind is _TK.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(_TK.RBRACKET)
                if isinstance(expr, ast.Call) and expr.iter_index is None:
                    # ``incr()[i]`` — iteration index on an action invocation.
                    expr.iter_index = index
                else:
                    expr = ast.Index(base=expr, index=index, loc=tok.loc)
            elif tok.kind is _TK.LPAREN:
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(_TK.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(_TK.COMMA):
                            break
                self._expect(_TK.RPAREN)
                expr = ast.Call(func=expr, args=args, loc=tok.loc)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is _TK.INT:
            self._advance()
            return ast.IntLit(value=tok.value, loc=tok.loc)
        if tok.kind is _TK.FLOAT:
            self._advance()
            return ast.FloatLit(value=tok.value, loc=tok.loc)
        if tok.kind in (_TK.KW_TRUE, _TK.KW_FALSE):
            self._advance()
            return ast.BoolLit(value=bool(tok.value), loc=tok.loc)
        if tok.kind is _TK.IDENT:
            self._advance()
            return ast.Name(ident=tok.value, loc=tok.loc)
        if tok.kind is _TK.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(_TK.RPAREN)
            return expr
        raise self._error(f"unexpected token '{tok.value}' in expression", tok.loc)


def parse_program(source: str, filename: str = "<string>") -> ast.Program:
    """Parse a full P4All program from source text."""
    return Parser(source, filename).parse_program()


def parse_expression(source: str, filename: str = "<expr>") -> ast.Expr:
    """Parse a standalone expression (used for utility functions/assumes)."""
    return Parser(source, filename).parse_expression()
