"""PRECISION: heavy-hitter detection with probabilistic recirculation.

PRECISION (Figure 1/11) tracks heavy flows in a multi-row key/counter
table. A packet whose flow is tracked increments its counter in the data
plane; a missed packet is *recirculated* with probability
``1 / (min_count + 1)`` to claim the entry with the smallest counter
among its candidate slots. The data plane is the elastic counting
hash-table module; the harness implements the recirculation policy using
exactly the signals the pipeline exports (``ht_matched``, ``ht_mincnt``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core import CompileOptions, CompiledProgram, compile_source
from ..pisa import Packet, Pipeline, TargetSpec
from ..structures import CountingHashTable, compose, hashtable_module

__all__ = ["precision_source", "PrecisionApp", "PrecisionStats",
           "simulate_precision"]


def precision_source(max_rows: int | None = None, max_cols: int = 65536) -> str:
    """Compose the elastic PRECISION program from the hash-table module."""
    ht = hashtable_module(
        prefix="ht", key_field="meta.flow_id", max_rows=max_rows,
        max_cols=max_cols, seed_offset=200,
    )
    return compose(
        modules=[ht],
        extra_metadata=["bit<32> flow_id;"],
        utility=ht.utility_term,
    )


@dataclass
class PrecisionStats:
    packets: int = 0
    tracked_hits: int = 0
    recirculations: int = 0
    installs: int = 0

    @property
    def recirculation_rate(self) -> float:
        return self.recirculations / self.packets if self.packets else 0.0


class PrecisionApp:
    """Compiled PRECISION on the PISA simulator."""

    def __init__(
        self,
        target: TargetSpec,
        options: CompileOptions | None = None,
        seed: int = 1,
    ):
        self.source = precision_source()
        self.compiled: CompiledProgram = compile_source(
            self.source, target, options=options, source_name="precision"
        )
        self.pipeline = Pipeline(self.compiled)
        self.rows = self.compiled.symbol_values["ht_rows"]
        self.cols = self.compiled.symbol_values["ht_cols"]
        self._rng = random.Random(seed)

    def _install_replace_min(self, key: int) -> None:
        """Recirculated packet: claim the smallest-count candidate slot."""
        best = None
        for row in range(self.rows):
            idx = self.pipeline.hash_value(200 + row, key, width=1 << 32)
            count = int(self.pipeline.registers.get(f"ht_counts[{row}]").read(idx))
            if best is None or count < best[2]:
                best = (row, idx, count)
        row, idx, _count = best
        self.pipeline.registers.get(f"ht_keys[{row}]").write(idx, key)
        self.pipeline.registers.get(f"ht_counts[{row}]").write(idx, 1)

    def run_trace(self, keys) -> PrecisionStats:
        stats = PrecisionStats()
        for key in keys:
            key = int(key)
            result = self.pipeline.process(Packet(fields={"flow_id": key}))
            stats.packets += 1
            if result.get("meta.ht_matched"):
                stats.tracked_hits += 1
                continue
            min_count = result.get("meta.ht_mincnt")
            if self._rng.random() < 1.0 / (min_count + 1):
                stats.recirculations += 1
                self._install_replace_min(key)
                stats.installs += 1
        return stats

    def heavy_keys(self, threshold: int) -> set[int]:
        """Control-plane scan for flows above ``threshold``."""
        out: set[int] = set()
        for row in range(self.rows):
            keys = self.pipeline.register_dump("ht_keys", row)
            counts = self.pipeline.register_dump("ht_counts", row)
            for key, count in zip(keys, counts):
                if int(key) != 0 and int(count) >= threshold:
                    out.add(int(key))
        return out

    def count_of(self, key: int) -> int:
        for row in range(self.rows):
            idx = self.pipeline.hash_value(200 + row, key, width=1 << 32)
            stored = int(self.pipeline.registers.get(f"ht_keys[{row}]").read(idx))
            if stored == key:
                return int(self.pipeline.registers.get(f"ht_counts[{row}]").read(idx))
        return 0


def simulate_precision(
    rows: int,
    cols: int,
    keys,
    seed: int = 1,
) -> tuple[CountingHashTable, PrecisionStats]:
    """PRECISION control loop over the reference table (fast path)."""
    table = CountingHashTable(rows, cols, seed_offset=200)
    rng = random.Random(seed)
    stats = PrecisionStats()
    for key in keys:
        key = int(key)
        stats.packets += 1
        if table.increment(key):
            stats.tracked_hits += 1
            continue
        min_count = table.min_candidate_count(key)
        if rng.random() < 1.0 / (min_count + 1):
            stats.recirculations += 1
            table.replace_min(key, 1)
            stats.installs += 1
    return table, stats
