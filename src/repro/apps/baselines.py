"""Plain-P4 baseline program generation.

Figure 11 compares elastic P4All sources against the plain P4 programs a
programmer would otherwise write. The original hand-written applications
are not available, so the baselines shipped under ``p4_baselines/`` are
the compiler's own concrete output at each application's Tofino
configuration — exactly the unrolled, fixed-size program someone without
elastic loops would have had to write and maintain by hand (every row
duplicated, every size a magic constant). DESIGN.md §2 records this
substitution.

Regenerate with::

    python -m repro.apps.baselines
"""

from __future__ import annotations

from pathlib import Path

from ..core import compile_source
from ..pisa.resources import tofino
from . import APP_SOURCES

__all__ = ["write_app_sources", "write_baselines", "BASELINE_DIR", "SOURCE_DIR"]

_PKG_DIR = Path(__file__).parent
BASELINE_DIR = _PKG_DIR / "p4_baselines"
SOURCE_DIR = _PKG_DIR / "p4all_src"


def write_app_sources(directory: Path | None = None) -> list[Path]:
    """Write the four elastic application sources as ``.p4all`` files."""
    directory = directory or SOURCE_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, source in APP_SOURCES().items():
        path = directory / f"{name}.p4all"
        path.write_text(source)
        written.append(path)
    return written


def write_baselines(directory: Path | None = None, target=None) -> list[Path]:
    """Compile each application and write its concrete P4 baseline."""
    directory = directory or BASELINE_DIR
    directory.mkdir(parents=True, exist_ok=True)
    target = target or tofino()
    written = []
    for name, source in APP_SOURCES().items():
        compiled = compile_source(source, target, source_name=name)
        path = directory / f"{name}.p4"
        header = (
            f"// Plain-P4 baseline for {name} (machine-unrolled equivalent of\n"
            f"// the elastic source; see repro.apps.baselines).\n"
        )
        path.write_text(header + compiled.p4_source)
        written.append(path)
    return written


def main() -> None:  # pragma: no cover - utility entry point
    for path in write_app_sources():
        print(f"wrote {path}")
    for path in write_baselines():
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
