"""NetCache: an elastic key-value cache with a count-min hot-key tracker.

The paper's running application (§3): a count-min sketch tracks key
popularity; a key-value store serves hot keys from the switch. Both are
instantiated from the module library and weighted by the utility function
``0.4*(cms_rows*cms_cols) + 0.6*(kv_rows*kv_cols)`` (the paper's
``0.4*(rows*cols) + 0.6*(kv_items)``).

Two execution paths:

* :class:`NetCacheApp` — compiles the elastic program, loads it into the
  PISA pipeline simulator, and runs a key-request trace with a NetCache
  controller (hot keys promoted into the cache when their sketch estimate
  crosses a threshold);
* :func:`simulate_netcache` — the same control loop over the *reference*
  structures, fast enough for the Figure-4 resource-split sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import CompileOptions, CompiledProgram, compile_source
from ..pisa import Packet, Pipeline, TargetSpec
from ..structures import (
    CountMinSketch,
    KeyValueStore,
    cms_module,
    compose,
    kv_module,
)

__all__ = [
    "netcache_source",
    "netcache_linked",
    "NetCacheApp",
    "NetCacheStats",
    "simulate_netcache",
    "NETCACHE_UTILITY",
    "NETCACHE_UTILITY_FLIPPED",
]

#: The paper's §3.2.4 utility: prioritize the key-value store slightly.
NETCACHE_UTILITY = "0.4 * (cms_rows * cms_cols) + 0.6 * (kv_rows * kv_cols)"
#: Figure 13's alternative: prioritize the sketch instead.
NETCACHE_UTILITY_FLIPPED = "0.6 * (cms_rows * cms_cols) + 0.4 * (kv_rows * kv_cols)"


def netcache_source(
    utility: str = NETCACHE_UTILITY,
    max_cms_rows: int = 4,
    max_cols: int = 65536,
    value_slices: int = 2,
    kv_min_total_bits: int | None = None,
    with_routing: bool = True,
) -> str:
    """Compose the elastic NetCache program from library modules.

    ``kv_min_total_bits`` adds the Figure-13 memory floor
    (``assume kv_rows * kv_cols * item_bits >= ...`` — the paper reserves
    at least 8 Mb for the store, as NetCache recommends).
    """
    cms = cms_module(
        prefix="cms", key_field="meta.req_key", max_rows=max_cms_rows,
        max_cols=max_cols, seed_offset=0,
    )
    kv = kv_module(
        prefix="kv", key_field="meta.req_key", value_slices=value_slices,
        max_cols=max_cols, min_total_bits=kv_min_total_bits, seed_offset=100,
    )
    extra_decls: list[str] = []
    post_apply: list[str] = []
    if with_routing:
        extra_decls = [
            "action set_port(bit<9> port) {\n    meta.egress = port;\n}",
            (
                "table route {\n"
                "    key = {\n        meta.dst : exact;\n    }\n"
                "    actions = {\n        set_port;\n        NoAction;\n    }\n"
                "    size = 1024;\n"
                "    default_action = NoAction;\n"
                "}"
            ),
        ]
        post_apply = ["route.apply();"]
    return compose(
        modules=[kv, cms],
        extra_metadata=[
            "bit<32> req_key;",
            "bit<32> dst;",
            "bit<9> egress;",
        ],
        extra_declarations=extra_decls,
        post_apply=post_apply,
        utility=utility,
    )


def netcache_linked(
    utility: str = NETCACHE_UTILITY,
    max_cms_rows: int = 4,
    max_cols: int = 65536,
    value_slices: int = 2,
    kv_min_total_bits: int | None = None,
    with_routing: bool = True,
    cache=None,
):
    """:func:`netcache_source` as a linked program, module identity kept.

    Same modules, glue, and utility — the rendered source (and therefore
    the compiled layout) is identical — but the result is a
    :class:`~repro.link.LinkedProgram`: per-module utility terms for the
    ILP objective, a namespace for per-module attribution, and
    ``reweight()`` for one-tenant objective changes. Pass a
    :class:`~repro.core.CompileCache` to share module frontends across
    re-links.
    """
    from ..link import link_p4all_modules

    cms = cms_module(
        prefix="cms", key_field="meta.req_key", max_rows=max_cms_rows,
        max_cols=max_cols, seed_offset=0,
    )
    kv = kv_module(
        prefix="kv", key_field="meta.req_key", value_slices=value_slices,
        max_cols=max_cols, min_total_bits=kv_min_total_bits, seed_offset=100,
    )
    extra_decls: list[str] = []
    post_apply: list[str] = []
    if with_routing:
        extra_decls = [
            "action set_port(bit<9> port) {\n    meta.egress = port;\n}",
            (
                "table route {\n"
                "    key = {\n        meta.dst : exact;\n    }\n"
                "    actions = {\n        set_port;\n        NoAction;\n    }\n"
                "    size = 1024;\n"
                "    default_action = NoAction;\n"
                "}"
            ),
        ]
        post_apply = ["route.apply();"]
    return link_p4all_modules(
        [kv, cms],
        extra_metadata=[
            "bit<32> req_key;",
            "bit<32> dst;",
            "bit<9> egress;",
        ],
        extra_declarations=extra_decls,
        post_apply=post_apply,
        utility=utility,
        cache=cache,
        name="netcache",
    )


@dataclass
class NetCacheStats:
    """Outcome of one trace run."""

    packets: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_insertions: int = 0
    history: list[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0


class NetCacheApp:
    """Compiled NetCache running on the PISA pipeline simulator.

    The controller mirrors NetCache's: when an uncached key's sketch
    estimate reaches ``hot_threshold``, install it into the first KV row
    whose hashed slot is free (writing the key/value registers at the
    exact index the data plane probes).
    """

    def __init__(
        self,
        target: TargetSpec,
        utility: str = NETCACHE_UTILITY,
        hot_threshold: int = 8,
        options: CompileOptions | None = None,
        kv_min_total_bits: int | None = None,
        source: str | None = None,
        compiled: CompiledProgram | None = None,
        engine: str | None = None,
    ):
        """Pass ``compiled`` to load an existing artifact instead of
        compiling — the elastic runtime compiles through its planner
        (with timeout fallback) and hands the artifact in here.
        ``engine`` selects the pipeline execution engine (default: the
        compiled plan engine; see :func:`repro.pisa.default_engine`)."""
        self.source = source or netcache_source(
            utility=utility, kv_min_total_bits=kv_min_total_bits
        )
        self.compiled: CompiledProgram = compiled or compile_source(
            self.source, target, options=options, source_name="netcache"
        )
        self.pipeline = Pipeline(self.compiled, engine=engine)
        self.hot_threshold = hot_threshold
        self.kv_rows = self.compiled.symbol_values.get("kv_rows", 0)
        self.kv_cols = self.compiled.symbol_values.get("kv_cols", 0)
        self.cms_rows = self.compiled.symbol_values.get("cms_rows", 0)
        self.cms_cols = self.compiled.symbol_values.get("cms_cols", 0)
        self._cached_keys: set[int] = set()

    # -- controller -------------------------------------------------------------
    def _cms_estimate(self, key: int) -> int:
        """Query the data-plane sketch registers for a key's estimate."""
        est = None
        for row in range(self.cms_rows):
            idx = self.pipeline.hash_value(row, key, width=1 << 32)
            count = int(self.pipeline.registers.get(f"cms_sketch[{row}]").read(idx))
            est = count if est is None else min(est, count)
        return est or 0

    def _slot_key(self, row: int, key: int) -> int:
        """Key occupying ``key``'s candidate slot in ``row`` (0 = free)."""
        idx = self.pipeline.hash_value(100 + row, key, width=1 << 32)
        return int(self.pipeline.registers.get(f"kv_keys[{row}]").read(idx))

    def _write_slot(self, row: int, key: int, value: int) -> None:
        idx = self.pipeline.hash_value(100 + row, key, width=1 << 32)
        self.pipeline.registers.get(f"kv_keys[{row}]").write(idx, key)
        self.pipeline.registers.get(f"kv_val0[{row}]").write(idx, value)

    def _try_cache(self, key: int, value: int, estimate: int,
                   stats: NetCacheStats) -> None:
        """NetCache promotion: take a free candidate slot, else evict the
        occupant the sketch reports coldest — if strictly colder."""
        victim_row, victim_est = None, None
        for row in range(self.kv_rows):
            occupant = self._slot_key(row, key)
            if occupant == 0:
                self._write_slot(row, key, value)
                self._cached_keys.add(key)
                stats.insertions += 1
                return
            occupant_est = self._cms_estimate(occupant)
            if victim_est is None or occupant_est < victim_est:
                victim_row, victim_est = row, occupant_est
        if victim_row is not None and estimate > victim_est:
            evicted = self._slot_key(victim_row, key)
            self._cached_keys.discard(evicted)
            self._write_slot(victim_row, key, value)
            self._cached_keys.add(key)
            stats.evictions += 1
        else:
            stats.rejected_insertions += 1

    def value_of(self, key: int) -> int:
        """The backing store's value for a key (synthetic: key + 7)."""
        return (key + 7) & ((1 << 64) - 1)

    # -- control-plane introspection (used by the elastic runtime) --------------
    @property
    def cache_capacity(self) -> int:
        return self.kv_rows * self.kv_cols

    def kv_occupancy(self) -> float:
        """Fraction of key slots holding a cached entry."""
        occupied = sum(
            self.pipeline.registers.get(f"kv_keys[{row}]").nonzero_cells()
            for row in range(self.kv_rows)
        )
        return occupied / self.cache_capacity if self.cache_capacity else 0.0

    def cached_entries(self) -> list[tuple[int, int, int]]:
        """All cached ``(row, key, value)`` triples, read from the data
        plane's registers (the migrator's export view of the cache)."""
        entries: list[tuple[int, int, int]] = []
        for row in range(self.kv_rows):
            keys = self.pipeline.registers.get(f"kv_keys[{row}]").dump()
            vals = self.pipeline.registers.get(f"kv_val0[{row}]").dump()
            for idx in keys.nonzero()[0]:
                entries.append((row, int(keys[idx]), int(vals[idx])))
        return entries

    def install(self, key: int, value: int) -> bool:
        """Install ``key`` into the first row with a free candidate slot
        (control-plane insertion, no eviction). Returns success."""
        for row in range(self.kv_rows):
            if self._slot_key(row, key) == 0:
                self._write_slot(row, key, value)
                self._cached_keys.add(key)
                return True
        return False

    # -- trace processing -------------------------------------------------------
    def run_trace(self, keys, dst: int = 1, serve_batch: int | None = None,
                  workers: int | None = None) -> NetCacheStats:
        """Process a key-request trace; returns hit statistics.

        With ``serve_batch`` unset (the default), streams through
        :meth:`Pipeline.process_many`'s callback mode: the controller
        reacts to each result (promotion, eviction) between packets
        without a result list ever being built — identical across all
        engines.

        With ``serve_batch > 0``, the trace is served in sub-batches of
        that size: each sub-batch runs through the batched fast path
        (vector kernels, and sharded across ``workers`` processes when
        ``workers > 1``), then the controller scans the batch's results
        before the next one is admitted. Promotions therefore lag by up
        to one sub-batch relative to the streaming mode — the trade the
        fleet makes for batch throughput.
        """
        from ..pisa.pipeline import default_serve_batch, default_workers

        if serve_batch is None:
            serve_batch = default_serve_batch()
        if workers is None:
            workers = default_workers()
        stats = NetCacheStats()
        key_list = [int(key) for key in keys]

        def react(key, result):
            stats.packets += 1
            if result.get("meta.kv_hit"):
                stats.hits += 1
            else:
                estimate = result.get("meta.cms_min")
                if estimate >= self.hot_threshold and key not in self._cached_keys:
                    self._try_cache(key, self.value_of(key), estimate, stats)

        if not serve_batch:
            result_keys = iter(key_list)
            self.pipeline.process_many(
                (Packet(fields={"req_key": key, "dst": dst}) for key in key_list),
                callback=lambda result: react(next(result_keys), result),
            )
            return stats

        step = int(serve_batch)
        for start in range(0, len(key_list), step):
            batch_keys = key_list[start:start + step]
            results = self.pipeline.process_many(
                [Packet(fields={"req_key": key, "dst": dst})
                 for key in batch_keys],
                workers=workers,
                shard_field="req_key",
            )
            for key, result in zip(batch_keys, results):
                react(key, result)
        return stats


def simulate_netcache(
    cms_rows: int,
    cms_cols: int,
    kv_rows: int,
    kv_cols: int,
    keys,
    hot_threshold: int = 8,
    value_slices: int = 2,
) -> NetCacheStats:
    """NetCache control loop over the reference structures (fast path).

    Runs the same promote-on-threshold policy as :class:`NetCacheApp`,
    but with the numpy reference sketch and store — used for the Figure-4
    sweep where hundreds of configurations are evaluated. Degenerate
    configurations (zero-size structures) short-circuit to a 0% hit rate.
    """
    stats = NetCacheStats()
    if cms_rows <= 0 or cms_cols <= 0 or kv_rows <= 0 or kv_cols <= 0:
        stats.packets = len(list(keys))
        return stats
    sketch = CountMinSketch(cms_rows, cms_cols, seed_offset=0)
    store = KeyValueStore(kv_rows, kv_cols, value_slices=value_slices,
                          seed_offset=100)
    for key in keys:
        key = int(key)
        stats.packets += 1
        # The sketch counts every packet (as the data plane does — the
        # CMS stage runs unconditionally in the compiled pipeline).
        estimate = sketch.update(key)
        if store.lookup(key) is not None:
            stats.hits += 1
            continue
        if estimate < hot_threshold:
            continue
        value = (key + 7) & ((1 << 64) - 1)
        if store.insert(key, value):
            stats.insertions += 1
            continue
        # Every candidate slot is taken: evict the occupant the sketch
        # reports coldest, if strictly colder than the new key (the
        # NetCache controller's report-driven replacement).
        victim_row, victim_est = None, None
        for row in range(store.rows):
            occupant = store.occupant(row, key)
            occupant_est = sketch.estimate(occupant) if occupant else 0
            if victim_est is None or occupant_est < victim_est:
                victim_row, victim_est = row, occupant_est
        if victim_row is not None and estimate > victim_est:
            store.replace(victim_row, key, value)
            stats.evictions += 1
        else:
            stats.rejected_insertions += 1
    return stats
