"""Applications built from the elastic module library (Figure 11).

Each application ships its elastic P4All source (composed from
:mod:`repro.structures` modules), a harness class that compiles it and
drives the PISA simulator with the application's control-plane logic,
and — where workload-scale sweeps need it — a fast reference-structure
simulation of the same control loop.

=============  ==========================================================
NetCache       count-min sketch + key-value store; hot keys cached on the
               switch (§3's running example)
SketchLearn    multi-level hierarchical sketch; flow extraction by
               per-bit counter ratios
PRECISION      multi-row counting hash table; heavy hitters with
               probabilistic recirculation
ConQuest       round-robin count-min snapshots; per-flow queue occupancy
=============  ==========================================================
"""

from .conquest import ConQuestApp, conquest_module, conquest_source
from .netcache import (
    NETCACHE_UTILITY,
    NETCACHE_UTILITY_FLIPPED,
    NetCacheApp,
    NetCacheStats,
    netcache_linked,
    netcache_source,
    simulate_netcache,
)
from .precision import (
    PrecisionApp,
    PrecisionStats,
    precision_source,
    simulate_precision,
)
from .sketchlearn import SketchLearnApp, extract_large_flows, sketchlearn_source

__all__ = [
    "ConQuestApp",
    "conquest_module",
    "conquest_source",
    "NETCACHE_UTILITY",
    "NETCACHE_UTILITY_FLIPPED",
    "NetCacheApp",
    "NetCacheStats",
    "netcache_linked",
    "netcache_source",
    "simulate_netcache",
    "PrecisionApp",
    "PrecisionStats",
    "precision_source",
    "simulate_precision",
    "SketchLearnApp",
    "extract_large_flows",
    "sketchlearn_source",
    "APP_SOURCES",
]


def APP_SOURCES() -> dict[str, str]:
    """name → elastic source for all four applications (default configs)."""
    return {
        "netcache": netcache_source(),
        "sketchlearn": sketchlearn_source(),
        "precision": precision_source(),
        "conquest": conquest_source(),
    }
