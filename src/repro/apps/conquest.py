"""ConQuest: in-network queue analysis with round-robin sketch snapshots.

ConQuest (Figure 1/11) estimates how much of the current queue each flow
occupies by maintaining C time-windowed count-min snapshots: the snapshot
for the current window absorbs increments while the others are read and
summed to estimate the flow's recent bytes/packets. Windows rotate
round-robin; a snapshot is cleaned before reuse (here: by the control
plane on rotation, as the harness detects window changes).

The data plane composes C statically-unrolled snapshot branches over one
elastic column width ``cq_cols`` — multiple instances of the sketch
structure, as the paper describes ConQuest's use of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import CompileOptions, CompiledProgram, compile_source
from ..pisa import Packet, Pipeline, TargetSpec
from ..structures import compose
from ..structures.module import P4AllModule

__all__ = ["conquest_source", "conquest_module", "ConQuestApp", "ConQuestStats"]


def conquest_module(
    prefix: str = "cq",
    key_field: str = "meta.flow_id",
    window_field: str = "meta.window",
    snapshots: int = 4,
    max_cols: int | None = 65536,
    seed_offset: int = 400,
) -> P4AllModule:
    """Elastic ConQuest snapshot bank.

    ``snapshots`` round-robin windows (constant), each one register array
    of elastic width. After the pipeline runs, ``meta.<prefix>_est`` sums
    the flow's counters over all *non-current* snapshots — its estimated
    share of the recent queue.
    """
    cols = f"{prefix}_cols"
    assumes = []
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    declarations = [
        f"const int {prefix}_snaps = {snapshots};",
        f"register<bit<32>>[{cols}][{prefix}_snaps] {prefix}_snap;",
        (
            f"action {prefix}_touch()[int i] {{\n"
            f"    meta.{prefix}_idx[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_snap[i].cond_add_read(meta.{prefix}_cnt[i], "
            f"meta.{prefix}_idx[i], {window_field} == i, meta.{prefix}_amount);\n"
            f"}}"
        ),
        (
            f"action {prefix}_fold()[int i] {{\n"
            f"    meta.{prefix}_est = meta.{prefix}_est + "
            f"({window_field} == i ? 0 : meta.{prefix}_cnt[i]);\n"
            f"}}"
        ),
        (
            f"control {prefix}_snapshots(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {prefix}_snaps) {{ {prefix}_touch()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
        (
            f"control {prefix}_estimate(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {prefix}_snaps) {{ {prefix}_fold()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[cols],
        assumes=assumes,
        metadata_fields=[
            f"bit<32>[{prefix}_snaps] {prefix}_idx;",
            f"bit<32>[{prefix}_snaps] {prefix}_cnt;",
            f"bit<32> {prefix}_est;",
            f"bit<32> {prefix}_amount;",
        ],
        declarations=declarations,
        apply_calls=[
            f"meta.{prefix}_est = 0;",
            f"{prefix}_snapshots.apply(meta);",
            f"{prefix}_estimate.apply(meta);",
        ],
        utility_term=f"{prefix}_snaps * {cols}",
    )


def conquest_source(snapshots: int = 4, max_cols: int = 65536) -> str:
    """Compose the elastic ConQuest program."""
    cq = conquest_module(snapshots=snapshots, max_cols=max_cols)
    return compose(
        modules=[cq],
        extra_metadata=[
            "bit<32> flow_id;",
            "bit<8> window;",
            "bit<32> pkt_bytes;",
        ],
        pre_apply=["meta.cq_amount = meta.pkt_bytes;"],
        extra_assumes=None,
        utility=cq.utility_term,
    )


@dataclass
class ConQuestStats:
    packets: int = 0
    rotations: int = 0


class ConQuestApp:
    """Compiled ConQuest on the PISA simulator.

    The caller provides each packet's window id (``timestamp // window``);
    the harness clears a snapshot when the rotation re-enters it.
    """

    def __init__(
        self,
        target: TargetSpec,
        snapshots: int = 4,
        options: CompileOptions | None = None,
    ):
        self.snapshots = snapshots
        self.source = conquest_source(snapshots=snapshots)
        self.compiled: CompiledProgram = compile_source(
            self.source, target, options=options, source_name="conquest"
        )
        self.pipeline = Pipeline(self.compiled)
        self.cols = self.compiled.symbol_values["cq_cols"]
        self._last_window: int | None = None
        self.stats = ConQuestStats()

    def process(self, flow_id: int, window: int, amount: int = 1) -> int:
        """One packet; returns the flow's queue-occupancy estimate."""
        snap = window % self.snapshots
        if self._last_window is not None and window != self._last_window:
            # Entering a new window: clean the snapshot being reused.
            for w in range(self._last_window + 1, window + 1):
                self.pipeline.registers.get(
                    f"cq_snap[{w % self.snapshots}]"
                ).clear()
                self.stats.rotations += 1
        self._last_window = window
        result = self.pipeline.process(
            Packet(fields={"flow_id": int(flow_id), "window": snap,
                           "pkt_bytes": int(amount)})
        )
        self.stats.packets += 1
        return result.get("meta.cq_est")
