"""SketchLearn: automated flow inference with a multi-level sketch.

SketchLearn (Figure 1/11) maintains one counter level per key bit plus a
total level; the controller fits per-level Gaussians and extracts large
flows with their identifiers. Here the data plane is the elastic
hierarchical-sketch module; the harness implements the model-fitting
extraction for large flows (simplified to the bit-ratio test, which is
the part the data structure determines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import CompileOptions, CompiledProgram, compile_source
from ..pisa import Packet, Pipeline, TargetSpec
from ..structures import HierarchicalSketch, compose, hierarchical_module

__all__ = ["sketchlearn_source", "SketchLearnApp", "extract_large_flows"]


def sketchlearn_source(key_bits: int = 8, max_cols: int = 65536) -> str:
    """Compose the elastic SketchLearn program (one sketch, fixed levels)."""
    sl = hierarchical_module(
        prefix="sl", key_field="meta.flow_id", key_bits=key_bits,
        max_cols=max_cols, seed_offset=300,
    )
    return compose(
        modules=[sl],
        extra_metadata=["bit<32> flow_id;"],
        utility=sl.utility_term,
    )


def extract_large_flows(
    sketch: HierarchicalSketch,
    candidate_keys,
    theta: float = 0.05,
    lo: float = 0.3,
    hi: float = 0.7,
) -> dict[int, int]:
    """SketchLearn-style extraction: flows whose slot share exceeds θ and
    whose identifier bits are unambiguous. Returns key → estimated count.

    ``candidate_keys`` seeds the slot scan (the full algorithm enumerates
    slots; scanning per-slot via known candidates tests the same
    data-structure property without re-deriving the EM machinery).
    """
    out: dict[int, int] = {}
    if sketch.packets == 0:
        return out
    for key in candidate_keys:
        key = int(key)
        idx0 = sketch._fns[0](key, width=sketch.cols)
        total = int(sketch.levels[0, idx0])
        if total < theta * sketch.packets:
            continue
        bits = sketch.infer_key_bits(key, lo=lo, hi=hi)
        if any(b is None for b in bits):
            continue
        inferred = sum(b << i for i, b in enumerate(bits))
        if inferred == key & ((1 << sketch.key_bits) - 1):
            out[key] = total
    return out


@dataclass
class SketchLearnStats:
    packets: int = 0
    extracted: dict[int, int] = field(default_factory=dict)


class SketchLearnApp:
    """Compiled SketchLearn on the PISA simulator."""

    def __init__(
        self,
        target: TargetSpec,
        key_bits: int = 8,
        options: CompileOptions | None = None,
    ):
        self.key_bits = key_bits
        self.source = sketchlearn_source(key_bits=key_bits)
        self.compiled: CompiledProgram = compile_source(
            self.source, target, options=options, source_name="sketchlearn"
        )
        self.pipeline = Pipeline(self.compiled)
        self.cols = self.compiled.symbol_values["sl_cols"]
        self.packets = 0

    def run_trace(self, keys) -> None:
        # Streaming mode: only the register state matters here, so skip
        # materializing a PipelineResult list for trace-scale inputs.
        self.packets += self.pipeline.process_many(
            (Packet(fields={"flow_id": int(key)}) for key in keys),
            collect=False,
        )

    def level_counts(self, level: int):
        """Control-plane read of one level's counters."""
        return self.pipeline.register_dump("sl_lvl", level)

    def as_reference(self) -> HierarchicalSketch:
        """Rebuild a reference sketch view from the pipeline's registers."""
        ref = HierarchicalSketch(self.key_bits, self.cols, seed_offset=300)
        for level in range(self.key_bits + 1):
            ref.levels[level] = self.level_counts(level)
        ref.packets = self.packets
        return ref

    def extract(self, candidate_keys, theta: float = 0.05) -> dict[int, int]:
        return extract_large_flows(self.as_reference(), candidate_keys, theta)
