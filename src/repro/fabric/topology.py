"""Typed multi-switch fabric topologies.

A :class:`FabricTopology` is a graph of PISA switches — each node wraps
a per-switch :class:`~repro.pisa.resources.TargetSpec` and, once the
fleet controller installs a program, a compiled app with its own
:class:`~repro.pisa.pipeline.Pipeline` — plus links and simple
shortest-path routing. Two built-in generators cover the normal P4
deployment shapes:

* :meth:`FabricTopology.leaf_spine` — ``leaves`` ToR switches, each
  wired to every one of ``spines`` spine switches (the serving apps run
  on the leaves; spines forward);
* :meth:`FabricTopology.flat` — ``n`` serving switches behind one
  load-balancer ingress node (the p4containerflow shape: a front LB
  consistent-hashes flows to a flat pool).

Targets may differ per switch — the fabric premise is stretching the
same symbolic program to whatever resources each box has — and roles
separate serving switches (shardable, in the hash ring) from forwarding
(``spine``/``lb``) and warm ``standby`` switches (installed but outside
the ring until a migration pulls them in).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..pisa.resources import TargetSpec

__all__ = ["Link", "SwitchNode", "FabricTopology", "TopologyError"]

#: Roles whose switches serve sharded traffic (belong in the hash ring).
SERVING_ROLES = ("leaf", "switch")


class TopologyError(Exception):
    """Malformed fabric graph (unknown node, disconnected, ...)."""


@dataclass(frozen=True)
class Link:
    """One bidirectional cable between two switches."""

    a: str
    b: str

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"link {self.a}-{self.b} does not touch {node!r}")


@dataclass
class SwitchNode:
    """One switch: a target spec plus (once installed) a running app.

    ``app`` is whatever the fleet controller installs — for the NetCache
    fleet a :class:`~repro.apps.netcache.NetCacheApp`, whose
    ``.pipeline`` exposes the registers migration snapshots.
    """

    name: str
    target: TargetSpec
    role: str = "leaf"
    app: object | None = None

    @property
    def serving(self) -> bool:
        return self.role in SERVING_ROLES

    @property
    def pipeline(self):
        return None if self.app is None else self.app.pipeline

    def describe(self) -> str:
        state = "installed" if self.app is not None else "empty"
        return (f"{self.name} [{self.role}] on {self.target.name} "
                f"({self.target.stages} stages, "
                f"{self.target.memory_bits_per_stage} b/stage) — {state}")


class FabricTopology:
    """Graph of switches with links and shortest-path routing."""

    def __init__(self, ingress: str | None = None):
        self.switches: dict[str, SwitchNode] = {}
        self.links: list[Link] = []
        self._adjacency: dict[str, list[str]] = {}
        #: where external traffic enters the fabric (route source).
        self.ingress = ingress
        self._route_cache: dict[tuple[str, str], tuple[str, ...]] = {}

    # -- construction -----------------------------------------------------------
    def add_switch(self, name: str, target: TargetSpec,
                   role: str = "leaf") -> SwitchNode:
        if name in self.switches:
            raise TopologyError(f"switch {name!r} added twice")
        node = SwitchNode(name=name, target=target, role=role)
        self.switches[name] = node
        self._adjacency[name] = []
        self._route_cache.clear()
        return node

    def add_link(self, a: str, b: str) -> Link:
        for name in (a, b):
            if name not in self.switches:
                raise TopologyError(f"link endpoint {name!r} is not a switch")
        if a == b:
            raise TopologyError(f"self-link on {a!r}")
        link = Link(a, b)
        self.links.append(link)
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        self._route_cache.clear()
        return link

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.switches)

    def __contains__(self, name: str) -> bool:
        return name in self.switches

    def node(self, name: str) -> SwitchNode:
        try:
            return self.switches[name]
        except KeyError:
            raise TopologyError(f"no switch named {name!r}") from None

    def neighbors(self, name: str) -> list[str]:
        self.node(name)
        return list(self._adjacency[name])

    def serving(self) -> list[str]:
        """Names of switches that serve sharded traffic, in add order."""
        return [n for n, node in self.switches.items() if node.serving]

    def standby(self) -> list[str]:
        return [n for n, node in self.switches.items()
                if node.role == "standby"]

    def path(self, src: str, dst: str) -> tuple[str, ...]:
        """Shortest hop path (BFS, deterministic by add order)."""
        self.node(src), self.node(dst)
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        parents: dict[str, str] = {src: src}
        queue = deque([src])
        while queue:
            here = queue.popleft()
            if here == dst:
                break
            for neighbor in self._adjacency[here]:
                if neighbor not in parents:
                    parents[neighbor] = here
                    queue.append(neighbor)
        if dst not in parents:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        hops = [dst]
        while hops[-1] != src:
            hops.append(parents[hops[-1]])
        route = tuple(reversed(hops))
        self._route_cache[(src, dst)] = route
        return route

    def route(self, dst: str) -> tuple[str, ...]:
        """Path from the fabric ingress to a serving switch."""
        if self.ingress is None:
            raise TopologyError("fabric has no ingress node")
        return self.path(self.ingress, dst)

    def validate(self) -> None:
        """Every switch reachable from every other (single fabric)."""
        if not self.switches:
            raise TopologyError("empty fabric")
        start = next(iter(self.switches))
        seen = {start}
        queue = deque([start])
        while queue:
            here = queue.popleft()
            for neighbor in self._adjacency[here]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        unreachable = sorted(set(self.switches) - seen)
        if unreachable:
            raise TopologyError(
                f"disconnected fabric: {', '.join(unreachable)} unreachable"
            )
        if self.ingress is not None and self.ingress not in self.switches:
            raise TopologyError(f"ingress {self.ingress!r} is not a switch")

    def describe(self) -> str:
        lines = [f"fabric: {len(self.switches)} switches, "
                 f"{len(self.links)} links, ingress={self.ingress}"]
        lines += [f"  {node.describe()}" for node in self.switches.values()]
        return "\n".join(lines)

    # -- generators -------------------------------------------------------------
    @classmethod
    def leaf_spine(cls, leaves: int, spines: int, target: TargetSpec,
                   spine_target: TargetSpec | None = None,
                   standby: int = 0) -> "FabricTopology":
        """``leaves`` ToRs fully meshed to ``spines`` spines.

        Serving apps run on the leaves; ``standby`` extra leaves are
        wired in but start outside the hash ring. The first spine is the
        fabric ingress.
        """
        if leaves <= 0 or spines <= 0:
            raise TopologyError("leaf_spine needs at least one leaf and spine")
        fabric = cls(ingress="spine0")
        for s in range(spines):
            fabric.add_switch(f"spine{s}", spine_target or target,
                              role="spine")
        for l in range(leaves + standby):
            role = "leaf" if l < leaves else "standby"
            name = f"leaf{l}"
            fabric.add_switch(name, target, role=role)
            for s in range(spines):
                fabric.add_link(name, f"spine{s}")
        fabric.validate()
        return fabric

    @classmethod
    def flat(cls, n: int, target: TargetSpec,
             standby: int = 0) -> "FabricTopology":
        """``n`` serving switches behind one load-balancer ingress
        (plus ``standby`` warm spares)."""
        if n <= 0:
            raise TopologyError("flat fabric needs at least one switch")
        fabric = cls(ingress="lb0")
        fabric.add_switch("lb0", target, role="lb")
        for i in range(n + standby):
            role = "switch" if i < n else "standby"
            name = f"s{i}"
            fabric.add_switch(name, target, role=role)
            fabric.add_link("lb0", name)
        fabric.validate()
        return fabric
