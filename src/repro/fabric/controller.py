"""The fleet-level elastic controller: shard, watch, recompile, migrate.

:class:`FleetController` is the fabric analogue of the single-switch
:class:`~repro.runtime.ElasticRuntime`: it installs one elastic P4All
program onto every serving switch of a :class:`~repro.fabric.topology.
FabricTopology` (each compiled for *that switch's* target spec), shards
a live key stream across them with a consistent-hash ring, and keeps the
fleet configured as conditions change:

* **per-switch resource cuts** — an operator re-provisions one box;
  only that switch replans and hot-swaps, state migrated, the rest of
  the fleet keeps serving;
* **fleet recompiles** — a change touching many switches plans them
  *concurrently* on a thread pool. Compiles share one
  :class:`~repro.core.cache.CompileCache`: per (source, target) group a
  leader compiles first, then the rest of the group fans out and is
  served from the layout cache (the PR 3 machinery makes the marginal
  switch nearly free);
* **hot-spot skew** — when one switch's window share exceeds the
  configured ratio, virtual-node arcs are donated from the hottest to
  the coldest switch, with the moved-key fraction bounded by
  ``max_move_fraction`` (consistent hashing moves only the donated
  arcs);
* **live app migration** — :meth:`migrate` drains a switch, snapshots
  its registers at a quiesce point, folds/readmits them into the target
  switch, shifts the ring, and canaries before committing (see
  :mod:`repro.fabric.migration`).

Per-switch results aggregate into a :class:`FleetReport`. Throughput is
accounted two ways: ``busy`` (total simulation CPU time) and
``makespan`` (per-window maximum across switches — the wall time of a
real fabric, whose switches are independent hardware running in
parallel; the simulator executes them serially on one core unless the
process-parallel engine is enabled).
"""

from __future__ import annotations

import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..apps.netcache import NetCacheApp, netcache_linked
from ..core import CompileOptions
from ..core.cache import CompileCache
from ..core.errors import CompileError
from ..obs import bridge_fleet_report, bridge_telemetry
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs.slo import SloMonitor
from ..pisa import Packet
from ..pisa.resources import TargetSpec
from ..runtime.controller import ReconfigRecord
from ..runtime.migrate import migrate_netcache_state
from ..runtime.planner import PlanError, PlanResult, ReconfigPlanner
from ..runtime.telemetry import TelemetryBus
from . import migration as fabric_migration
from .shard import HashRing
from .topology import FabricTopology

__all__ = ["FleetConfig", "FleetWindow", "SwitchStats", "FleetReport",
           "FleetController"]


@dataclass(frozen=True)
class FleetConfig:
    """Fleet control-loop knobs."""

    window_packets: int = 2000       # sharding/monitoring window size
    vnodes: int = 64                 # virtual nodes per switch on the ring
    hot_threshold: int = 4           # NetCache promotion threshold
    recompile_workers: int = 4       # thread pool for fleet recompiles
    skew_threshold: float = 0.0      # max/mean window share arming a
                                     # rebalance (0 disables)
    max_move_fraction: float = 0.2   # moved-key bound per rebalance
    rebalance_cooldown: int = 5      # min windows between rebalances
    migrate_state: bool = True       # migrate registers on swaps
    validate_swap: bool = True       # validate + canary before commit
    engine: str | None = None        # pipeline engine (None = default)
    parallel: bool = False           # per-switch worker processes
    serve_batch: int | None = None   # 0 = per-packet streaming serve;
                                     # >0 = batched fast path in
                                     # sub-batches of this size; None =
                                     # REPRO_PISA_SERVE_BATCH, or 0
    workers: int | None = None       # flow-sharded processes per switch
                                     # (batched serve only); None =
                                     # REPRO_PISA_WORKERS, or 1
    slo_rules: tuple | None = None   # SLO rules (None = defaults, see
                                     # repro.obs.slo.default_slo_rules)


@dataclass
class FleetWindow:
    """One sharded window across the fleet."""

    index: int
    packets: int
    hits: int
    makespan_seconds: float
    busy_seconds: float
    per_switch: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0


@dataclass
class SwitchStats:
    """Cumulative per-switch serving statistics."""

    packets: int = 0
    hits: int = 0
    busy_seconds: float = 0.0
    windows: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0

    def to_dict(self) -> dict:
        return {"packets": self.packets, "hits": self.hits,
                "hit_rate": self.hit_rate,
                "busy_seconds": self.busy_seconds, "windows": self.windows}


@dataclass
class FleetReport:
    """Outcome of one :meth:`FleetController.run` call."""

    packets: int = 0
    hits: int = 0
    dropped_packets: int = 0
    windows: list[FleetWindow] = field(default_factory=list)
    per_switch: dict[str, SwitchStats] = field(default_factory=dict)
    #: ``(switch, record)`` for every reconfiguration cycle
    reconfigs: list[tuple[str, ReconfigRecord]] = field(default_factory=list)
    migrations: list = field(default_factory=list)
    rebalances: list[dict] = field(default_factory=list)
    final_symbols: dict[str, dict[str, int]] = field(default_factory=dict)
    slo_violations: list[dict] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0

    @property
    def timeline(self) -> list[float]:
        return [w.hit_rate for w in self.windows]

    @property
    def busy_seconds(self) -> float:
        return sum(w.busy_seconds for w in self.windows)

    @property
    def makespan_seconds(self) -> float:
        return sum(w.makespan_seconds for w in self.windows)

    @property
    def aggregate_pkts_per_sec(self) -> float:
        """Modeled fabric throughput: switches are independent hardware,
        so a window's wall time is its slowest switch (makespan)."""
        span = self.makespan_seconds
        return self.packets / span if span > 0 else 0.0

    @property
    def serial_pkts_per_sec(self) -> float:
        """Throughput ignoring fabric parallelism (total busy time)."""
        busy = self.busy_seconds
        return self.packets / busy if busy > 0 else 0.0

    def steady_rate(self, last: int = 5, before: int | None = None) -> float:
        """Mean fleet hit rate of the ``last`` windows ending at window
        ``before`` (exclusive; default: the end of the run)."""
        rates = self.timeline[:before] if before is not None else self.timeline
        tail = rates[-last:]
        return sum(tail) / len(tail) if tail else 0.0

    def format(self) -> str:
        lines = [
            f"fleet processed {self.packets} packets over "
            f"{len(self.per_switch)} switches, hit rate {self.hit_rate:.3f}"
            + (f", {self.dropped_packets} dropped" if self.dropped_packets
               else ""),
            f"  throughput: {self.aggregate_pkts_per_sec:,.0f} pkt/s "
            f"aggregate (makespan-modeled), "
            f"{self.serial_pkts_per_sec:,.0f} pkt/s serial",
        ]
        for name, stats in sorted(self.per_switch.items()):
            lines.append(
                f"  {name}: {stats.packets} pkts, hit rate "
                f"{stats.hit_rate:.3f}, busy {stats.busy_seconds:.2f}s"
            )
        for name, record in self.reconfigs:
            outcome = ("committed" if record.committed
                       else f"ROLLED BACK ({record.error})")
            lines.append(
                f"  reconfig[{name}] @pkt {record.packet_index} "
                f"[{record.cause}] via {record.backend or 'none'} "
                f"in {record.seconds:.2f}s — {outcome}"
            )
        for mig in self.migrations:
            lines.append("  " + mig.summary())
        for reb in self.rebalances:
            lines.append(
                f"  rebalance @window {reb['window']}: moved "
                f"{reb['moved_fraction']:.3f} of keyspace "
                f"({reb['src']} → {reb['dst']})"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "dropped_packets": self.dropped_packets,
            "aggregate_pkts_per_sec": self.aggregate_pkts_per_sec,
            "serial_pkts_per_sec": self.serial_pkts_per_sec,
            "busy_seconds": self.busy_seconds,
            "makespan_seconds": self.makespan_seconds,
            "timeline": self.timeline,
            "per_switch": {n: s.to_dict() for n, s in self.per_switch.items()},
            "final_symbols": self.final_symbols,
            "reconfigs": [
                {"switch": name, "cause": r.cause,
                 "packet_index": r.packet_index, "committed": r.committed,
                 "backend": r.backend, "fallback": r.fallback,
                 "seconds": r.seconds, "error": r.error,
                 "symbol_values": r.symbol_values,
                 "solver_stats": r.solver_stats,
                 "migration": (r.migration.to_dict()
                               if r.migration is not None else None)}
                for name, r in self.reconfigs
            ],
            "migrations": [m.to_dict() for m in self.migrations],
            "rebalances": self.rebalances,
            "slo_violations": list(self.slo_violations),
        }


class FleetController:
    """Elastic control plane for a multi-switch fabric."""

    def __init__(
        self,
        topology: FabricTopology,
        source=None,
        options: CompileOptions | None = None,
        config: FleetConfig | None = None,
        telemetry: TelemetryBus | None = None,
        cache: CompileCache | None = None,
    ):
        self.topology = topology
        self.config = config or FleetConfig()
        # Explicit None-checks: an empty TelemetryBus is falsy (len 0).
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        bridge_telemetry(self.telemetry)
        self.options = options or CompileOptions()
        #: One cache for the whole fleet: every switch's planner shares
        #: it, so the N-th identical (source, target) compile is a
        #: layout-cache hit.
        self.cache = cache if cache is not None else CompileCache()
        self.source = source or netcache_linked(with_routing=False)
        serving = topology.serving()
        if not serving:
            raise ValueError("topology has no serving switches")
        self.ring = HashRing(serving, vnodes=self.config.vnodes)
        self._planners: dict[str, ReconfigPlanner] = {}
        self.packets_processed = 0
        self._scheduled_cuts: list[tuple[int, str, TargetSpec]] = []
        self._scheduled_migrations: list[tuple[int, str, str]] = []
        self._last_rebalance_window = -(10 ** 9)
        self._workers = None          # ParallelFleet when config.parallel
        self._installed = False
        #: Per-switch SLO monitoring (subjects are switch names here;
        #: the single-switch runtime uses tenant modules).
        self.slo = SloMonitor(rules=self.config.slo_rules,
                              telemetry=self.telemetry)

    # -- construction -----------------------------------------------------------
    def planner_for(self, name: str) -> ReconfigPlanner:
        planner = self._planners.get(name)
        if planner is None:
            planner = ReconfigPlanner(
                options=self.options, telemetry=self.telemetry,
                cache=self.cache,
            )
            self._planners[name] = planner
        return planner

    def _build_app(self, compiled) -> NetCacheApp:
        return NetCacheApp(
            compiled.target,
            hot_threshold=self.config.hot_threshold,
            source=(self.source if isinstance(self.source, str)
                    else self.source.source),
            compiled=compiled,
            engine=self.config.engine,
        )

    def _installable(self) -> list[str]:
        """Switches that host an app: serving plus warm standbys."""
        return [name for name, node in self.topology.switches.items()
                if node.serving or node.role == "standby"]

    def install_all(self) -> dict[str, PlanResult]:
        """Compile and install the program on every serving/standby
        switch; returns per-switch plan results.

        Per (target) group a leader compiles first, then the remaining
        switches plan concurrently — they hit the shared layout cache,
        so fleet boot costs one real solve per distinct target.
        """
        names = self._installable()
        started = time.perf_counter()
        with trace.span("fleet.install", switches=len(names)):
            plans = self._plan_concurrent(
                {name: self.topology.node(name).target for name in names},
                cause="initial",
            )
            for name, plan in plans.items():
                node = self.topology.node(name)
                node.app = self._build_app(plan.compiled)
        self._installed = True
        self.telemetry.emit(
            "fleet_configured",
            packet_index=0,
            switches=len(names),
            seconds=time.perf_counter() - started,
            cache=self.cache.snapshot(),
            symbols={n: dict(p.compiled.symbol_values)
                     for n, p in plans.items()},
        )
        if self.config.parallel:
            from .parallel import ParallelFleet

            self._workers = ParallelFleet(self)
        return plans

    def _plan_concurrent(self, targets: dict[str, TargetSpec],
                         cause: str) -> dict[str, PlanResult]:
        """Plan every switch in ``targets``; grouped leader-then-fanout.

        The leader of each distinct target warms the layout cache; the
        rest of its group plans concurrently on the thread pool and is
        served from cache. Raises :class:`~repro.runtime.planner.
        PlanError` if any switch cannot be laid out.
        """
        groups: dict[TargetSpec, list[str]] = defaultdict(list)
        for name, target in targets.items():
            groups[target].append(name)
        plans: dict[str, PlanResult] = {}
        started = time.perf_counter()
        with trace.span("fleet.plan", switches=len(targets),
                        cause=cause) as plan_span:
            for target, names in groups.items():
                leader = names[0]
                plans[leader] = self.planner_for(leader).plan(
                    self.source, target, cause=cause
                )
            rest = [name for name in targets if name not in plans]
            workers = min(self.config.recompile_workers, len(rest)) or 1
            if rest:
                with ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="fleet-plan"
                ) as pool:
                    futures = {
                        name: pool.submit(
                            self.planner_for(name).plan,
                            self.source, targets[name], cause,
                        )
                        for name in rest
                    }
                    for name, future in futures.items():
                        plans[name] = future.result()
            plan_span.set_attrs(groups=len(groups), concurrent=len(rest))
        self.telemetry.emit(
            "fleet_recompile",
            packet_index=self.packets_processed,
            cause=cause,
            switches=len(targets),
            concurrent=len(rest),
            workers=workers,
            seconds=time.perf_counter() - started,
            cache=self.cache.snapshot(),
        )
        return plans

    # -- operator interface ------------------------------------------------------
    def schedule_cut(self, at_packet: int, switch: str,
                     target: TargetSpec) -> None:
        """Re-provision one switch once ``at_packet`` packets have been
        served fleet-wide (applied at the next window boundary)."""
        self.topology.node(switch)
        self._scheduled_cuts.append((at_packet, switch, target))
        self._scheduled_cuts.sort(key=lambda item: item[0])

    def schedule_migration(self, at_packet: int, src: str, dst: str) -> None:
        """Arrange a live migration mid-run. ``src`` may be the literal
        ``"hottest"`` — resolved, when due, to the switch that served
        the most packets so far."""
        if src != "hottest":
            self.topology.node(src)
        self.topology.node(dst)
        self._scheduled_migrations.append((at_packet, src, dst))
        self._scheduled_migrations.sort(key=lambda item: item[0])

    # -- reconfiguration ---------------------------------------------------------
    def recompile_all(self, targets: dict[str, TargetSpec] | TargetSpec,
                      cause: str = "fleet-recompile",
                      ) -> dict[str, ReconfigRecord]:
        """Recompile (and hot-swap) a set of switches concurrently.

        ``targets`` is either one spec applied to every serving switch
        or a per-switch dict. Planning fans out on the thread pool
        (shared cache); swaps — migrate, validate, canary, commit — run
        in the control thread, per switch, with per-switch rollback.
        """
        if isinstance(targets, TargetSpec):
            targets = {name: targets for name in self.topology.serving()}
        records: dict[str, ReconfigRecord] = {}
        with trace.span("fabric.recompile", switches=len(targets),
                        cause=cause):
            try:
                plans = self._plan_concurrent(targets, cause=cause)
            except PlanError as exc:
                # No layout for at least one switch: nothing swaps; the
                # fleet keeps serving its current configuration.
                for name in targets:
                    records[name] = ReconfigRecord(
                        cause=cause, packet_index=self.packets_processed,
                        committed=False, error=str(exc),
                    )
                self.telemetry.emit(
                    "reconfig_failed",
                    packet_index=self.packets_processed,
                    cause=cause, error=str(exc),
                )
                return records
            for name, plan in plans.items():
                records[name] = self._swap_switch(
                    name, plan, targets[name], cause
                )
        return records

    def cut_switch(self, switch: str, target: TargetSpec,
                   cause: str = "target-change") -> ReconfigRecord:
        """Re-provision one switch: replan + migrate + swap, alone."""
        return self.recompile_all({switch: target}, cause=cause)[switch]

    def _swap_switch(self, name: str, plan: PlanResult,
                     target: TargetSpec, cause: str) -> ReconfigRecord:
        """Build/migrate/validate/commit one switch's new layout."""
        node = self.topology.node(name)
        started = time.perf_counter()
        record = ReconfigRecord(
            cause=cause,
            packet_index=self.packets_processed,
            committed=False,
            backend=plan.backend,
            fallback=plan.fallback,
            symbol_values=dict(plan.compiled.symbol_values),
            solver_stats=dict(plan.solver_stats),
            module_attribution=dict(plan.module_attribution),
        )
        with trace.span("fabric.swap", switch=name, cause=cause) as span:
            new_app = self._build_app(plan.compiled)
            if self.config.migrate_state and node.app is not None:
                record.migration = migrate_netcache_state(node.app, new_app)
            try:
                if self.config.validate_swap:
                    _canary(new_app)
            except Exception as exc:
                record.error = str(exc)
                record.seconds = time.perf_counter() - started
                span.set_attrs(committed=False, error=record.error)
                self.telemetry.emit(
                    "rollback", packet_index=self.packets_processed,
                    switch=name, cause=cause, error=str(exc),
                )
                self._count_reconfig(name, cause, "rolled-back")
                self.slo.observe("reconfig_seconds", name, record.seconds,
                                 packet_index=self.packets_processed)
                return record
            node.app = new_app
            node.target = target
            record.committed = True
            record.seconds = time.perf_counter() - started
            span.set_attrs(committed=True, backend=plan.backend)
        self.slo.observe("reconfig_seconds", name, record.seconds,
                         packet_index=self.packets_processed)
        self.telemetry.emit(
            "swap_committed",
            packet_index=self.packets_processed,
            switch=name, cause=cause, backend=plan.backend,
            fallback=plan.fallback, seconds=record.seconds,
            symbols=dict(plan.compiled.symbol_values),
        )
        self._count_reconfig(name, cause, "committed")
        return record

    def _count_reconfig(self, switch: str, cause: str, outcome: str) -> None:
        obs_metrics.counter(
            "p4all_fabric_reconfigs_total",
            help="Per-switch fabric reconfigurations, by cause and outcome.",
            labels=("cause", "outcome"),
        ).inc(cause=cause, outcome=outcome)
        obs_metrics.counter(
            "p4all_fleet_reconfigs_total",
            help="Fleet reconfigurations with per-switch attribution.",
            labels=("switch", "cause", "outcome"),
        ).inc(switch=switch, cause=cause, outcome=outcome)

    # -- migration ---------------------------------------------------------------
    def migrate(self, src: str, dst: str, cause: str = "migration",
                downtime_packets: int = 0, replay=None):
        """Live-migrate the app (state + shard) from ``src`` to ``dst``.

        See :func:`repro.fabric.migration.migrate_node` for the
        protocol. ``downtime_packets`` is the in-flight buffer length
        when the run loop fires the migration mid-stream (``replay``
        drains it onto the surviving owner); a direct call has no
        in-flight traffic, so both default to none.
        """
        if self._workers is not None:
            raise NotImplementedError(
                "live migration is not supported with parallel worker "
                "processes; run inline mode"
            )
        return fabric_migration.migrate_node(
            self, src, dst, cause=cause,
            downtime_packets=downtime_packets, replay=replay,
        )

    def _resolve_hottest(self, report: FleetReport) -> str:
        ranked = sorted(
            ((stats.packets, name) for name, stats in report.per_switch.items()
             if name in self.ring.names),
            reverse=True,
        )
        if not ranked:
            return self.ring.names[0]
        return ranked[0][1]

    # -- the control loop --------------------------------------------------------
    def run(self, stream, packets: int,
            report: FleetReport | None = None) -> FleetReport:
        """Shard ``packets`` keys from ``stream`` across the fleet,
        window by window, firing scheduled cuts/migrations and skew
        rebalances as they come due. Passing a ``report`` continues it."""
        if not self._installed:
            self.install_all()
        report = report or FleetReport()
        for name in self._installable():
            report.per_switch.setdefault(name, SwitchStats())
        end = self.packets_processed + packets
        with trace.span("fabric.run", packets=packets) as run_span:
            while self.packets_processed < end:
                self._apply_due_cuts(report)
                n = min(self.config.window_packets,
                        end - self.packets_processed)
                keys = np.asarray(stream.sample(n))
                migration_due = self._pop_due_migration(report)
                self._window(keys, report, migration_due)
            run_span.set_attrs(hit_rate=report.hit_rate,
                               windows=len(report.windows))
            report.packets = sum(
                s.packets for s in report.per_switch.values())
            report.hits = sum(s.hits for s in report.per_switch.values())
            report.slo_violations = list(self.slo.violations)
            # Mirror the fleet outcome into the still-open fabric.run
            # span (and the flight recorder) the way runtime telemetry
            # already lands in the span tree.
            bridge_fleet_report(report)
        for name in self.ring.names:
            app = self.topology.node(name).app
            if app is not None:
                report.final_symbols[name] = dict(
                    app.compiled.symbol_values
                )
        report.packets = sum(s.packets for s in report.per_switch.values())
        report.hits = sum(s.hits for s in report.per_switch.values())
        return report

    def _apply_due_cuts(self, report: FleetReport) -> None:
        while (self._scheduled_cuts
               and self._scheduled_cuts[0][0] <= self.packets_processed):
            _at, name, target = self._scheduled_cuts.pop(0)
            if self.config.parallel:
                raise NotImplementedError(
                    "per-switch recompilation is not supported with "
                    "parallel worker processes; run inline mode"
                )
            self.telemetry.emit(
                "target_change_requested",
                packet_index=self.packets_processed,
                switch=name, target=target.name,
                memory_bits_per_stage=target.memory_bits_per_stage,
            )
            record = self.cut_switch(name, target)
            report.reconfigs.append((name, record))

    def _pop_due_migration(self, report: FleetReport):
        if (self._scheduled_migrations
                and self._scheduled_migrations[0][0]
                <= self.packets_processed):
            _at, src, dst = self._scheduled_migrations.pop(0)
            if src == "hottest":
                src = self._resolve_hottest(report)
            return src, dst
        return None

    def _run_shard(self, name: str, shard: np.ndarray,
                   ) -> tuple[int, int, float]:
        """Serve one switch's sub-batch; returns (packets, hits, busy)."""
        if self._workers is not None:
            return self._workers.run_shard(name, shard)
        app = self.topology.node(name).app
        t0 = time.perf_counter()
        stats = app.run_trace(shard, serve_batch=self.config.serve_batch,
                              workers=self.config.workers)
        return stats.packets, stats.hits, time.perf_counter() - t0

    def _window(self, keys: np.ndarray, report: FleetReport,
                migration_due: tuple[str, str] | None) -> None:
        """Serve one window, optionally with a migration in its middle.

        When a migration is due, this window models the drain: keys
        owned by the moving shard are buffered at the ingress while the
        rest of the fleet serves normally, the state moves, the ring
        shifts, and the buffer replays onto the destination. The
        buffered count is the migration's downtime in packets.
        """
        index = len(report.windows)
        shards = self.ring.shard(keys)
        served: dict[str, tuple[int, int, float]] = {}
        buffered = np.empty(0, dtype=keys.dtype)
        if migration_due is not None:
            src, _dst = migration_due
            buffered = shards.pop(src, buffered)

        with trace.span("fabric.window", index=index,
                        packets=len(keys)) as span:
            if self._workers is not None and shards:
                served.update(self._workers.run_window(shards))
            else:
                for name, shard in shards.items():
                    served[name] = self._run_shard(name, shard)

            if migration_due is not None:
                src, dst = migration_due

                def _replay(mig) -> None:
                    # Drain the buffer onto the new owner (or back onto
                    # src after a rollback) before the migration event
                    # is emitted, so its replayed_packets is final.
                    if not len(buffered):
                        return
                    name = dst if mig.committed else src
                    pkts, hits, busy = self._run_shard(name, buffered)
                    mig.replayed_packets = pkts
                    prev = served.get(name, (0, 0, 0.0))
                    served[name] = (prev[0] + pkts, prev[1] + hits,
                                    prev[2] + busy)

                mig = self.migrate(src, dst, cause="scheduled",
                                   downtime_packets=int(len(buffered)),
                                   replay=_replay)
                report.migrations.append(mig)

            window = FleetWindow(
                index=index,
                packets=sum(p for p, _h, _b in served.values()),
                hits=sum(h for _p, h, _b in served.values()),
                makespan_seconds=max(
                    (b for _p, _h, b in served.values()), default=0.0
                ),
                busy_seconds=sum(b for _p, _h, b in served.values()),
                per_switch={n: p for n, (p, _h, _b) in served.items()},
            )
            span.set_attrs(hit_rate=window.hit_rate,
                           makespan=window.makespan_seconds)

        dropped = len(keys) - window.packets
        if dropped > 0:
            report.dropped_packets += dropped
        for name, (pkts, hits, busy) in served.items():
            stats = report.per_switch.setdefault(name, SwitchStats())
            stats.packets += pkts
            stats.hits += hits
            stats.busy_seconds += busy
            stats.windows += 1
            obs_metrics.counter(
                "p4all_fabric_packets_total",
                help="Packets served by fabric switches.",
                labels=("switch",),
            ).inc(pkts, switch=name)
            if pkts:
                self.slo.observe("hit_rate", name, hits / pkts,
                                 packet_index=self.packets_processed)
        obs_metrics.gauge(
            "p4all_fabric_window_hit_rate",
            help="Fleet-wide hit rate of the most recent window.",
        ).set(window.hit_rate)
        report.windows.append(window)
        self.packets_processed += len(keys)
        self.telemetry.emit(
            "fabric_window",
            packet_index=self.packets_processed,
            window=index,
            hit_rate=window.hit_rate,
            per_switch=dict(window.per_switch),
            makespan_seconds=window.makespan_seconds,
        )
        self._maybe_rebalance(window, report)

    # -- skew rebalancing --------------------------------------------------------
    def _maybe_rebalance(self, window: FleetWindow,
                         report: FleetReport) -> None:
        if self.config.skew_threshold <= 0 or len(self.ring) < 2:
            return
        if (window.index - self._last_rebalance_window
                < self.config.rebalance_cooldown):
            return
        loads = {name: window.per_switch.get(name, 0)
                 for name in self.ring.names}
        total = sum(loads.values())
        if total == 0:
            return
        mean = total / len(loads)
        hottest = max(loads, key=lambda n: (loads[n], n))
        coldest = min(loads, key=lambda n: (loads[n], n))
        if loads[hottest] < self.config.skew_threshold * mean:
            return
        # Donate enough arcs to move roughly the excess share, bounded.
        excess = (loads[hottest] - mean) / total
        fraction = min(
            excess / max(self.ring.owner_shares()[hottest], 1e-9),
            0.5,
        )
        plan = self.ring.donate(
            hottest, coldest, fraction,
            max_move_fraction=self.config.max_move_fraction,
        )
        self._last_rebalance_window = window.index
        entry = {
            "window": window.index,
            "src": hottest,
            "dst": coldest,
            "moved_fraction": plan.moved_fraction,
            "load_ratio": loads[hottest] / mean,
        }
        report.rebalances.append(entry)
        obs_metrics.histogram(
            "p4all_fabric_rebalance_moved_fraction",
            help="Keyspace fraction moved by skew rebalances.",
        ).observe(plan.moved_fraction)
        self.telemetry.emit(
            "fabric_rebalance",
            packet_index=self.packets_processed,
            **entry,
        )

    # -- teardown ----------------------------------------------------------------
    def close(self) -> None:
        """Stop worker processes and per-switch pipelines; idempotent.

        Each installed pipeline may hold a persistent sharded worker
        pool (:mod:`repro.pisa.pool`); closing it here keeps fleet
        teardown from leaking pool children.
        """
        if self._workers is not None:
            self._workers.close()
            self._workers = None
        for node in self.topology.switches.values():
            if node.app is not None and node.app.pipeline is not None:
                node.app.pipeline.close()

    def __enter__(self) -> "FleetController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _canary(app: NetCacheApp) -> None:
    """One packet through the candidate pipeline before commit: it must
    process cleanly, and a migrated hot key must actually hit."""
    if app._cached_keys:
        key = next(iter(app._cached_keys))
        result = app.pipeline.process(Packet(fields={"req_key": key}))
        if not result.get("meta.kv_hit"):
            raise CompileError(
                f"canary failed: migrated key {key} missed in the "
                "candidate pipeline"
            )
    else:
        app.pipeline.process(Packet(fields={"req_key": 1}))
