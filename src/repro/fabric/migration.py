"""Live app migration between fabric switches.

Moves a running app's *state and shard* from one switch to another
without losing logical keys — the fabric analogue of p4containerflow's
node migration, but for elastic P4All state rather than NAT entries.
The protocol, driven by :func:`migrate_node`:

1. **drain** — the fleet controller stops routing new keys to ``src``
   (mid-stream, the run loop buffers the in-flight window's src-owned
   keys at the ingress; the buffered count is the migration's downtime
   in packets);
2. **snapshot** — ``src``'s registers are captured at a quiesce point
   via the structure-generic
   :func:`~repro.runtime.migrate.snapshot_registers`;
3. **copy** — the CMS sketch is fold-restored onto ``dst``
   *accumulating* onto its existing counts (``dst`` may already serve
   its own shard), and the cached KV entries re-admit hottest-first by
   the source sketch's heat estimate;
4. **shift routes** — the hash ring relabels every ``src`` point to
   ``dst``: exactly ``src``'s keys move, all to ``dst``, nobody else's
   placement changes;
5. **verify** — a canary packet for the hottest migrated key must hit
   in ``dst``'s cache before the change commits. On any failure the
   ring and ``dst``'s registers roll back to their pre-migration image
   and ``src`` keeps serving.

After commit ``src`` is marked ``drained`` (out of the ring, app still
installed); a ``standby`` destination is promoted to a serving role.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.errors import CompileError
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..pisa import Packet
from ..runtime.migrate import (
    migrate_netcache_state,
    restore_registers,
    snapshot_registers,
)

__all__ = ["FabricMigrationReport", "migrate_node"]


@dataclass
class FabricMigrationReport:
    """One live migration: what moved, how long traffic paused."""

    src: str
    dst: str
    committed: bool = False
    packet_index: int = 0
    seconds: float = 0.0
    #: exact keyspace fraction handed over (src's arc share)
    moved_fraction: float = 0.0
    #: keys buffered while the shard was in flight (filled by the run
    #: loop when the migration fires mid-stream)
    downtime_packets: int = 0
    #: buffered keys replayed onto the destination after commit
    replayed_packets: int = 0
    kv_entries_old: int = 0
    kv_migrated: int = 0
    kv_dropped: int = 0
    cms_rows_migrated: int = 0
    cms_exact_fold: bool = True
    cms_mass_old: int = 0
    cms_mass_new: int = 0
    canary_key: int | None = None
    error: str = ""
    notes: list[str] = field(default_factory=list)

    @property
    def kv_loss_fraction(self) -> float:
        if self.kv_entries_old == 0:
            return 0.0
        return self.kv_dropped / self.kv_entries_old

    def summary(self) -> str:
        outcome = ("committed" if self.committed
                   else f"ROLLED BACK ({self.error})")
        return (
            f"migration {self.src} → {self.dst} @pkt {self.packet_index}: "
            f"{outcome}, {self.kv_migrated}/{self.kv_entries_old} entries, "
            f"{self.moved_fraction:.3f} of keyspace, downtime "
            f"{self.downtime_packets} pkts in {self.seconds:.3f}s"
        )

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "committed": self.committed,
            "packet_index": self.packet_index,
            "seconds": self.seconds,
            "moved_fraction": self.moved_fraction,
            "downtime_packets": self.downtime_packets,
            "replayed_packets": self.replayed_packets,
            "kv_entries_old": self.kv_entries_old,
            "kv_migrated": self.kv_migrated,
            "kv_dropped": self.kv_dropped,
            "kv_loss_fraction": self.kv_loss_fraction,
            "cms_rows_migrated": self.cms_rows_migrated,
            "cms_exact_fold": self.cms_exact_fold,
            "cms_mass_old": self.cms_mass_old,
            "cms_mass_new": self.cms_mass_new,
            "canary_key": self.canary_key,
            "error": self.error,
            "notes": list(self.notes),
        }


def _serving_role(topology, dst_node) -> str:
    """Role a promoted standby takes: match the fabric's serving kind."""
    for node in topology.switches.values():
        if node.serving:
            return node.role
    return "switch"


def migrate_node(controller, src: str, dst: str,
                 cause: str = "migration",
                 downtime_packets: int = 0,
                 replay=None) -> FabricMigrationReport:
    """Run the drain → snapshot → copy → shift → verify protocol.

    ``controller`` is the owning :class:`~repro.fabric.controller.
    FleetController`; ``src`` must be on the ring, ``dst`` must have an
    app installed (serving peer or warm standby). ``downtime_packets``
    is the number of in-flight keys the run loop buffered for the drain
    (0 when called between windows); ``replay`` is the run loop's
    callback that drains that buffer — it runs after the commit/rollback
    decision but *before* the telemetry event, so the emitted
    ``replayed_packets`` reflects what actually replayed. Rollback
    restores the ring and ``dst``'s register image, so a failed
    migration leaves the fabric exactly as it was.
    """
    topology = controller.topology
    src_node = topology.node(src)
    dst_node = topology.node(dst)
    report = FabricMigrationReport(
        src=src, dst=dst, packet_index=controller.packets_processed,
        downtime_packets=downtime_packets,
    )
    if src not in controller.ring:
        report.error = f"source {src!r} is not serving (not on the ring)"
        return _finish(controller, report, cause, replay)
    if src_node.app is None or dst_node.app is None:
        report.error = "both switches need an installed app"
        return _finish(controller, report, cause, replay)

    started = time.perf_counter()
    old_ring = controller.ring.copy()
    report.moved_fraction = old_ring.owner_shares().get(src, 0.0)
    with trace.span("fleet.migrate", src=src, dst=dst,
                    cause=cause) as span:
        # Pre-image of the destination, for rollback.
        dst_rollback = snapshot_registers(dst_node.pipeline)
        dst_keys_rollback = set(dst_node.app._cached_keys)
        try:
            # copy: sketch accumulates onto dst's own counts; KV entries
            # re-admit hottest-first.
            mig = migrate_netcache_state(src_node.app, dst_node.app,
                                         accumulate=True)
            report.kv_entries_old = mig.kv_entries_old
            report.kv_migrated = mig.kv_migrated
            report.kv_dropped = mig.kv_dropped
            report.cms_rows_migrated = mig.cms_rows_migrated
            report.cms_exact_fold = mig.cms_exact_fold
            report.cms_mass_old = mig.cms_mass_old
            report.cms_mass_new = mig.cms_mass_new
            report.notes.extend(mig.notes)

            # shift routes: relabel src's arcs to dst.
            controller.ring.reassign(src, dst)

            # verify: the hottest migrated key must hit on dst before
            # the handover commits.
            if controller.config.validate_swap:
                migrated = (set(src_node.app._cached_keys)
                            & set(dst_node.app._cached_keys))
                if migrated:
                    key = max(migrated, key=src_node.app._cms_estimate)
                    report.canary_key = key
                    result = dst_node.app.pipeline.process(
                        Packet(fields={"req_key": key})
                    )
                    if not result.get("meta.kv_hit"):
                        raise CompileError(
                            f"canary failed: migrated key {key} missed "
                            f"on {dst}"
                        )
                elif report.kv_entries_old:
                    raise CompileError(
                        "canary failed: no migrated entry survived on "
                        f"{dst}"
                    )

            # commit: src drains, a standby dst is promoted to serving.
            src_node.role = "drained"
            if dst_node.role == "standby":
                dst_node.role = _serving_role(topology, dst_node)
            report.committed = True
        except Exception as exc:
            controller.ring = old_ring
            restore_registers(dst_rollback, dst_node.pipeline,
                              fold=False, accumulate=False)
            dst_node.app._cached_keys = dst_keys_rollback
            report.error = str(exc)
        report.seconds = time.perf_counter() - started
        span.set_attrs(committed=report.committed,
                       moved_fraction=report.moved_fraction,
                       kv_migrated=report.kv_migrated,
                       error=report.error)
    return _finish(controller, report, cause, replay)


def _finish(controller, report: FabricMigrationReport,
            cause: str, replay=None) -> FabricMigrationReport:
    if replay is not None:
        replay(report)
    outcome = "committed" if report.committed else "rolled-back"
    obs_metrics.counter(
        "p4all_fabric_migrations_total",
        help="Live app migrations between fabric switches, by outcome.",
        labels=("outcome",),
    ).inc(outcome=outcome)
    obs_metrics.counter(
        "p4all_fleet_migrations_total",
        help="Live app migrations with per-switch attribution.",
        labels=("src", "dst", "result"),
    ).inc(src=report.src, dst=report.dst, result=outcome)
    if report.committed:
        obs_metrics.histogram(
            "p4all_fabric_migration_downtime_packets",
            help="Packets buffered during live migrations.",
            buckets=(0, 10, 100, 1000, 10000),
        ).observe(report.downtime_packets)
    controller.telemetry.emit(
        "fabric_migration", cause=cause, **report.to_dict(),
    )
    return report
