"""Multi-switch fabric: topology, sharding, fleet control, migration.

One elastic P4All program, many PISA switches. The compiler stretches
the program to each switch's resources; this package stretches the
*deployment* across a fabric of them:

* :mod:`~repro.fabric.topology` — typed switch graph (leaf/spine and
  flat load-balancer generators), per-switch targets, routing;
* :mod:`~repro.fabric.shard` — consistent-hash flow sharding with
  virtual nodes, exact moved-fraction accounting;
* :mod:`~repro.fabric.controller` — :class:`FleetController`: installs
  per-switch layouts through a shared compile cache, shards live
  traffic, recompiles switches concurrently on resource cuts, and
  rebalances hot spots;
* :mod:`~repro.fabric.migration` — live app migration between switches
  (drain → snapshot → copy → shift → verify, with rollback);
* :mod:`~repro.fabric.parallel` — optional process-per-switch execution
  for real multi-core scaling.
"""

from .controller import (
    FleetConfig,
    FleetController,
    FleetReport,
    FleetWindow,
    SwitchStats,
)
from .migration import FabricMigrationReport, migrate_node
from .shard import RING_SPACE, HashRing, RebalancePlan, key_hash
from .topology import FabricTopology, Link, SwitchNode, TopologyError

__all__ = [
    "FleetConfig",
    "FleetController",
    "FleetReport",
    "FleetWindow",
    "SwitchStats",
    "FabricMigrationReport",
    "migrate_node",
    "HashRing",
    "RebalancePlan",
    "key_hash",
    "RING_SPACE",
    "FabricTopology",
    "Link",
    "SwitchNode",
    "TopologyError",
]
