"""Consistent-hash flow sharding: the fabric's routing function.

A :class:`HashRing` maps every flow key to exactly one switch. Each
switch owns ``vnodes`` points on a 64-bit ring (virtual nodes smooth the
share each switch receives); a key belongs to the owner of the first
point clockwise from the key's hash. The two properties the fleet
controller depends on:

* **stability** — adding a switch moves only the keys that now land on
  the new switch's points; removing (or reassigning) a switch moves only
  that switch's keys. No other key changes owner. This is what bounds a
  rebalance: the moved-key fraction of an add/remove is the affected
  switch's arc share, which concentrates around ``1/n``.
* **determinism** — ring points are derived with BLAKE2b over the switch
  name and key hashes with a fixed 64-bit mix (splitmix64), so the ring
  is byte-identical across processes and ``PYTHONHASHSEED`` values
  (Python's builtin ``hash`` is never used). A fabric controller and its
  per-switch workers therefore always agree on key placement.

Key lookup is vectorized (numpy hash + ``searchsorted``) so per-window
sharding costs microseconds, not a Python loop over the batch.

:class:`RebalancePlan` measures the *exact* keyspace fraction whose
owner differs between two rings — by arc measure, not sampling — which
is how the tests assert the ``≤ 1/n + ε`` movement bound and how the
fleet controller bounds skew-driven rebalances.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["HashRing", "RebalancePlan", "key_hash", "RING_SPACE"]

#: Size of the hash ring (64-bit space).
RING_SPACE = 1 << 64

_U64 = np.uint64


def key_hash(keys) -> np.ndarray:
    """Hash flow keys onto the ring (vectorized splitmix64 finalizer).

    Accepts a scalar or array; returns ``uint64`` positions. Pure
    integer mixing — no Python ``hash``, no seed dependence.
    """
    x = np.atleast_1d(np.asarray(keys)).astype(np.uint64)
    x = (x + _U64(0x9E3779B97F4A7C15))
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _point(name: str, replica: int) -> int:
    """Ring position of one virtual node (stable across processes)."""
    digest = hashlib.blake2b(
        f"{name}#{replica}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass
class RebalancePlan:
    """Exact ownership diff between two rings (by arc measure).

    ``moved_fraction`` is the fraction of the 64-bit keyspace whose
    owner differs; ``moves`` breaks it down as ``(src, dst) → fraction``.
    Under a uniform key hash these are also the expected moved-key
    fractions.
    """

    moved_fraction: float = 0.0
    moves: dict[tuple[str, str], float] = field(default_factory=dict)

    def sources(self) -> set[str]:
        return {src for src, _dst in self.moves}

    def destinations(self) -> set[str]:
        return {dst for _src, dst in self.moves}

    def to_dict(self) -> dict:
        return {
            "moved_fraction": self.moved_fraction,
            "moves": {f"{s}->{d}": f for (s, d), f in self.moves.items()},
        }


class HashRing:
    """Consistent-hash ring with virtual nodes over switch names."""

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        #: owner name per virtual-node point (parallel to points); the
        #: point *positions* are fixed by the point's home node name, so
        #: a reassignment relabels owners without moving boundaries.
        self._owner_of_point: dict[int, str] = {}
        self._points = np.empty(0, dtype=np.uint64)
        self._owners: list[str] = []
        self.names: list[str] = []
        for node in nodes:
            self.add(node, _rebuild=False)
        self._rebuild()

    # -- membership -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, node: str) -> bool:
        return node in self.names

    def add(self, node: str, _rebuild: bool = True) -> None:
        """Add a switch: ``vnodes`` new points, owned by itself."""
        if node in self.names:
            raise ValueError(f"node {node!r} already on the ring")
        self.names.append(node)
        for replica in range(self.vnodes):
            point = _point(node, replica)
            # 64-bit collisions are vanishingly rare; first owner wins
            # deterministically (insertion order is the caller's).
            self._owner_of_point.setdefault(point, node)
        if _rebuild:
            self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a switch; its keys redistribute to the remaining
        owners of the neighboring arcs (only its keys move)."""
        if node not in self.names:
            raise ValueError(f"node {node!r} not on the ring")
        self.names.remove(node)
        self._owner_of_point = {
            p: o for p, o in self._owner_of_point.items() if o != node
        }
        self._rebuild()

    def reassign(self, src: str, dst: str) -> None:
        """Relabel every point ``src`` owns to ``dst`` (live migration).

        The point positions — and therefore every *other* switch's
        keys — are untouched: exactly ``src``'s keys move, all to
        ``dst``. ``dst`` may already be on the ring (absorb) or not
        (standby takeover).
        """
        if src not in self.names:
            raise ValueError(f"node {src!r} not on the ring")
        if dst == src:
            raise ValueError("reassign requires distinct src and dst")
        self._owner_of_point = {
            p: (dst if o == src else o)
            for p, o in self._owner_of_point.items()
        }
        self.names.remove(src)
        if dst not in self.names:
            self.names.append(dst)
        self._rebuild()

    def donate(self, src: str, dst: str, fraction: float,
               max_move_fraction: float | None = None) -> RebalancePlan:
        """Relabel ~``fraction`` of ``src``'s points to ``dst`` (skew
        rebalance). ``src`` keeps at least one point; the moved-key
        fraction — only the donated arcs move — is capped at
        ``max_move_fraction`` by trimming the donated point count.
        Returns the exact :class:`RebalancePlan` of the change.
        """
        if src not in self.names:
            raise ValueError(f"node {src!r} not on the ring")
        if dst not in self.names:
            raise ValueError(f"node {dst!r} not on the ring")
        if src == dst:
            raise ValueError("donate requires distinct src and dst")
        before = self.copy()
        src_points = sorted(
            p for p, o in self._owner_of_point.items() if o == src
        )
        count = max(0, min(int(round(len(src_points) * fraction)),
                           len(src_points) - 1))
        while count > 0:
            for point in src_points[:count]:
                self._owner_of_point[point] = dst
            self._rebuild()
            plan = before.plan_change(self)
            if (max_move_fraction is None
                    or plan.moved_fraction <= max_move_fraction):
                return plan
            # Over budget: undo and retry with fewer donated points.
            for point in src_points[:count]:
                self._owner_of_point[point] = src
            count -= 1
        self._rebuild()
        return RebalancePlan()

    def _rebuild(self) -> None:
        points = np.fromiter(self._owner_of_point, dtype=np.uint64,
                             count=len(self._owner_of_point))
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        sorted_points = [int(p) for p in self._points]
        self._owners = [self._owner_of_point[p] for p in sorted_points]
        self._owner_idx = np.fromiter(
            (self.names.index(o) for o in self._owners),
            dtype=np.int64, count=len(self._owners),
        ) if self._owners else np.empty(0, dtype=np.int64)

    # -- lookup -----------------------------------------------------------------
    def lookup(self, key: int) -> str:
        """Owner of one flow key."""
        return self.names[int(self.lookup_many([key])[0])]

    def lookup_many(self, keys) -> np.ndarray:
        """Owner *indices* (into :attr:`names`) for a key batch."""
        if not self.names:
            raise ValueError("lookup on an empty ring")
        h = key_hash(keys)
        # Owner = first point clockwise at-or-after h, wrapping to 0.
        slot = np.searchsorted(self._points, h, side="left")
        slot[slot == len(self._points)] = 0
        return self._owner_idx[slot]

    def shard(self, keys) -> dict[str, np.ndarray]:
        """Split a key batch into per-owner sub-batches (order kept)."""
        keys = np.atleast_1d(np.asarray(keys))
        idx = self.lookup_many(keys)
        return {
            self.names[i]: keys[idx == i]
            for i in range(len(self.names))
            if np.any(idx == i)
        }

    # -- arc measure ------------------------------------------------------------
    def _arcs(self) -> tuple[np.ndarray, list[str]]:
        """(arc length ending at point i, owner of that arc) pairs.

        The arc *ending* at point ``i`` — from the previous point
        (exclusive) to ``points[i]`` (inclusive) — belongs to
        ``owners[i]``; the first arc wraps around zero.
        """
        points = self._points.astype(np.object_)  # exact python ints
        if len(points) == 0:
            return np.empty(0), []
        prev = np.roll(points, 1)
        lengths = (points - prev) % RING_SPACE
        # A single point owns the whole ring.
        if len(points) == 1:
            lengths[0] = RING_SPACE
        return lengths, self._owners

    def owner_shares(self) -> dict[str, float]:
        """Exact keyspace share per owner (fractions summing to 1)."""
        lengths, owners = self._arcs()
        shares = {name: 0 for name in self.names}
        for length, owner in zip(lengths, owners):
            shares[owner] += int(length)
        return {name: total / RING_SPACE for name, total in shares.items()}

    def plan_change(self, other: "HashRing") -> RebalancePlan:
        """Exact ownership diff from this ring to ``other``.

        Merges both rings' point sets and compares the owner of every
        elementary arc — no sampling, so the returned
        ``moved_fraction`` is the true measure of keys that change
        switch.
        """
        plan = RebalancePlan()
        if not self.names or not other.names:
            return plan
        breakpoints = np.union1d(self._points, other._points)

        def owner_at(ring: "HashRing", pts: np.ndarray) -> list[str]:
            slot = np.searchsorted(ring._points, pts, side="left")
            slot[slot == len(ring._points)] = 0
            return [ring._owners[int(s)] for s in slot]

        old_owner = owner_at(self, breakpoints)
        new_owner = owner_at(other, breakpoints)
        pts = [int(p) for p in breakpoints]
        moved = 0
        moves: dict[tuple[str, str], int] = {}
        for i, point in enumerate(pts):
            prev = pts[i - 1] if i else pts[-1]
            length = (point - prev) % RING_SPACE or (
                RING_SPACE if len(pts) == 1 else 0
            )
            if old_owner[i] != new_owner[i]:
                moved += length
                pair = (old_owner[i], new_owner[i])
                moves[pair] = moves.get(pair, 0) + length
        plan.moved_fraction = moved / RING_SPACE
        plan.moves = {pair: length / RING_SPACE
                      for pair, length in moves.items()}
        return plan

    def copy(self) -> "HashRing":
        ring = HashRing(vnodes=self.vnodes)
        ring.names = list(self.names)
        ring._owner_of_point = dict(self._owner_of_point)
        ring._rebuild()
        return ring

    def digest(self) -> str:
        """Stable fingerprint of the full ring state (points + owners) —
        equal digests mean identical key placement."""
        h = hashlib.blake2b(digest_size=16)
        for point, owner in zip(self._points, self._owners):
            h.update(int(point).to_bytes(8, "big"))
            h.update(owner.encode())
            h.update(b"\0")
        return h.hexdigest()

    def __repr__(self) -> str:
        return (f"HashRing(nodes={self.names}, vnodes={self.vnodes}, "
                f"points={len(self._points)})")
