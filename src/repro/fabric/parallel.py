"""Process-parallel fabric execution: one worker per switch.

The inline fleet controller executes per-switch pipelines serially and
*models* fabric parallelism through makespan accounting (a real fabric's
switches are independent hardware). This module provides the real
thing for multi-core hosts: each switch's app runs in a forked worker
process, a window's shards are submitted to all workers before any
result is collected, and busy time is measured inside each worker — on
a machine with enough cores, window wall time approaches the makespan
the inline model reports.

Workers are forked *after* :meth:`~repro.fabric.controller.
FleetController.install_all`, so each child inherits its switch's
compiled app by memory image; from then on the worker's state is
authoritative (the parent's copy is stale). The command protocol over a
``Pipe`` is deliberately tiny:

* ``("run", keys)`` → ``(packets, hits, busy_seconds)``
* ``("snapshot",)`` → picklable migration bundle (register snapshot,
  cached entries, per-key heat) — how a drained switch's state leaves
  its process;
* ``("absorb", snapshot, entries, heat)`` → restore/readmit counts —
  how it enters the destination's;
* ``("canary", key)`` → whether the key hits in the worker's cache;
* ``("stop",)`` → worker exits.

Mid-run per-switch *recompilation* and *live migration* are not
supported in this mode — a compiled program is not shipped between
processes, and the parent's app copies go stale the moment workers
fork. The controller raises if either is requested while workers are
attached; the ``snapshot``/``absorb``/``canary`` ops are the building
blocks a future worker-side migration would compose. Use inline mode
(the default) for elasticity experiments; use this mode to measure
real multi-core scaling of steady-state serving.

Requires the ``fork`` start method (POSIX); :class:`ParallelFleet`
raises otherwise so callers can fall back to inline execution.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from ..obs import merge_worker_obs, obs_control, trace
from ..obs.aggregate import WorkerObsCapture
from ..runtime.migrate import (
    RegisterSnapshot,
    readmit_by_heat,
    restore_registers,
    snapshot_registers,
)

__all__ = ["ParallelFleet", "SwitchWorker"]


def _worker_main(app, conn, serve_batch: int | None = None,
                 name: str = "") -> None:
    """Forked per-switch serving loop (runs in the child process).

    ``serve_batch > 0`` serves each shard through the batched fast path
    (the vector engine's whole-batch kernels); the switch process itself
    is already the unit of parallelism, so intra-switch sharding stays
    off here."""
    capture = WorkerObsCapture()
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        op = command[0]
        if op == "run":
            keys = command[1]
            capture.begin(command[2] if len(command) > 2 else None)
            t0 = time.perf_counter()
            with trace.span("fleet.worker.run", switch=name) as span:
                stats = app.run_trace(keys, serve_batch=serve_batch)
                span.set_attrs(packets=stats.packets, hits=stats.hits)
            conn.send((stats.packets, stats.hits,
                       time.perf_counter() - t0, capture.finish()))
        elif op == "snapshot":
            snap = snapshot_registers(app.pipeline)
            entries = app.cached_entries()
            heat = {key: app._cms_estimate(key)
                    for _row, key, _value in entries}
            conn.send((snap, entries, heat))
        elif op == "absorb":
            snap, entries, heat = command[1], command[2], command[3]
            restored = restore_registers(snap, app.pipeline,
                                         families=("cms_sketch",),
                                         fold=True, accumulate=True)
            migrated, dropped = readmit_by_heat(
                ((key, value) for _row, key, value in entries),
                heat=lambda key: heat.get(key, 0),
                install=app.install,
            )
            conn.send({"cms_rows": restored.migrated,
                       "cms_exact": restored.exact,
                       "kv_migrated": migrated, "kv_dropped": dropped})
        elif op == "canary":
            from ..pisa import Packet

            result = app.pipeline.process(
                Packet(fields={"req_key": command[1]})
            )
            conn.send(bool(result.get("meta.kv_hit")))
        elif op == "stop":
            conn.send(True)
            break
        else:  # pragma: no cover - protocol misuse
            conn.send(RuntimeError(f"unknown worker op {op!r}"))
    conn.close()


class SwitchWorker:
    """Parent-side handle on one forked switch process."""

    def __init__(self, name: str, app, ctx,
                 serve_batch: int | None = None, track: int = 0) -> None:
        self.name = name
        self.track = track
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(app, child, serve_batch, name),
            name=f"switch-{name}", daemon=True,
        )
        self.process.start()
        child.close()

    def submit(self, *command) -> None:
        self.conn.send(command)

    def collect(self):
        result = self.conn.recv()
        if isinstance(result, Exception):
            raise result
        return result

    def submit_run(self, keys) -> None:
        self.submit("run", keys, obs_control())

    def collect_run(self) -> tuple[int, int, float]:
        """Collect a run reply, folding the worker's spans/metric
        deltas into the parent's tracer and registry."""
        packets, hits, busy, obs_payload = self.collect()
        merge_worker_obs(obs_payload, worker=self.name, track=self.track,
                         track_name=f"switch-{self.name}")
        return packets, hits, busy

    def call(self, *command):
        self.submit(*command)
        return self.collect()

    def stop(self) -> None:
        if self.process.is_alive():
            try:
                self.call("stop")
            except (BrokenPipeError, EOFError, OSError):
                pass
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.terminate()
        self.conn.close()


class ParallelFleet:
    """All of a controller's switches, each running in its own process."""

    def __init__(self, controller) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "parallel fabric execution needs the 'fork' start method"
            )
        ctx = mp.get_context("fork")
        serve_batch = getattr(controller.config, "serve_batch", None)
        self.workers: dict[str, SwitchWorker] = {}
        for i, name in enumerate(controller._installable()):
            app = controller.topology.node(name).app
            if app is not None:
                self.workers[name] = SwitchWorker(
                    name, app, ctx, serve_batch=serve_batch,
                    track=2_000_000 + i)

    def run_shard(self, name: str, keys) -> tuple[int, int, float]:
        worker = self.workers[name]
        worker.submit_run(keys)
        return worker.collect_run()

    def run_window(self, shards: dict) -> dict[str, tuple[int, int, float]]:
        """Serve one window's shards concurrently: submit everything,
        then collect — workers overlap on a multi-core host."""
        for name, keys in shards.items():
            self.workers[name].submit_run(keys)
        return {name: self.workers[name].collect_run() for name in shards}

    def snapshot(self, name: str) -> tuple[RegisterSnapshot, list, dict]:
        return self.workers[name].call("snapshot")

    def absorb(self, name: str, snap: RegisterSnapshot,
               entries: list, heat: dict) -> dict:
        return self.workers[name].call("absorb", snap, entries, heat)

    def canary(self, name: str, key: int) -> bool:
        return self.workers[name].call("canary", key)

    def close(self) -> None:
        for worker in self.workers.values():
            worker.stop()
        self.workers.clear()
