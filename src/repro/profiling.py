"""First-class profiling hooks for the CLI and the eval harness.

``p4all run --profile`` and ``python -m repro.eval runtime --profile``
wrap their packet-processing phase in :func:`profiled`, which writes
sorted cumulative ``cProfile`` stats to a text file in the report
directory — so performance work starts from a measurement, not a guess.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path

__all__ = ["profiled"]


@contextmanager
def profiled(path: str | Path | None, sort: str = "cumulative",
             limit: int = 60):
    """Profile the with-body and write sorted stats to ``path``.

    A no-op when ``path`` is None, so call sites can pass the optional
    CLI flag straight through. The report is plain ``pstats`` text
    (sorted by ``sort``, top ``limit`` rows) followed by a callers
    section for the hottest rows.
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        stats.print_callers(15)
        out = Path(path)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(buffer.getvalue())
