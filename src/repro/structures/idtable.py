"""ID-indexed table: reference + elastic P4All module.

Blink's per-flow state structure (Figure 1's "ID indexed table"): a
single register array indexed directly by a compact flow/prefix ID — no
hashing, no collisions within the tracked ID range. Only its size is
elastic; larger allocations track more IDs.
"""

from __future__ import annotations

import numpy as np

from .module import P4AllModule

__all__ = ["IdIndexedTable", "idtable_module", "IDTABLE_SOURCE"]


class IdIndexedTable:
    """Reference direct-indexed per-ID state table."""

    def __init__(self, size: int, width: int = 64):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.width = width
        self.mask = (1 << width) - 1
        self.cells = np.zeros(size, dtype=np.uint64)

    def in_range(self, ident: int) -> bool:
        return 0 <= ident < self.size

    def get(self, ident: int) -> int:
        return int(self.cells[ident % self.size])

    def set(self, ident: int, value: int) -> None:
        self.cells[ident % self.size] = np.uint64(value & self.mask)

    def add(self, ident: int, amount: int = 1) -> int:
        idx = ident % self.size
        self.cells[idx] = np.uint64((int(self.cells[idx]) + amount) & self.mask)
        return int(self.cells[idx])

    @property
    def memory_bits(self) -> int:
        return self.size * self.width

    def clear(self) -> None:
        self.cells.fill(0)

    def __repr__(self) -> str:
        return f"IdIndexedTable(size={self.size}, width={self.width})"


def idtable_module(
    prefix: str = "idt",
    id_field: str = "meta.flow_id",
    cell_bits: int = 64,
    max_size: int | None = 65536,
) -> P4AllModule:
    """Elastic ID-indexed table module.

    The data plane increments the ID's cell and reports its new value in
    ``meta.<prefix>_state``; the controller reads/writes cells directly.
    """
    size = f"{prefix}_size"
    assumes = [f"{size} >= 1"]
    if max_size is not None:
        assumes.append(f"{size} <= {max_size}")
    declarations = [
        f"register<bit<{cell_bits}>>[{size}] {prefix}_table;",
        (
            f"action {prefix}_touch() {{\n"
            f"    {prefix}_table.add_read(meta.{prefix}_state, {id_field}, 1);\n"
            f"}}"
        ),
        (
            f"control {prefix}_update(inout metadata meta) {{\n"
            f"    apply {{ {prefix}_touch(); }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[size],
        assumes=assumes,
        metadata_fields=[f"bit<{cell_bits}> {prefix}_state;"],
        declarations=declarations,
        apply_calls=[f"{prefix}_update.apply(meta);"],
        utility_term=size,
    )


#: Standalone single-structure program (library source shipped as data).
IDTABLE_SOURCE = """// Elastic ID-indexed table (Blink-style per-ID state).
symbolic int idt_size;
assume idt_size >= 1 && idt_size <= 65536;

struct metadata {
    bit<32> flow_id;
    bit<64> idt_state;
}

register<bit<64>>[idt_size] idt_table;

action idt_touch() {
    idt_table.add_read(meta.idt_state, meta.flow_id, 1);
}

control idt_update(inout metadata meta) {
    apply { idt_touch(); }
}

control Ingress(inout metadata meta) {
    apply {
        idt_update.apply(meta);
    }
}

optimize idt_size;
"""
