"""Count-min sketch: reference implementation + elastic P4All module.

The CMS is the paper's running example (§3.1/3.2, Figures 5/6). Two
artifacts live here:

* :class:`CountMinSketch` — a fast numpy reference implementation with
  the textbook (ε, δ) error guarantees, used for workload-scale
  experiments and for cross-validating the pipeline simulator;
* :func:`cms_module` — the elastic P4All source, parameterized by a name
  prefix and key field so applications can instantiate several sketches.

Both use the same hash family (:mod:`repro.pisa.hashing`), so a compiled
sketch run through the PISA simulator produces *identical* counters to
the reference at equal (rows, cols).
"""

from __future__ import annotations

import math

import numpy as np

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["CountMinSketch", "cms_module", "CMS_SOURCE"]


class CountMinSketch:
    """Reference count-min sketch over integer keys.

    ``rows`` independent hash functions over ``cols`` counters each; an
    estimate is the minimum of a key's counters and never underestimates.
    """

    def __init__(self, rows: int, cols: int, width: int = 32,
                 hash_kind: str = "multiply-shift", seed_offset: int = 0):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.mask = (1 << width) - 1
        self.seed_offset = seed_offset
        family = hash_family(hash_kind)
        self._hashes = [family(seed_offset + r) for r in range(rows)]
        self.table = np.zeros((rows, cols), dtype=np.uint64)
        self.items_seen = 0

    # -- updates / queries ------------------------------------------------------
    def update(self, key: int, amount: int = 1) -> int:
        """Add ``amount`` to ``key``; returns the new estimate."""
        est = self.mask
        for r, h in enumerate(self._hashes):
            c = h.slot(key, cells=self.cols)
            new = (int(self.table[r, c]) + amount) & self.mask
            self.table[r, c] = new
            est = min(est, new)
        self.items_seen += amount
        return est

    def estimate(self, key: int) -> int:
        """Point query: min over the key's counters (never underestimates)."""
        return min(
            int(self.table[r, h.slot(key, cells=self.cols)])
            for r, h in enumerate(self._hashes)
        )

    def update_many(self, keys: np.ndarray) -> None:
        """Vectorized bulk update (unit increments)."""
        keys = np.asarray(keys)
        for r, h in enumerate(self._hashes):
            idx = h.slot_vector(keys, self.cols)
            np.add.at(self.table[r], idx, 1)
        self.items_seen += len(keys)

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        ests = np.full(len(keys), np.iinfo(np.uint64).max, dtype=np.uint64)
        for r, h in enumerate(self._hashes):
            idx = h.slot_vector(keys, self.cols)
            ests = np.minimum(ests, self.table[r][idx])
        return ests.astype(np.int64)

    def clear(self) -> None:
        self.table.fill(0)
        self.items_seen = 0

    # -- analytics ------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Error factor: overestimate ≤ ε·N with probability 1 − δ."""
        return math.e / self.cols

    @property
    def delta(self) -> float:
        """Failure probability of the ε·N bound."""
        return math.exp(-self.rows)

    def error_bound(self) -> float:
        """Absolute additive error bound ε·N for the traffic seen so far."""
        return self.epsilon * self.items_seen

    @property
    def memory_bits(self) -> int:
        return self.rows * self.cols * 32

    def __repr__(self) -> str:
        return f"CountMinSketch(rows={self.rows}, cols={self.cols})"


def cms_module(
    prefix: str = "cms",
    key_field: str = "meta.flow_id",
    rows_sym: str | None = None,
    cols_sym: str | None = None,
    max_rows: int = 4,
    max_cols: int | None = 65536,
    counter_bits: int = 32,
    seed_offset: int = 0,
    weight_in_utility: bool = True,
) -> P4AllModule:
    """Elastic count-min sketch module (the paper's Figure 6).

    After the pipeline runs, ``meta.<prefix>_min`` holds the estimate for
    the packet's key *including* the current packet. The ``assume`` caps
    mirror §3.2.1's diminishing-returns guidance (≤ ``max_rows`` hash
    functions) and §5's memory-capping practice (``max_cols``).
    """
    rows = rows_sym or f"{prefix}_rows"
    cols = cols_sym or f"{prefix}_cols"
    assumes = [f"{rows} >= 1 && {rows} <= {max_rows}"]
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    declarations = [
        f"register<bit<{counter_bits}>>[{cols}][{rows}] {prefix}_sketch;",
        (
            f"action {prefix}_incr()[int i] {{\n"
            f"    meta.{prefix}_index[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_sketch[i].add_read(meta.{prefix}_count[i], "
            f"meta.{prefix}_index[i], 1);\n"
            f"}}"
        ),
        (
            f"action {prefix}_take_min()[int i] {{\n"
            f"    meta.{prefix}_min = meta.{prefix}_count[i];\n"
            f"}}"
        ),
        (
            f"control {prefix}_hash_inc(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{ {prefix}_incr()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
        (
            f"control {prefix}_find_min(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{\n"
            f"            if (meta.{prefix}_count[i] < meta.{prefix}_min) "
            f"{{ {prefix}_take_min()[i]; }}\n"
            f"        }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[rows, cols],
        assumes=assumes,
        metadata_fields=[
            f"bit<32>[{rows}] {prefix}_index;",
            f"bit<{counter_bits}>[{rows}] {prefix}_count;",
            f"bit<{counter_bits}> {prefix}_min;",
        ],
        declarations=declarations,
        apply_calls=[
            f"meta.{prefix}_min = {(1 << counter_bits) - 1};",
            f"{prefix}_hash_inc.apply(meta);",
            f"{prefix}_find_min.apply(meta);",
        ],
        utility_term=f"{rows} * {cols}" if weight_in_utility else "",
    )


#: Standalone single-structure program (library source shipped as data).
CMS_SOURCE = """// Elastic count-min sketch (library module, standalone build).
symbolic int cms_rows;
symbolic int cms_cols;
assume cms_rows >= 1 && cms_rows <= 4;
assume cms_cols <= 65536;

struct metadata {
    bit<32> flow_id;
    bit<32>[cms_rows] cms_index;
    bit<32>[cms_rows] cms_count;
    bit<32> cms_min;
}

register<bit<32>>[cms_cols][cms_rows] cms_sketch;

action cms_incr()[int i] {
    meta.cms_index[i] = hash(i, meta.flow_id);
    cms_sketch[i].add_read(meta.cms_count[i], meta.cms_index[i], 1);
}

action cms_take_min()[int i] {
    meta.cms_min = meta.cms_count[i];
}

control cms_hash_inc(inout metadata meta) {
    apply {
        for (i < cms_rows) { cms_incr()[i]; }
    }
}

control cms_find_min(inout metadata meta) {
    apply {
        for (i < cms_rows) {
            if (meta.cms_count[i] < meta.cms_min) { cms_take_min()[i]; }
        }
    }
}

control Ingress(inout metadata meta) {
    apply {
        meta.cms_min = 4294967295;
        cms_hash_inc.apply(meta);
        cms_find_min.apply(meta);
    }
}

optimize cms_rows * cms_cols;
"""
