"""Elastic-module composition.

The paper's §3.2 methodology builds applications by combining reusable
elastic modules "off-the-shelf" — an elastic NetCache is an elastic
count-min sketch plus an elastic key-value store plus a utility function
weighing them. A :class:`P4AllModule` is one such module: the symbolic
declarations, assumes, metadata fields, top-level declarations (registers,
actions, controls), ingress apply calls, and a default utility term. All
names are prefixed so several instances of the same structure can coexist
(SketchLearn and ConQuest instantiate the sketch more than once).

:func:`compose` splices modules into a complete P4All program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["P4AllModule", "compose"]


@dataclass
class P4AllModule:
    """One elastic module's contribution to a program."""

    name: str
    symbolics: list[str] = field(default_factory=list)
    assumes: list[str] = field(default_factory=list)
    metadata_fields: list[str] = field(default_factory=list)
    declarations: list[str] = field(default_factory=list)
    apply_calls: list[str] = field(default_factory=list)
    utility_term: str = ""

    def render_decls(self) -> str:
        return "\n\n".join(self.declarations)


def compose(
    modules: list[P4AllModule],
    extra_metadata: list[str] | None = None,
    utility: str | None = None,
    utility_weights: dict[str, float] | None = None,
    extra_assumes: list[str] | None = None,
    extra_declarations: list[str] | None = None,
    pre_apply: list[str] | None = None,
    post_apply: list[str] | None = None,
    consts: dict[str, int] | None = None,
) -> str:
    """Build a complete P4All program from modules.

    ``utility`` overrides the objective entirely; otherwise
    ``utility_weights`` (module name → weight) builds the weighted sum of
    each module's default utility term — the paper's
    ``0.4*(rows*cols) + 0.6*(kv_items)`` pattern. ``pre_apply`` /
    ``post_apply`` are raw statements placed around the module calls in
    the Ingress apply block.
    """
    lines: list[str] = []
    for name, value in (consts or {}).items():
        lines.append(f"const int {name} = {value};")
    for module in modules:
        for sym in module.symbolics:
            lines.append(f"symbolic int {sym};")
    for module in modules:
        for assume in module.assumes:
            lines.append(f"assume {assume};")
    for assume in extra_assumes or []:
        lines.append(f"assume {assume};")
    lines.append("")

    lines.append("struct metadata {")
    for fd in extra_metadata or []:
        lines.append(f"    {fd}")
    for module in modules:
        for fd in module.metadata_fields:
            lines.append(f"    {fd}")
    lines.append("}")
    lines.append("")

    for decl in extra_declarations or []:
        lines.append(decl)
        lines.append("")
    for module in modules:
        lines.append(module.render_decls())
        lines.append("")

    lines.append("control Ingress(inout metadata meta) {")
    lines.append("    apply {")
    for stmt in pre_apply or []:
        lines.append(f"        {stmt}")
    for module in modules:
        for call in module.apply_calls:
            lines.append(f"        {call}")
    for stmt in post_apply or []:
        lines.append(f"        {stmt}")
    lines.append("    }")
    lines.append("}")
    lines.append("")

    if utility is None and utility_weights:
        terms = []
        for module in modules:
            weight = utility_weights.get(module.name)
            if weight is None or not module.utility_term:
                continue
            terms.append(f"{weight} * ({module.utility_term})")
        utility = " + ".join(terms) if terms else None
    if utility:
        lines.append(f"optimize {utility};")
        lines.append("")
    return "\n".join(lines)
