"""Elastic-module composition.

The paper's §3.2 methodology builds applications by combining reusable
elastic modules "off-the-shelf" — an elastic NetCache is an elastic
count-min sketch plus an elastic key-value store plus a utility function
weighing them. A :class:`P4AllModule` is one such module: the symbolic
declarations, assumes, metadata fields, top-level declarations (registers,
actions, controls), ingress apply calls, and a default utility term. All
names are prefixed so several instances of the same structure can coexist
(SketchLearn and ConQuest instantiate the sketch more than once).

:func:`compose` splices modules into a complete P4All program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["P4AllModule", "compose"]


@dataclass
class P4AllModule:
    """One elastic module's contribution to a program."""

    name: str
    symbolics: list[str] = field(default_factory=list)
    assumes: list[str] = field(default_factory=list)
    metadata_fields: list[str] = field(default_factory=list)
    declarations: list[str] = field(default_factory=list)
    apply_calls: list[str] = field(default_factory=list)
    utility_term: str = ""

    def render_decls(self) -> str:
        return "\n\n".join(self.declarations)


def compose(
    modules: list[P4AllModule],
    extra_metadata: list[str] | None = None,
    utility: str | None = None,
    utility_weights: dict[str, float] | None = None,
    extra_assumes: list[str] | None = None,
    extra_declarations: list[str] | None = None,
    pre_apply: list[str] | None = None,
    post_apply: list[str] | None = None,
    consts: dict[str, int] | None = None,
) -> str:
    """Build a complete P4All program from modules.

    ``utility`` overrides the objective entirely; otherwise
    ``utility_weights`` (module name → weight) builds the weighted sum of
    each module's default utility term — the paper's
    ``0.4*(rows*cols) + 0.6*(kv_items)`` pattern. ``pre_apply`` /
    ``post_apply`` are raw statements placed around the module calls in
    the Ingress apply block.

    Implemented on the module linker: the modules are front-ended into
    per-module IRs, linked (collision and isolation checks included),
    and the linked program's rendered source — byte-identical with the
    historical string splice — is returned. Callers that want the
    structured result should use :func:`repro.link.link_p4all_modules`
    directly.
    """
    from ..link import link_p4all_modules

    linked = link_p4all_modules(
        modules,
        extra_metadata=extra_metadata,
        utility=utility,
        utility_weights=utility_weights,
        extra_assumes=extra_assumes,
        extra_declarations=extra_declarations,
        pre_apply=pre_apply,
        post_apply=post_apply,
        consts=consts,
    )
    return linked.source
