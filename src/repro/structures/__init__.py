"""Reusable elastic data-structure library (the paper's Figure 1).

Each structure ships in two forms:

* a fast Python **reference implementation** (used for workload-scale
  experiments and to cross-validate the PISA simulator), and
* an elastic **P4All module** — prefixed source fragments composable into
  applications via :func:`compose`, plus a standalone ``*_SOURCE``
  program under ``p4all_src/``.

Catalogue (module → papers that use it, per Figure 1):

=====================  =====================================================
count-min sketch       NetCache, SketchLearn, ConQuest, UnivMon, ...
key-value store        NetCache, NetChain, Precision, HashPipe, ...
Bloom filter           NetCache, FlowRadar, SilkRoad, ...
counting hash table    Precision, HashPipe, FlowRadar, ...
hierarchical sketch    SketchLearn
ID-indexed table       Blink
=====================  =====================================================
"""

from .bloom import BLOOM_SOURCE, BloomFilter, bloom_module
from .cms import CMS_SOURCE, CountMinSketch, cms_module
from .hashtable import HASHTABLE_SOURCE, CountingHashTable, hashtable_module
from .hierarchical import (
    SKETCHLEARN_SOURCE,
    HierarchicalSketch,
    hierarchical_module,
)
from .idtable import IDTABLE_SOURCE, IdIndexedTable, idtable_module
from .kvstore import KV_SOURCE, KeyValueStore, kv_module
from .matrix import MATRIX_SOURCE, HashMatrix, matrix_module
from .module import P4AllModule, compose

__all__ = [
    "BLOOM_SOURCE",
    "BloomFilter",
    "bloom_module",
    "CMS_SOURCE",
    "CountMinSketch",
    "cms_module",
    "HASHTABLE_SOURCE",
    "CountingHashTable",
    "hashtable_module",
    "SKETCHLEARN_SOURCE",
    "HierarchicalSketch",
    "hierarchical_module",
    "IDTABLE_SOURCE",
    "IdIndexedTable",
    "idtable_module",
    "KV_SOURCE",
    "KeyValueStore",
    "kv_module",
    "MATRIX_SOURCE",
    "HashMatrix",
    "matrix_module",
    "P4AllModule",
    "compose",
    "LIBRARY_SOURCES",
]

#: name → standalone program text for every library structure.
LIBRARY_SOURCES = {
    "cms": CMS_SOURCE,
    "bloom": BLOOM_SOURCE,
    "kvstore": KV_SOURCE,
    "hashtable": HASHTABLE_SOURCE,
    "hierarchical": SKETCHLEARN_SOURCE,
    "matrix": MATRIX_SOURCE,
    "idtable": IDTABLE_SOURCE,
}
