"""Hash-based matrix: reference + elastic P4All module.

Figure 1 lists the "hash-based matrix" separately from the count-min
sketch: the same rows×columns register layout, but as a general
accumulator read out by the control plane (UnivMon's level sketches,
Sketchvisor's fast path, fair-queueing's per-flow state all use this
shape) rather than answering min-queries in the data plane. The module
accumulates an arbitrary per-packet quantity (bytes by default) at every
row, and leaves interpretation to the controller — so, unlike the CMS
module, it spends no pipeline stages on a fold.
"""

from __future__ import annotations

import numpy as np

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["HashMatrix", "matrix_module", "MATRIX_SOURCE"]


class HashMatrix:
    """Reference rows×cols accumulator matrix over integer keys."""

    def __init__(self, rows: int, cols: int, width: int = 32,
                 hash_kind: str = "multiply-shift", seed_offset: int = 500):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.mask = (1 << width) - 1
        family = hash_family(hash_kind)
        self._fns = [family(seed_offset + r) for r in range(rows)]
        self.table = np.zeros((rows, cols), dtype=np.uint64)

    def update(self, key: int, amount: int = 1) -> None:
        """Accumulate ``amount`` into the key's cell of every row."""
        for row, fn in enumerate(self._fns):
            idx = fn.slot(key, cells=self.cols)
            self.table[row, idx] = np.uint64(
                (int(self.table[row, idx]) + amount) & self.mask
            )

    def row_values(self, key: int) -> list[int]:
        """The key's cell value in each row (controller readout)."""
        return [
            int(self.table[row, fn.slot(key, cells=self.cols)])
            for row, fn in enumerate(self._fns)
        ]

    def median_estimate(self, key: int) -> int:
        """Median-of-rows readout (the usual unbiased matrix estimator)."""
        return int(np.median(self.row_values(key)))

    def total(self) -> int:
        """Sum of one row (each row sees all traffic)."""
        return int(self.table[0].sum())

    @property
    def memory_bits(self) -> int:
        return self.rows * self.cols * 32

    def clear(self) -> None:
        self.table.fill(0)

    def __repr__(self) -> str:
        return f"HashMatrix(rows={self.rows}, cols={self.cols})"


def matrix_module(
    prefix: str = "mx",
    key_field: str = "meta.flow_id",
    amount_field: str | None = None,
    max_rows: int = 6,
    max_cols: int | None = 65536,
    seed_offset: int = 500,
) -> P4AllModule:
    """Elastic hash-matrix module.

    ``amount_field`` selects what accumulates (None → packet count).
    Readout is control-plane only — the module never folds in the data
    plane, so its iterations are fully independent (the unroll bound
    comes from ALUs/PHV, not a stage chain).
    """
    rows = f"{prefix}_rows"
    cols = f"{prefix}_cols"
    amount = amount_field or "1"
    assumes = [f"{rows} >= 1 && {rows} <= {max_rows}"]
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    declarations = [
        f"register<bit<32>>[{cols}][{rows}] {prefix}_matrix;",
        (
            f"action {prefix}_accumulate()[int i] {{\n"
            f"    meta.{prefix}_idx[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_matrix[i].add(meta.{prefix}_idx[i], {amount});\n"
            f"}}"
        ),
        (
            f"control {prefix}_update(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{ {prefix}_accumulate()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[rows, cols],
        assumes=assumes,
        metadata_fields=[f"bit<32>[{rows}] {prefix}_idx;"],
        declarations=declarations,
        apply_calls=[f"{prefix}_update.apply(meta);"],
        utility_term=f"{rows} * {cols}",
    )


#: Standalone single-structure program (library source shipped as data).
MATRIX_SOURCE = """// Elastic hash-based matrix (library module, standalone build).
symbolic int mx_rows;
symbolic int mx_cols;
assume mx_rows >= 1 && mx_rows <= 6;
assume mx_cols <= 65536;

struct metadata {
    bit<32> flow_id;
    bit<32> pkt_bytes;
    bit<32>[mx_rows] mx_idx;
}

register<bit<32>>[mx_cols][mx_rows] mx_matrix;

action mx_accumulate()[int i] {
    meta.mx_idx[i] = hash(i + 500, meta.flow_id);
    mx_matrix[i].add(meta.mx_idx[i], meta.pkt_bytes);
}

control mx_update(inout metadata meta) {
    apply {
        for (i < mx_rows) { mx_accumulate()[i]; }
    }
}

control Ingress(inout metadata meta) {
    apply {
        mx_update.apply(meta);
    }
}

optimize mx_rows * mx_cols;
"""
