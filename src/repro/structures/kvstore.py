"""Key-value store: reference implementation + elastic P4All module.

The NetCache-style on-switch cache (§3.1): values live in per-stage
register arrays; the control plane installs hot keys; the data plane
probes every row, compares the stored key, and OR-selects the matching
value. Items are deliberately *wide* (a 32-bit key plus ``value_slices``
64-bit value words) — the paper's Figure 12 notes that "the key-value
items are far larger than the sketch items", which is what drives the
memory split between the KVS and the CMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["KeyValueStore", "kv_module", "KV_SOURCE"]


@dataclass
class _Slot:
    key: int
    value: int


class KeyValueStore:
    """Reference multi-row hashed key-value cache.

    ``rows`` register-array rows of ``cols`` slots each; a key may only
    live at slot ``h_r(key)`` of some row ``r`` (exactly where the data
    plane probes). ``insert`` places the key in the first row whose slot
    is free; ``lookup`` scans all rows.
    """

    def __init__(self, rows: int, cols: int, value_slices: int = 2,
                 hash_kind: str = "multiply-shift", seed_offset: int = 100):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.value_slices = value_slices
        self.seed_offset = seed_offset
        family = hash_family(hash_kind)
        self._fns = [family(seed_offset + r) for r in range(rows)]
        self._slots: list[dict[int, _Slot]] = [dict() for _ in range(rows)]

    # -- operations ------------------------------------------------------------
    def slot_of(self, row: int, key: int) -> int:
        return self._fns[row].slot(key, cells=self.cols)

    def lookup(self, key: int) -> int | None:
        """Value for ``key`` or None on miss."""
        for row in range(self.rows):
            slot = self._slots[row].get(self.slot_of(row, key))
            if slot is not None and slot.key == key:
                return slot.value
        return None

    def insert(self, key: int, value: int) -> bool:
        """Install ``key``; False when every candidate slot is taken."""
        if self.lookup(key) is not None:
            self.update(key, value)
            return True
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            if idx not in self._slots[row]:
                self._slots[row][idx] = _Slot(key, value)
                return True
        return False

    def update(self, key: int, value: int) -> bool:
        for row in range(self.rows):
            slot = self._slots[row].get(self.slot_of(row, key))
            if slot is not None and slot.key == key:
                slot.value = value
                return True
        return False

    def occupant(self, row: int, key: int) -> int | None:
        """Key currently holding ``key``'s candidate slot in ``row``."""
        slot = self._slots[row].get(self.slot_of(row, key))
        return slot.key if slot is not None else None

    def replace(self, row: int, key: int, value: int) -> int | None:
        """Overwrite ``key``'s candidate slot in ``row``; returns the
        evicted key (None if the slot was free)."""
        idx = self.slot_of(row, key)
        old = self._slots[row].get(idx)
        self._slots[row][idx] = _Slot(key, value)
        return old.key if old is not None else None

    def evict(self, key: int) -> bool:
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            slot = self._slots[row].get(idx)
            if slot is not None and slot.key == key:
                del self._slots[row][idx]
                return True
        return False

    def keys(self) -> set[int]:
        return {
            slot.key for row in self._slots for slot in row.values()
        }

    @property
    def occupancy(self) -> int:
        return sum(len(row) for row in self._slots)

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    @property
    def item_bits(self) -> int:
        """Bits per item: 32-bit key + 64-bit value slices."""
        return 32 + 64 * self.value_slices

    @property
    def memory_bits(self) -> int:
        return self.capacity * self.item_bits

    def clear(self) -> None:
        for row in self._slots:
            row.clear()

    def __repr__(self) -> str:
        return (
            f"KeyValueStore(rows={self.rows}, cols={self.cols}, "
            f"{self.occupancy}/{self.capacity} slots)"
        )


def kv_module(
    prefix: str = "kv",
    key_field: str = "meta.flow_id",
    value_slices: int = 2,
    max_rows: int | None = None,
    max_cols: int | None = 65536,
    min_total_bits: int | None = None,
    seed_offset: int = 100,
) -> P4AllModule:
    """Elastic key-value store module.

    After the pipeline runs, ``meta.<prefix>_hit`` is 1 on a cache hit and
    ``meta.<prefix>_val`` holds slice 0 of the value. ``min_total_bits``
    emits the paper's Figure-13 style floor
    (``assume kv_rows * kv_cols * item_bits >= ...``).
    """
    rows = f"{prefix}_rows"
    cols = f"{prefix}_cols"
    item_bits = 32 + 64 * value_slices
    assumes = [f"{rows} >= 1"]
    if max_rows is not None:
        assumes.append(f"{rows} <= {max_rows}")
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    if min_total_bits is not None:
        assumes.append(f"{rows} * {cols} * {item_bits} >= {min_total_bits}")

    probe_body = [
        f"    meta.{prefix}_idx[i] = hash(i + {seed_offset}, {key_field});",
        f"    {prefix}_keys[i].read(meta.{prefix}_skey[i], meta.{prefix}_idx[i]);",
    ]
    val_regs = []
    for slice_no in range(value_slices):
        val_regs.append(
            f"register<bit<64>>[{cols}][{rows}] {prefix}_val{slice_no};"
        )
        probe_body.append(
            f"    {prefix}_val{slice_no}[i].read(meta.{prefix}_sval{slice_no}[i], "
            f"meta.{prefix}_idx[i]);"
        )
    declarations = [
        f"register<bit<32>>[{cols}][{rows}] {prefix}_keys;",
        *val_regs,
        "action " + prefix + "_probe()[int i] {\n" + "\n".join(probe_body) + "\n}",
        (
            f"action {prefix}_select()[int i] {{\n"
            f"    meta.{prefix}_hit = meta.{prefix}_hit | "
            f"(meta.{prefix}_skey[i] == {key_field} ? 1 : 0);\n"
            f"    meta.{prefix}_val = meta.{prefix}_val | "
            f"(meta.{prefix}_skey[i] == {key_field} ? "
            f"meta.{prefix}_sval0[i] : 0);\n"
            f"}}"
        ),
        (
            f"control {prefix}_lookup(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{ {prefix}_probe()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
        (
            f"control {prefix}_resolve(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{ {prefix}_select()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    metadata_fields = [
        f"bit<32>[{rows}] {prefix}_idx;",
        f"bit<32>[{rows}] {prefix}_skey;",
        f"bit<1> {prefix}_hit;",
        f"bit<64> {prefix}_val;",
    ]
    for slice_no in range(value_slices):
        metadata_fields.append(f"bit<64>[{rows}] {prefix}_sval{slice_no};")
    return P4AllModule(
        name=prefix,
        symbolics=[rows, cols],
        assumes=assumes,
        metadata_fields=metadata_fields,
        declarations=declarations,
        apply_calls=[
            f"meta.{prefix}_hit = 0;",
            f"meta.{prefix}_val = 0;",
            f"{prefix}_lookup.apply(meta);",
            f"{prefix}_resolve.apply(meta);",
        ],
        utility_term=f"{rows} * {cols}",
    )


#: Standalone single-structure program (library source shipped as data).
KV_SOURCE = """// Elastic key-value store (library module, standalone build).
symbolic int kv_rows;
symbolic int kv_cols;
assume kv_rows >= 1;
assume kv_cols <= 65536;

struct metadata {
    bit<32> flow_id;
    bit<32>[kv_rows] kv_idx;
    bit<32>[kv_rows] kv_skey;
    bit<64>[kv_rows] kv_sval0;
    bit<1> kv_hit;
    bit<64> kv_val;
}

register<bit<32>>[kv_cols][kv_rows] kv_keys;
register<bit<64>>[kv_cols][kv_rows] kv_val0;

action kv_probe()[int i] {
    meta.kv_idx[i] = hash(i + 100, meta.flow_id);
    kv_keys[i].read(meta.kv_skey[i], meta.kv_idx[i]);
    kv_val0[i].read(meta.kv_sval0[i], meta.kv_idx[i]);
}

action kv_select()[int i] {
    meta.kv_hit = meta.kv_hit | (meta.kv_skey[i] == meta.flow_id ? 1 : 0);
    meta.kv_val = meta.kv_val | (meta.kv_skey[i] == meta.flow_id ? meta.kv_sval0[i] : 0);
}

control kv_lookup(inout metadata meta) {
    apply {
        for (i < kv_rows) { kv_probe()[i]; }
    }
}

control kv_resolve(inout metadata meta) {
    apply {
        for (i < kv_rows) { kv_select()[i]; }
    }
}

control Ingress(inout metadata meta) {
    apply {
        meta.kv_hit = 0;
        meta.kv_val = 0;
        kv_lookup.apply(meta);
        kv_resolve.apply(meta);
    }
}

optimize kv_rows * kv_cols;
"""
