"""Bloom filter: reference implementation + elastic P4All module.

Partitioned Bloom filter — one bit array per hash function, the layout
used by FlowRadar/SilkRoad-style P4 code (one register array per stage).
The data-plane module *tests and inserts* in a single pass: each probe
swaps a 1 into the bit cell and reports the previous value, so
``meta.<prefix>_member`` is 1 exactly when the key was already present
(in every partition) before this packet.
"""

from __future__ import annotations

import math

import numpy as np

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["BloomFilter", "bloom_module", "BLOOM_SOURCE"]


class BloomFilter:
    """Reference partitioned Bloom filter over integer keys."""

    def __init__(self, hashes: int, bits_per_partition: int,
                 hash_kind: str = "multiply-shift", seed_offset: int = 0):
        if hashes <= 0 or bits_per_partition <= 0:
            raise ValueError("hashes and bits_per_partition must be positive")
        self.hashes = hashes
        self.bits_per_partition = bits_per_partition
        family = hash_family(hash_kind)
        self._fns = [family(seed_offset + i) for i in range(hashes)]
        self.partitions = np.zeros((hashes, bits_per_partition), dtype=bool)
        self.inserted = 0

    def insert(self, key: int) -> bool:
        """Insert ``key``; returns True when it was (probably) present."""
        present = True
        for i, fn in enumerate(self._fns):
            idx = fn.slot(key, cells=self.bits_per_partition)
            present &= bool(self.partitions[i, idx])
            self.partitions[i, idx] = True
        self.inserted += 1
        return present

    def contains(self, key: int) -> bool:
        """Membership test (no false negatives)."""
        return all(
            self.partitions[i, fn.slot(key, cells=self.bits_per_partition)]
            for i, fn in enumerate(self._fns)
        )

    def clear(self) -> None:
        self.partitions.fill(False)
        self.inserted = 0

    def false_positive_rate(self) -> float:
        """Expected FPR for the current fill level (partitioned formula)."""
        fill = 1.0 - math.exp(-self.inserted / self.bits_per_partition)
        return fill ** self.hashes

    @property
    def memory_bits(self) -> int:
        return self.hashes * self.bits_per_partition

    def __repr__(self) -> str:
        return (
            f"BloomFilter(hashes={self.hashes}, "
            f"bits_per_partition={self.bits_per_partition})"
        )


def bloom_module(
    prefix: str = "bf",
    key_field: str = "meta.flow_id",
    max_hashes: int = 4,
    max_bits: int | None = 262144,
    seed_offset: int = 0,
) -> P4AllModule:
    """Elastic Bloom filter module.

    Elastic in both dimensions: ``<prefix>_hashes`` partitions (more
    hashes → fewer false positives per bit) and ``<prefix>_bits`` cells
    per partition. After the pipeline runs, ``meta.<prefix>_member`` is 1
    iff the key was present before this packet (which also inserted it).
    """
    hashes = f"{prefix}_hashes"
    bits = f"{prefix}_bits"
    assumes = [f"{hashes} >= 1 && {hashes} <= {max_hashes}"]
    if max_bits is not None:
        assumes.append(f"{bits} <= {max_bits}")
    declarations = [
        f"register<bit<1>>[{bits}][{hashes}] {prefix}_filter;",
        (
            f"action {prefix}_probe()[int i] {{\n"
            f"    meta.{prefix}_index[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_filter[i].swap(meta.{prefix}_old[i], "
            f"meta.{prefix}_index[i], 1);\n"
            f"}}"
        ),
        (
            f"action {prefix}_fold()[int i] {{\n"
            f"    meta.{prefix}_member = meta.{prefix}_member & meta.{prefix}_old[i];\n"
            f"}}"
        ),
        (
            f"control {prefix}_insert(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {hashes}) {{ {prefix}_probe()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
        (
            f"control {prefix}_membership(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {hashes}) {{ {prefix}_fold()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[hashes, bits],
        assumes=assumes,
        metadata_fields=[
            f"bit<32>[{hashes}] {prefix}_index;",
            f"bit<1>[{hashes}] {prefix}_old;",
            f"bit<1> {prefix}_member;",
        ],
        declarations=declarations,
        apply_calls=[
            f"meta.{prefix}_member = 1;",
            f"{prefix}_insert.apply(meta);",
            f"{prefix}_membership.apply(meta);",
        ],
        utility_term=f"{hashes} * {bits}",
    )


#: Standalone single-structure program (library source shipped as data).
BLOOM_SOURCE = """// Elastic Bloom filter (library module, standalone build).
symbolic int bf_hashes;
symbolic int bf_bits;
assume bf_hashes >= 1 && bf_hashes <= 4;
assume bf_bits <= 262144;

struct metadata {
    bit<32> flow_id;
    bit<32>[bf_hashes] bf_index;
    bit<1>[bf_hashes] bf_old;
    bit<1> bf_member;
}

register<bit<1>>[bf_bits][bf_hashes] bf_filter;

action bf_probe()[int i] {
    meta.bf_index[i] = hash(i, meta.flow_id);
    bf_filter[i].swap(meta.bf_old[i], meta.bf_index[i], 1);
}

action bf_fold()[int i] {
    meta.bf_member = meta.bf_member & meta.bf_old[i];
}

control bf_insert(inout metadata meta) {
    apply {
        for (i < bf_hashes) { bf_probe()[i]; }
    }
}

control bf_membership(inout metadata meta) {
    apply {
        for (i < bf_hashes) { bf_fold()[i]; }
    }
}

control Ingress(inout metadata meta) {
    apply {
        meta.bf_member = 1;
        bf_insert.apply(meta);
        bf_membership.apply(meta);
    }
}

optimize bf_hashes * bf_bits;
"""
