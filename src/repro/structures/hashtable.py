"""Counting hash table: reference implementation + elastic P4All module.

The multi-row key/counter table used by PRECISION / HashPipe-style heavy
hitter algorithms: each row pairs a key array with a counter array; a
packet probes its hashed slot in every row and increments the counter of
the row whose stored key matches (a predicated stateful update). Entry
installation/replacement is a control-plane decision (PRECISION uses
probabilistic recirculation; the application harness models that).
"""

from __future__ import annotations

import numpy as np

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["CountingHashTable", "hashtable_module", "HASHTABLE_SOURCE"]


class CountingHashTable:
    """Reference multi-row (key, counter) hash table."""

    def __init__(self, rows: int, cols: int, hash_kind: str = "multiply-shift",
                 seed_offset: int = 200):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.seed_offset = seed_offset
        family = hash_family(hash_kind)
        self._fns = [family(seed_offset + r) for r in range(rows)]
        self.keys = np.zeros((rows, cols), dtype=np.uint64)
        self.counts = np.zeros((rows, cols), dtype=np.uint64)

    def slot_of(self, row: int, key: int) -> int:
        return self._fns[row].slot(key, cells=self.cols)

    def increment(self, key: int, amount: int = 1) -> bool:
        """Add to ``key``'s counter if it is tracked; returns tracked?"""
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            if int(self.keys[row, idx]) == key:
                self.counts[row, idx] += np.uint64(amount)
                return True
        return False

    def count(self, key: int) -> int:
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            if int(self.keys[row, idx]) == key:
                return int(self.counts[row, idx])
        return 0

    def install(self, key: int, count: int = 0) -> bool:
        """Place ``key`` in the first row whose slot is empty (key 0)."""
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            if int(self.keys[row, idx]) in (0, key):
                self.keys[row, idx] = np.uint64(key)
                self.counts[row, idx] = np.uint64(count)
                return True
        return False

    def replace_min(self, key: int, count: int = 1) -> int:
        """Evict the smallest-count candidate slot in favor of ``key``.

        Returns the evicted count (PRECISION's recirculation install).
        """
        best_row, best_idx, best_count = 0, 0, None
        for row in range(self.rows):
            idx = self.slot_of(row, key)
            c = int(self.counts[row, idx])
            if best_count is None or c < best_count:
                best_row, best_idx, best_count = row, idx, c
        self.keys[best_row, best_idx] = np.uint64(key)
        self.counts[best_row, best_idx] = np.uint64(count)
        return int(best_count or 0)

    def min_candidate_count(self, key: int) -> int:
        """Smallest counter among the key's candidate slots."""
        return min(
            int(self.counts[row, self.slot_of(row, key)])
            for row in range(self.rows)
        )

    def heavy_keys(self, threshold: int) -> set[int]:
        mask = self.counts >= np.uint64(threshold)
        return {int(k) for k in self.keys[mask] if int(k) != 0}

    def clear(self) -> None:
        self.keys.fill(0)
        self.counts.fill(0)

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    @property
    def memory_bits(self) -> int:
        return self.capacity * (32 + 32)

    def __repr__(self) -> str:
        return f"CountingHashTable(rows={self.rows}, cols={self.cols})"


def hashtable_module(
    prefix: str = "ht",
    key_field: str = "meta.flow_id",
    max_rows: int | None = None,
    max_cols: int | None = 65536,
    seed_offset: int = 200,
) -> P4AllModule:
    """Elastic counting hash table module.

    After the pipeline runs, ``meta.<prefix>_matched`` is 1 when some row
    tracked the key (and its counter was incremented), and
    ``meta.<prefix>_mincnt`` holds the smallest candidate counter (used by
    PRECISION's eviction policy).
    """
    rows = f"{prefix}_rows"
    cols = f"{prefix}_cols"
    assumes = [f"{rows} >= 1"]
    if max_rows is not None:
        assumes.append(f"{rows} <= {max_rows}")
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    declarations = [
        f"register<bit<32>>[{cols}][{rows}] {prefix}_keys;",
        f"register<bit<32>>[{cols}][{rows}] {prefix}_counts;",
        (
            f"action {prefix}_probe()[int i] {{\n"
            f"    meta.{prefix}_idx[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_keys[i].read(meta.{prefix}_skey[i], meta.{prefix}_idx[i]);\n"
            f"    {prefix}_counts[i].cond_add_read(meta.{prefix}_cnt[i], "
            f"meta.{prefix}_idx[i], meta.{prefix}_skey[i] == {key_field}, 1);\n"
            f"}}"
        ),
        (
            f"action {prefix}_match()[int i] {{\n"
            f"    meta.{prefix}_matched = meta.{prefix}_matched | "
            f"(meta.{prefix}_skey[i] == {key_field} ? 1 : 0);\n"
            f"}}"
        ),
        (
            f"action {prefix}_track_min()[int i] {{\n"
            f"    meta.{prefix}_mincnt = meta.{prefix}_cnt[i];\n"
            f"}}"
        ),
        (
            f"control {prefix}_update(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{ {prefix}_probe()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
        (
            f"control {prefix}_aggregate(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {rows}) {{\n"
            f"            {prefix}_match()[i];\n"
            f"            if (meta.{prefix}_cnt[i] < meta.{prefix}_mincnt) "
            f"{{ {prefix}_track_min()[i]; }}\n"
            f"        }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[rows, cols],
        assumes=assumes,
        metadata_fields=[
            f"bit<32>[{rows}] {prefix}_idx;",
            f"bit<32>[{rows}] {prefix}_skey;",
            f"bit<32>[{rows}] {prefix}_cnt;",
            f"bit<1> {prefix}_matched;",
            f"bit<32> {prefix}_mincnt;",
        ],
        declarations=declarations,
        apply_calls=[
            f"meta.{prefix}_matched = 0;",
            f"meta.{prefix}_mincnt = {(1 << 32) - 1};",
            f"{prefix}_update.apply(meta);",
            f"{prefix}_aggregate.apply(meta);",
        ],
        utility_term=f"{rows} * {cols}",
    )


#: Standalone single-structure program (library source shipped as data).
HASHTABLE_SOURCE = """// Elastic counting hash table (library module, standalone build).
symbolic int ht_rows;
symbolic int ht_cols;
assume ht_rows >= 1;
assume ht_cols <= 65536;

struct metadata {
    bit<32> flow_id;
    bit<32>[ht_rows] ht_idx;
    bit<32>[ht_rows] ht_skey;
    bit<32>[ht_rows] ht_cnt;
    bit<1> ht_matched;
    bit<32> ht_mincnt;
}

register<bit<32>>[ht_cols][ht_rows] ht_keys;
register<bit<32>>[ht_cols][ht_rows] ht_counts;

action ht_probe()[int i] {
    meta.ht_idx[i] = hash(i + 200, meta.flow_id);
    ht_keys[i].read(meta.ht_skey[i], meta.ht_idx[i]);
    ht_counts[i].cond_add_read(meta.ht_cnt[i], meta.ht_idx[i], meta.ht_skey[i] == meta.flow_id, 1);
}

action ht_match()[int i] {
    meta.ht_matched = meta.ht_matched | (meta.ht_skey[i] == meta.flow_id ? 1 : 0);
}

action ht_track_min()[int i] {
    meta.ht_mincnt = meta.ht_cnt[i];
}

control ht_update(inout metadata meta) {
    apply {
        for (i < ht_rows) { ht_probe()[i]; }
    }
}

control ht_aggregate(inout metadata meta) {
    apply {
        for (i < ht_rows) {
            ht_match()[i];
            if (meta.ht_cnt[i] < meta.ht_mincnt) { ht_track_min()[i]; }
        }
    }
}

control Ingress(inout metadata meta) {
    apply {
        meta.ht_matched = 0;
        meta.ht_mincnt = 4294967295;
        ht_update.apply(meta);
        ht_aggregate.apply(meta);
    }
}

optimize ht_rows * ht_cols;
"""
