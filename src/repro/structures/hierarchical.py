"""Hierarchical (multi-level) sketch: reference + elastic P4All module.

SketchLearn's data structure (Figure 1's "hierarchical sketch"): one
counter level per bit of the flow identifier plus a level-0 total. Level
``k`` counts the packets whose key has bit ``k`` set; the per-level
ratios let the controller extract large flows and their identifiers. The
number of levels is fixed by the key width — only the per-level column
count is elastic, which is why SketchLearn's ILP is tiny in Figure 11.
"""

from __future__ import annotations

import numpy as np

from ..pisa.hashing import hash_family
from .module import P4AllModule

__all__ = ["HierarchicalSketch", "hierarchical_module", "SKETCHLEARN_SOURCE"]


class HierarchicalSketch:
    """Reference multi-level sketch over ``key_bits``-bit keys."""

    def __init__(self, key_bits: int, cols: int,
                 hash_kind: str = "multiply-shift", seed_offset: int = 300):
        if key_bits <= 0 or cols <= 0:
            raise ValueError("key_bits and cols must be positive")
        self.key_bits = key_bits
        self.cols = cols
        family = hash_family(hash_kind)
        # One hash per level; level 0 is the total-count level.
        self._fns = [family(seed_offset + k) for k in range(key_bits + 1)]
        self.levels = np.zeros((key_bits + 1, cols), dtype=np.uint64)
        self.packets = 0

    def update(self, key: int) -> None:
        """Count ``key`` at level 0 and at every set-bit level."""
        idx0 = self._fns[0].slot(key, cells=self.cols)
        self.levels[0, idx0] += np.uint64(1)
        for bit in range(self.key_bits):
            if (key >> bit) & 1:
                idx = self._fns[bit + 1].slot(key, cells=self.cols)
                self.levels[bit + 1, idx] += np.uint64(1)
        self.packets += 1

    def bit_ratio(self, key: int, bit: int) -> float:
        """Fraction of the key's slot traffic whose bit ``bit`` is set."""
        total = int(self.levels[0, self._fns[0].slot(key, cells=self.cols)])
        if total == 0:
            return 0.0
        ones = int(self.levels[bit + 1, self._fns[bit + 1].slot(key, cells=self.cols)])
        return ones / total

    def infer_key_bits(self, key: int, lo: float = 0.3, hi: float = 0.7):
        """SketchLearn-style bit inference for a large flow in ``key``'s
        slots: returns per-bit 0/1/None (None = ambiguous)."""
        out = []
        for bit in range(self.key_bits):
            ratio = self.bit_ratio(key, bit)
            if ratio >= hi:
                out.append(1)
            elif ratio <= lo:
                out.append(0)
            else:
                out.append(None)
        return out

    @property
    def memory_bits(self) -> int:
        return (self.key_bits + 1) * self.cols * 32

    def clear(self) -> None:
        self.levels.fill(0)
        self.packets = 0

    def __repr__(self) -> str:
        return f"HierarchicalSketch(levels={self.key_bits + 1}, cols={self.cols})"


def hierarchical_module(
    prefix: str = "sl",
    key_field: str = "meta.flow_id",
    key_bits: int = 8,
    max_cols: int | None = 65536,
    seed_offset: int = 300,
) -> P4AllModule:
    """Elastic hierarchical sketch module.

    ``key_bits + 1`` levels (constant — unrolled statically), each a
    register array of the shared elastic width ``<prefix>_cols``.
    """
    cols = f"{prefix}_cols"
    levels = key_bits + 1
    assumes = []
    if max_cols is not None:
        assumes.append(f"{cols} <= {max_cols}")
    declarations = [
        f"const int {prefix}_levels = {levels};",
        f"register<bit<32>>[{cols}][{prefix}_levels] {prefix}_lvl;",
        (
            f"action {prefix}_count()[int i] {{\n"
            f"    meta.{prefix}_idx[i] = hash(i + {seed_offset}, {key_field});\n"
            f"    {prefix}_lvl[i].cond_add(meta.{prefix}_idx[i], "
            f"(i == 0) || ((({key_field} >> (i - 1)) & 1) == 1), 1);\n"
            f"}}"
        ),
        (
            f"control {prefix}_levels_update(inout metadata meta) {{\n"
            f"    apply {{\n"
            f"        for (i < {prefix}_levels) {{ {prefix}_count()[i]; }}\n"
            f"    }}\n"
            f"}}"
        ),
    ]
    return P4AllModule(
        name=prefix,
        symbolics=[cols],
        assumes=assumes,
        metadata_fields=[
            f"bit<32>[{prefix}_levels] {prefix}_idx;",
        ],
        declarations=declarations,
        apply_calls=[f"{prefix}_levels_update.apply(meta);"],
        utility_term=f"{prefix}_levels * {cols}",
    )


#: Standalone SketchLearn-style program (library source shipped as data).
SKETCHLEARN_SOURCE = """// Elastic hierarchical sketch (SketchLearn-style levels).
symbolic int sl_cols;
assume sl_cols <= 65536;

const int sl_levels = 9;

struct metadata {
    bit<32> flow_id;
    bit<32>[sl_levels] sl_idx;
}

register<bit<32>>[sl_cols][sl_levels] sl_lvl;

action sl_count()[int i] {
    meta.sl_idx[i] = hash(i + 300, meta.flow_id);
    sl_lvl[i].cond_add(meta.sl_idx[i], (i == 0) || (((meta.flow_id >> (i - 1)) & 1) == 1), 1);
}

control sl_levels_update(inout metadata meta) {
    apply {
        for (i < sl_levels) { sl_count()[i]; }
    }
}

control Ingress(inout metadata meta) {
    apply {
        sl_levels_update.apply(meta);
    }
}

optimize sl_levels * sl_cols;
"""
