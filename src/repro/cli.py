"""Command-line interface: the ``p4all`` compiler driver.

Subcommands::

    p4all compile prog.p4all --target tofino [-o out.p4] [--report]
    p4all compile a.p4all b.p4all --weights a=2,b=1   # link modules
                                                      # into one layout
    p4all verify  a.p4all b.p4all [--netcache]   # cross-tenant flow
                                                 # matrix + witnesses
    p4all bounds  prog.p4all --target tofino     # unroll bounds only
    p4all graph   prog.p4all                     # dependency graph (DOT)
    p4all run     [--packets N] [--cut-at N] [--engine E] [--profile]
    p4all fabric  [--switches N] [--migrate-at N] [--cut-at N]
                                                 # multi-switch fleet
    p4all targets                                # list target specs
    p4all library [name]                         # dump library module source
    p4all obs trace.json [--metrics out.prom] [--flight dump.jsonl]
                                                 # summarize observability
                                                 # artifacts (--format json
                                                 # for machine-readable)
    p4all top                                    # live fleet dashboard over
                                                 # an embedded scenario

``compile`` and ``run`` accept ``--trace PATH`` (Chrome trace-event
JSON of the command's span timeline — load it in Perfetto or
``chrome://tracing``), ``--metrics PATH`` (Prometheus textfile of
the accumulated counters/gauges/histograms), and ``--flight PATH``
(flight-recorder JSONL: the last few thousand events, dumped at exit
or on crash). ``p4all obs`` renders any of the artifacts as a terminal
summary. See docs/OBSERVABILITY.md.

Every program-compiling subcommand accepts the same solver flags:
``--backend`` (``auto``/``scipy``/``bb``/``greedy``) and
``--time-limit`` (seconds; expiry degrades structuredly instead of
failing opaquely).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import build_ir, compute_upper_bounds
from .core import CompileOptions, compile_file, layout_report, stats_report, summary_line
from .core.errors import CompileError
from .lang import P4AllError, check_program, parse_program
from .pisa.resources import TARGETS, get_target


def _add_target_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target", default="tofino",
        help=f"target specification name ({', '.join(sorted(TARGETS))})",
    )
    parser.add_argument(
        "--target-file", default=None,
        help="JSON target specification (overrides --target)",
    )
    parser.add_argument(
        "--stages", type=int, default=None,
        help="override the target's stage count",
    )
    parser.add_argument(
        "--memory", type=int, default=None,
        help="override per-stage register memory (bits)",
    )


def _add_solver_args(parser: argparse.ArgumentParser) -> None:
    """Uniform layout-solver flags, shared by every subcommand that can
    compile a program."""
    parser.add_argument(
        "--backend", default="auto",
        choices=["auto", "scipy", "bb", "greedy"],
        help="layout backend: auto (prefer HiGHS), scipy, bb, or the "
             "greedy first-fit heuristic (default: auto)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="ILP solver time limit in seconds; on expiry the best "
             "incumbent is used, or a structured timeout is raised "
             "(default: no limit)",
    )


def _compile_options(args) -> "CompileOptions":
    return CompileOptions(
        entry=getattr(args, "entry", "Ingress"),
        backend=args.backend,
        time_limit=args.time_limit,
    )


def _resolve_target(args):
    import dataclasses

    if getattr(args, "target_file", None):
        from .pisa.targetspec import load_target

        target = load_target(args.target_file)
    else:
        target = get_target(args.target)
    overrides = {}
    if args.stages is not None:
        overrides["stages"] = args.stages
    if args.memory is not None:
        overrides["memory_bits_per_stage"] = args.memory
    if overrides:
        target = dataclasses.replace(target, **overrides)
    return target


def _parse_name_values(spec: str, flag: str) -> dict[str, float]:
    """Parse a ``name=value,name=value`` flag into a dict."""
    from .link import LinkError

    values: dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, raw = item.partition("=")
        name = name.strip()
        try:
            if not sep or not name:
                raise ValueError
            values[name] = float(raw.strip())
        except ValueError:
            raise LinkError(
                f"malformed {flag} entry {item!r}: expected name=value"
            ) from None
    return values


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the compile and run subcommands."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record this command as Chrome trace-event JSON at PATH "
             "(open in Perfetto or chrome://tracing; summarize with "
             "'p4all obs PATH')",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the accumulated metrics as a Prometheus textfile "
             "to PATH",
    )
    parser.add_argument(
        "--flight", default=None, metavar="PATH",
        help="dump the flight-recorder ring (recent spans, batch notes, "
             "telemetry, SLO violations) as JSONL to PATH at exit — or "
             "at the crash point if the command dies (summarize with "
             "'p4all obs --flight PATH')",
    )


def _with_obs(args, body) -> int:
    """Run a command body under the observability exporter.

    The artifacts are written even when ``body`` raises, so a failed
    compile still leaves its partial timeline behind for diagnosis.
    """
    from .obs import observed

    with observed(getattr(args, "trace", None), getattr(args, "metrics", None),
                  flight_path=getattr(args, "flight", None)):
        result = body(args)
    if getattr(args, "trace", None):
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if getattr(args, "metrics", None):
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if getattr(args, "flight", None):
        print(f"wrote flight recording to {args.flight}", file=sys.stderr)
    return result


def _cmd_compile(args) -> int:
    return _with_obs(args, _compile_body)


def _compile_body(args) -> int:
    from .profiling import profiled

    target = _resolve_target(args)
    weights = _parse_name_values(args.weights, "--weights") if args.weights else None
    floors = _parse_name_values(args.floors, "--floors") if args.floors else None
    multi = len(args.programs) > 1 or weights is not None or floors is not None
    with profiled(args.profile):
        if multi:
            from .core import compile_linked
            from .link import link_files

            linked = link_files(
                args.programs, weights=weights, floors=floors,
                entry=args.entry,
            )
            compiled = compile_linked(
                linked, target, options=_compile_options(args)
            )
        else:
            compiled = compile_file(
                args.programs[0], target, options=_compile_options(args)
            )
    if args.profile:
        print(f"wrote profile to {args.profile}", file=sys.stderr)
    if args.output:
        Path(args.output).write_text(compiled.p4_source)
        print(f"wrote {args.output}")
    else:
        print(compiled.p4_source)
    print(summary_line(compiled), file=sys.stderr)
    if compiled.namespace is not None:
        from .core import module_report

        print(module_report(compiled), file=sys.stderr)
    if args.stats:
        print(stats_report(compiled), file=sys.stderr)
    if args.report:
        print(layout_report(compiled), file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    return _with_obs(args, _verify_body)


def _verify_body(args) -> int:
    from .core import compile_linked
    from .link import link_files

    target = _resolve_target(args)
    weights = _parse_name_values(args.weights, "--weights") if args.weights else None
    floors = _parse_name_values(args.floors, "--floors") if args.floors else None
    if args.netcache:
        from .apps import netcache_linked

        linked = netcache_linked()
    elif args.programs:
        # Link permissively: the point of `verify` is to *report* every
        # cross-module flow, so linking must not abort on the first one.
        linked = link_files(
            args.programs, weights=weights, floors=floors,
            entry=args.entry, allow_cross_module_state=True,
        )
    else:
        print("error: give .p4all programs or --netcache", file=sys.stderr)
        return 2
    compiled = compile_linked(linked, target, options=_compile_options(args))
    result = compiled.verify
    modules = result.modules if result is not None else []
    print(f"verified {len(modules)} modules "
          f"({', '.join(modules) or 'none'}) on {target.name}")
    if result is None or result.clean:
        for mod in modules:
            print(f"  {mod}: isolated (no foreign state reaches it)")
        print("isolation verified: no cross-module state flows")
        return 0
    matrix = result.flow_matrix()
    print(f"cross-module flows ({len(result.flows)}):")
    for (source, sink), count in sorted(matrix.items()):
        print(f"  {source} -> {sink}: {count} flow(s)")
    for flow in result.flows:
        print(f"    {flow.sink_kind} '{flow.sink}' of '{flow.sink_module}' "
              f"tainted by '{flow.source}' "
              f"(witness: {flow.witness_text()})")
    for mod in modules:
        influencers = sorted(result.influencers(mod))
        if influencers:
            print(f"  {mod}: influenced by {', '.join(influencers)}")
    if args.allow_cross_module_state:
        print("flows allowed by --allow-cross-module-state", file=sys.stderr)
        return 0
    return 1


def _cmd_bounds(args) -> int:
    target = _resolve_target(args)
    source = Path(args.program).read_text()
    info = check_program(parse_program(source, args.program))
    ir = build_ir(info, args.entry)
    bounds = compute_upper_bounds(ir, target)
    for sym, result in bounds.results.items():
        print(
            f"{sym}: bound {result.bound} "
            f"(criterion: {result.criterion}, path lengths {result.path_lengths})"
        )
    return 0


def _cmd_graph(args) -> int:
    from .analysis import build_dependency_graph, graph_to_dot, instantiate

    target = _resolve_target(args)
    source = Path(args.program).read_text()
    info = check_program(parse_program(source, args.program))
    ir = build_ir(info, args.entry)
    counts = compute_upper_bounds(ir, target).as_counts()
    if args.unroll is not None:
        counts = {sym: args.unroll for sym in counts}
    graph = build_dependency_graph(instantiate(ir, counts))
    print(graph_to_dot(graph, title=Path(args.program).stem))
    return 0


def _apply_shard_mode(args) -> None:
    """Export ``--shard-mode`` where the sharded front end reads it.

    The mode travels by environment variable rather than config
    threading because every ``process_many`` call site — runtime,
    fabric switches, eval harness — consults ``REPRO_PISA_SHARD_MODE``
    at batch time.
    """
    import os

    if getattr(args, "shard_mode", None):
        os.environ["REPRO_PISA_SHARD_MODE"] = args.shard_mode


def _cmd_run(args) -> int:
    return _with_obs(args, _run_body)


def _run_body(args) -> int:
    import dataclasses
    import json

    from .runtime import ElasticRuntime, ReconfigPlanner, RuntimeConfig, TelemetryBus
    from .workloads.churn import ChurningZipf

    _apply_shard_mode(args)
    target = _resolve_target(args)
    telemetry = TelemetryBus(sink=args.events)
    planner = ReconfigPlanner(
        options=_compile_options(args),
        telemetry=telemetry,
        max_retries=args.max_retries,
        race=args.race,
    )
    config = RuntimeConfig(
        window_packets=args.window,
        hot_threshold=args.hot_threshold,
        migrate_state=not args.no_migrate,
        engine=args.engine,
        race=args.race,
        serve_batch=args.serve_batch,
        workers=args.workers,
    )
    print(f"compiling NetCache for {target.describe()}", file=sys.stderr)
    runtime = ElasticRuntime(
        target, config=config, telemetry=telemetry, planner=planner
    )
    stream = ChurningZipf(
        args.universe,
        alpha=args.alpha,
        phase_packets=args.phase_packets,
        churn=args.churn,
        hot_ranks=args.hot_ranks,
        seed=args.seed,
    )
    if not args.no_cut:
        cut_at = args.cut_at if args.cut_at is not None else args.packets // 2
        cut_bits = (args.cut_memory if args.cut_memory is not None
                    else target.memory_bits_per_stage // 2)
        runtime.schedule_target_change(
            cut_at, dataclasses.replace(target, memory_bits_per_stage=cut_bits)
        )
        print(f"scheduled memory cut to {cut_bits} bits/stage at packet "
              f"{cut_at}", file=sys.stderr)

    from .profiling import profiled

    with profiled(args.profile):
        report = runtime.run(stream, packets=args.packets)
    if args.profile:
        print(f"wrote profile to {args.profile}", file=sys.stderr)
    print(report.format())
    telemetry.close()
    fallbacks = telemetry.events_of("ilp_fallback")
    if fallbacks:
        print(f"  ILP->greedy fallbacks: {len(fallbacks)}")
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_dict(), indent=2))
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_fabric(args) -> int:
    return _with_obs(args, _fabric_body)


def _fabric_body(args) -> int:
    import dataclasses
    import json

    from .fabric import FabricTopology, FleetConfig, FleetController
    from .runtime import TelemetryBus
    from .workloads import ZipfGenerator

    _apply_shard_mode(args)
    target = _resolve_target(args)
    if args.topology == "leaf-spine":
        fabric = FabricTopology.leaf_spine(
            leaves=args.switches, spines=args.spines, target=target,
            standby=args.standby,
        )
    else:
        fabric = FabricTopology.flat(args.switches, target,
                                     standby=args.standby)
    print(fabric.describe(), file=sys.stderr)
    telemetry = TelemetryBus(sink=args.events)
    config = FleetConfig(
        window_packets=args.window,
        vnodes=args.vnodes,
        hot_threshold=args.hot_threshold,
        skew_threshold=args.skew_threshold,
        max_move_fraction=args.max_move,
        engine=args.engine,
        parallel=args.parallel,
        serve_batch=args.serve_batch,
        workers=args.workers,
    )
    controller = FleetController(
        fabric, options=_compile_options(args), config=config,
        telemetry=telemetry,
    )
    if args.cut_at is not None:
        cut_switch = args.cut_switch or fabric.serving()[0]
        cut_bits = (args.cut_memory if args.cut_memory is not None
                    else target.memory_bits_per_stage // 2)
        controller.schedule_cut(
            args.cut_at,
            cut_switch,
            dataclasses.replace(target, memory_bits_per_stage=cut_bits),
        )
        print(f"scheduled memory cut on {cut_switch} to {cut_bits} "
              f"bits/stage at packet {args.cut_at}", file=sys.stderr)
    if args.migrate_at is not None:
        migrate_to = args.migrate_to or next(iter(fabric.standby()), None)
        if migrate_to is None:
            print("error: --migrate-at needs --migrate-to or a standby "
                  "switch (--standby N)", file=sys.stderr)
            return 2
        controller.schedule_migration(args.migrate_at, args.migrate_src,
                                      migrate_to)
        print(f"scheduled migration {args.migrate_src} -> "
              f"{migrate_to} at packet {args.migrate_at}",
              file=sys.stderr)
    print(f"compiling NetCache fleet for {target.describe()}",
          file=sys.stderr)
    stream = ZipfGenerator(args.universe, alpha=args.alpha, seed=args.seed)
    with controller:
        report = controller.run(stream, packets=args.packets)
    print(report.format())
    telemetry.close()
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_dict(), indent=2))
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_obs(args) -> int:
    import json

    from .obs.summary import (
        flight_summary_data,
        prometheus_summary_data,
        summarize_flight_file,
        summarize_prometheus_file,
        summarize_trace_file,
        trace_summary_data,
    )

    if (args.trace_file is None and args.metrics_file is None
            and args.flight_file is None):
        print("error: nothing to summarize — give a trace file, "
              "--metrics FILE, and/or --flight FILE", file=sys.stderr)
        return 2
    if args.format == "json":
        out: dict = {}
        if args.trace_file is not None:
            out["trace"] = trace_summary_data(
                json.loads(Path(args.trace_file).read_text()), top=args.top)
        if args.metrics_file is not None:
            out["metrics"] = prometheus_summary_data(
                Path(args.metrics_file).read_text())
        if args.flight_file is not None:
            out["flight"] = flight_summary_data(args.flight_file)
        print(json.dumps(out, indent=2, sort_keys=True, default=str))
        return 0
    sections = []
    if args.trace_file is not None:
        sections.append(summarize_trace_file(
            args.trace_file, tree_depth=args.depth, top=args.top))
    if args.metrics_file is not None:
        sections.append(summarize_prometheus_file(args.metrics_file))
    if args.flight_file is not None:
        sections.append(summarize_flight_file(args.flight_file))
    print("\n\n".join(sections))
    return 0


def _cmd_top(args) -> int:
    from .obs.top import run_top

    return run_top(
        mode="run" if args.run else "fabric",
        packets=args.packets,
        switches=args.switches,
        window=args.window,
        universe=args.universe,
        alpha=args.alpha,
        seed=args.seed,
        engine=args.engine,
        cut=not args.no_cut,
        clear=False if args.no_clear else None,
        target=_resolve_target(args),
        options=_compile_options(args),
    )


def _cmd_targets(_args) -> int:
    for name in sorted(TARGETS):
        print(get_target(name).describe())
    return 0


def _cmd_library(args) -> int:
    from .structures import LIBRARY_SOURCES

    if not args.name:
        for name in sorted(LIBRARY_SOURCES):
            print(name)
        return 0
    try:
        print(LIBRARY_SOURCES[args.name])
    except KeyError:
        print(f"unknown module {args.name!r}; options: "
              f"{', '.join(sorted(LIBRARY_SOURCES))}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p4all",
        description="P4All elastic switch-program compiler (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile",
        help="compile one .p4all program — or link several into a joint "
             "layout — and emit P4",
    )
    p_compile.add_argument(
        "programs", nargs="+", metavar="program",
        help="path(s) to .p4all sources; two or more are linked into one "
             "program with per-module utility weighting and attribution",
    )
    p_compile.add_argument(
        "--weights", default=None, metavar="NAME=W,...",
        help="per-module utility weights for linked compiles, e.g. "
             "cms=2,kv=1 (module names are the file stems)",
    )
    p_compile.add_argument(
        "--floors", default=None, metavar="NAME=F,...",
        help="per-module minimum weighted utility for linked compiles "
             "(added as ILP constraints)",
    )
    p_compile.add_argument("-o", "--output", help="output .p4 path (default: stdout)")
    p_compile.add_argument("--entry", default="Ingress", help="ingress control name")
    p_compile.add_argument("--report", action="store_true",
                           help="print the per-stage layout report")
    p_compile.add_argument("--stats", action="store_true",
                           help="print per-phase wall times (parse / IR / "
                                "bounds / ILP build / solve / codegen)")
    p_compile.add_argument("--profile", nargs="?",
                           const="p4all_compile_profile.txt",
                           default=None, metavar="PATH",
                           help="profile the compile with cProfile and write "
                                "sorted cumulative stats to PATH "
                                "(default: p4all_compile_profile.txt)")
    _add_target_arg(p_compile)
    _add_solver_args(p_compile)
    _add_obs_args(p_compile)
    p_compile.set_defaults(func=_cmd_compile)

    p_verify = sub.add_parser(
        "verify",
        help="link modules and print the cross-tenant state-flow matrix "
             "with witness paths; exits 1 on any cross-module flow",
    )
    p_verify.add_argument(
        "programs", nargs="*", metavar="program",
        help="path(s) to .p4all sources to link and verify",
    )
    p_verify.add_argument(
        "--netcache", action="store_true",
        help="verify the built-in NetCache module pair instead of files",
    )
    p_verify.add_argument(
        "--weights", default=None, metavar="NAME=W,...",
        help="per-module utility weights, e.g. cms=2,kv=1",
    )
    p_verify.add_argument(
        "--floors", default=None, metavar="NAME=F,...",
        help="per-module minimum weighted utility (ILP constraints)",
    )
    p_verify.add_argument(
        "--allow-cross-module-state", action="store_true",
        help="report flows but exit 0 (the linked program sanctions "
             "cross-module state sharing)",
    )
    p_verify.add_argument("--entry", default="Ingress",
                          help="ingress control name")
    _add_target_arg(p_verify)
    _add_solver_args(p_verify)
    _add_obs_args(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_bounds = sub.add_parser("bounds", help="show loop-unrolling upper bounds")
    p_bounds.add_argument("program")
    p_bounds.add_argument("--entry", default="Ingress")
    _add_target_arg(p_bounds)
    _add_solver_args(p_bounds)
    p_bounds.set_defaults(func=_cmd_bounds)

    p_graph = sub.add_parser(
        "graph", help="emit the dependency graph (DOT) at the unroll bound"
    )
    p_graph.add_argument("program")
    p_graph.add_argument("--entry", default="Ingress")
    p_graph.add_argument("--unroll", type=int, default=None,
                         help="override the iteration count for all loops")
    _add_target_arg(p_graph)
    _add_solver_args(p_graph)
    p_graph.set_defaults(func=_cmd_graph)

    p_run = sub.add_parser(
        "run",
        help="drive the elastic runtime: NetCache under a churning Zipf "
             "stream with a mid-run memory cut, online recompile + state "
             "migration + hot swap",
    )
    p_run.add_argument("--packets", type=int, default=16_000,
                       help="total packets to process (default: 16000)")
    p_run.add_argument("--window", type=int, default=500,
                       help="monitoring window in packets (default: 500)")
    p_run.add_argument("--universe", type=int, default=2000,
                       help="key universe size (default: 2000)")
    p_run.add_argument("--alpha", type=float, default=1.25,
                       help="Zipf skew (default: 1.25)")
    p_run.add_argument("--churn", type=float, default=0.2,
                       help="hot-set fraction rotated per phase (default: 0.2)")
    p_run.add_argument("--phase-packets", type=int, default=4000,
                       help="packets per churn phase (default: 4000)")
    p_run.add_argument("--hot-ranks", type=int, default=200,
                       help="hot-set size subject to churn (default: 200)")
    p_run.add_argument("--seed", type=int, default=42,
                       help="workload seed (default: 42)")
    p_run.add_argument("--hot-threshold", type=int, default=4,
                       help="sketch estimate that promotes a key (default: 4)")
    p_run.add_argument("--cut-at", type=int, default=None,
                       help="packet index of the memory cut "
                            "(default: packets/2)")
    p_run.add_argument("--cut-memory", type=int, default=None, metavar="BITS",
                       help="per-stage memory after the cut "
                            "(default: half the target's)")
    p_run.add_argument("--no-cut", action="store_true",
                       help="run without the scheduled memory cut")
    p_run.add_argument("--no-migrate", action="store_true",
                       help="swap without migrating register state "
                            "(cold-start comparison)")
    p_run.add_argument("--max-retries", type=int, default=1,
                       help="ILP retries (with backoff) before the greedy "
                            "fallback (default: 1)")
    p_run.add_argument("--race", action="store_true",
                       help="race the ILP and the greedy layout per "
                            "reconfiguration instead of the "
                            "retry-then-fallback ladder")
    p_run.add_argument("--events", default=None, metavar="PATH",
                       help="stream telemetry events to a JSONL file")
    p_run.add_argument("--json", default=None, metavar="PATH",
                       help="write the run report as JSON")
    p_run.add_argument("--engine", default=None,
                       choices=["compiled", "vector", "interp"],
                       help="pipeline execution engine: the compiled plan "
                            "engine, the columnar whole-batch vector "
                            "engine, or the reference tree-walking "
                            "interpreter (default: compiled, or "
                            "REPRO_PISA_ENGINE)")
    p_run.add_argument("--serve-batch", type=int, default=None, metavar="N",
                       help="serve traces in sub-batches of N packets "
                            "through the batched fast path instead of "
                            "per-packet streaming (0 disables; pair with "
                            "--engine vector; default: "
                            "REPRO_PISA_SERVE_BATCH, or 0)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="flow-sharded worker processes for batched "
                            "serving (requires --serve-batch; default: "
                            "REPRO_PISA_WORKERS, or 1)")
    p_run.add_argument("--shard-mode", default=None,
                       choices=["auto", "pool", "fork", "inline"],
                       help="multiprocess strategy when --workers > 1: "
                            "persistent worker pool, fork-per-batch, or "
                            "single-process inline (default: auto, or "
                            "REPRO_PISA_SHARD_MODE)")
    p_run.add_argument("--profile", nargs="?", const="p4all_run_profile.txt",
                       default=None, metavar="PATH",
                       help="profile the run with cProfile and write sorted "
                            "cumulative stats to PATH "
                            "(default: p4all_run_profile.txt)")
    _add_target_arg(p_run)
    _add_solver_args(p_run)
    _add_obs_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_fabric = sub.add_parser(
        "fabric",
        help="drive a multi-switch fabric: NetCache sharded over a "
             "consistent-hash ring of PISA switches, with optional "
             "mid-run per-switch memory cuts and live app migration",
    )
    p_fabric.add_argument("--switches", type=int, default=4,
                          help="serving switches (default: 4)")
    p_fabric.add_argument("--standby", type=int, default=0,
                          help="warm standby switches (default: 0)")
    p_fabric.add_argument("--topology", default="flat",
                          choices=["flat", "leaf-spine"],
                          help="fabric shape (default: flat, behind one "
                               "load balancer)")
    p_fabric.add_argument("--spines", type=int, default=2,
                          help="spine switches for --topology leaf-spine "
                               "(default: 2)")
    p_fabric.add_argument("--packets", type=int, default=16_000,
                          help="total packets to shard (default: 16000)")
    p_fabric.add_argument("--window", type=int, default=2000,
                          help="sharding window in packets (default: 2000)")
    p_fabric.add_argument("--universe", type=int, default=10_000,
                          help="key universe size (default: 10000)")
    p_fabric.add_argument("--alpha", type=float, default=0.9,
                          help="Zipf skew (default: 0.9)")
    p_fabric.add_argument("--seed", type=int, default=42,
                          help="workload seed (default: 42)")
    p_fabric.add_argument("--vnodes", type=int, default=64,
                          help="virtual nodes per switch on the hash ring "
                               "(default: 64)")
    p_fabric.add_argument("--hot-threshold", type=int, default=4,
                          help="sketch estimate that promotes a key "
                               "(default: 4)")
    p_fabric.add_argument("--skew-threshold", type=float, default=0.0,
                          help="max/mean window-share ratio that triggers "
                               "an arc rebalance (0 disables; default: 0)")
    p_fabric.add_argument("--max-move", type=float, default=0.2,
                          help="moved-keyspace bound per rebalance "
                               "(default: 0.2)")
    p_fabric.add_argument("--cut-at", type=int, default=None,
                          help="packet index of a per-switch memory cut")
    p_fabric.add_argument("--cut-switch", default=None,
                          help="switch to cut (default: first serving)")
    p_fabric.add_argument("--cut-memory", type=int, default=None,
                          metavar="BITS",
                          help="per-stage memory after the cut "
                               "(default: half the target's)")
    p_fabric.add_argument("--migrate-at", type=int, default=None,
                          help="packet index of a live app migration")
    p_fabric.add_argument("--migrate-src", default="hottest",
                          help="switch to drain, or 'hottest' "
                               "(default: hottest)")
    p_fabric.add_argument("--migrate-to", default=None,
                          help="destination switch (default: first standby)")
    p_fabric.add_argument("--parallel", action="store_true",
                          help="run each switch in its own worker process "
                               "(real multi-core scaling; no cuts or "
                               "migrations in this mode)")
    p_fabric.add_argument("--events", default=None, metavar="PATH",
                          help="stream telemetry events to a JSONL file")
    p_fabric.add_argument("--json", default=None, metavar="PATH",
                          help="write the fleet report as JSON")
    p_fabric.add_argument("--engine", default=None,
                          choices=["compiled", "vector", "interp"],
                          help="pipeline execution engine (default: "
                               "compiled, or REPRO_PISA_ENGINE)")
    p_fabric.add_argument("--serve-batch", type=int, default=None,
                          metavar="N",
                          help="serve each switch's shard in sub-batches "
                               "of N packets through the batched fast "
                               "path (0 disables; default: "
                               "REPRO_PISA_SERVE_BATCH, or 0)")
    p_fabric.add_argument("--workers", type=int, default=None,
                          help="flow-sharded worker processes per switch "
                               "for batched serving (default: "
                               "REPRO_PISA_WORKERS, or 1)")
    p_fabric.add_argument("--shard-mode", default=None,
                          choices=["auto", "pool", "fork", "inline"],
                          help="multiprocess strategy when --workers > 1: "
                               "persistent worker pool, fork-per-batch, "
                               "or single-process inline (default: auto, "
                               "or REPRO_PISA_SHARD_MODE)")
    _add_target_arg(p_fabric)
    _add_solver_args(p_fabric)
    _add_obs_args(p_fabric)
    p_fabric.set_defaults(func=_cmd_fabric)

    p_obs = sub.add_parser(
        "obs",
        help="summarize observability artifacts: a --trace Chrome trace "
             "JSON (span tree + per-span aggregates), a --metrics "
             "Prometheus textfile, and/or a --flight recorder dump",
    )
    p_obs.add_argument("trace_file", nargs="?", default=None,
                       help="Chrome trace-event JSON produced by --trace")
    p_obs.add_argument("--metrics", dest="metrics_file", default=None,
                       metavar="FILE",
                       help="Prometheus textfile produced by --metrics")
    p_obs.add_argument("--flight", dest="flight_file", default=None,
                       metavar="FILE",
                       help="flight-recorder JSONL produced by --flight "
                            "or a crash/SIGUSR1 dump")
    p_obs.add_argument("--format", default="text",
                       choices=["text", "json"],
                       help="output rendering: terminal tables, or one "
                            "JSON object with the same content "
                            "(default: text)")
    p_obs.add_argument("--depth", type=int, default=6,
                       help="max depth of the rendered span tree (default: 6)")
    p_obs.add_argument("--top", type=int, default=20,
                       help="rows in the per-span aggregate table "
                            "(default: 20)")
    p_obs.set_defaults(func=_cmd_obs)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard: drive an embedded fabric (or "
             "--run elastic-runtime) scenario and repaint fleet / "
             "pipeline / tenant-SLO metrics at every window",
    )
    p_top.add_argument("--run", action="store_true",
                       help="drive the single-switch elastic runtime "
                            "instead of the fabric fleet")
    p_top.add_argument("--packets", type=int, default=8000,
                       help="total packets to process (default: 8000)")
    p_top.add_argument("--switches", type=int, default=3,
                       help="fabric switches (default: 3)")
    p_top.add_argument("--window", type=int, default=1000,
                       help="monitoring window in packets (default: 1000)")
    p_top.add_argument("--universe", type=int, default=4000,
                       help="key universe size (default: 4000)")
    p_top.add_argument("--alpha", type=float, default=1.1,
                       help="Zipf skew (default: 1.1)")
    p_top.add_argument("--seed", type=int, default=42,
                       help="workload seed (default: 42)")
    p_top.add_argument("--engine", default=None,
                       choices=["compiled", "vector", "interp"],
                       help="pipeline execution engine (default: compiled)")
    p_top.add_argument("--no-cut", action="store_true",
                       help="run without the scheduled mid-run memory cut")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the screen "
                            "(for logs and pipes)")
    _add_target_arg(p_top)
    _add_solver_args(p_top)
    p_top.set_defaults(func=_cmd_top)

    p_targets = sub.add_parser("targets", help="list known target specifications")
    p_targets.set_defaults(func=_cmd_targets)

    p_library = sub.add_parser("library", help="print a library module's source")
    p_library.add_argument("name", nargs="?", default=None)
    p_library.set_defaults(func=_cmd_library)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (P4AllError, CompileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `p4all obs trace.json | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
