"""Command-line interface: the ``p4all`` compiler driver.

Subcommands::

    p4all compile prog.p4all --target tofino [-o out.p4] [--report]
    p4all bounds  prog.p4all --target tofino     # unroll bounds only
    p4all targets                                # list target specs
    p4all library [name]                         # dump library module source
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import build_ir, compute_upper_bounds
from .core import CompileOptions, compile_file, layout_report, summary_line
from .core.errors import CompileError
from .lang import P4AllError, check_program, parse_program
from .pisa.resources import TARGETS, get_target


def _add_target_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target", default="tofino",
        help=f"target specification name ({', '.join(sorted(TARGETS))})",
    )
    parser.add_argument(
        "--target-file", default=None,
        help="JSON target specification (overrides --target)",
    )
    parser.add_argument(
        "--stages", type=int, default=None,
        help="override the target's stage count",
    )
    parser.add_argument(
        "--memory", type=int, default=None,
        help="override per-stage register memory (bits)",
    )


def _resolve_target(args):
    import dataclasses

    if getattr(args, "target_file", None):
        from .pisa.targetspec import load_target

        target = load_target(args.target_file)
    else:
        target = get_target(args.target)
    overrides = {}
    if args.stages is not None:
        overrides["stages"] = args.stages
    if args.memory is not None:
        overrides["memory_bits_per_stage"] = args.memory
    if overrides:
        target = dataclasses.replace(target, **overrides)
    return target


def _cmd_compile(args) -> int:
    target = _resolve_target(args)
    options = CompileOptions(entry=args.entry, backend=args.backend)
    compiled = compile_file(args.program, target, options=options)
    if args.output:
        Path(args.output).write_text(compiled.p4_source)
        print(f"wrote {args.output}")
    else:
        print(compiled.p4_source)
    print(summary_line(compiled), file=sys.stderr)
    if args.report:
        print(layout_report(compiled), file=sys.stderr)
    return 0


def _cmd_bounds(args) -> int:
    target = _resolve_target(args)
    source = Path(args.program).read_text()
    info = check_program(parse_program(source, args.program))
    ir = build_ir(info, args.entry)
    bounds = compute_upper_bounds(ir, target)
    for sym, result in bounds.results.items():
        print(
            f"{sym}: bound {result.bound} "
            f"(criterion: {result.criterion}, path lengths {result.path_lengths})"
        )
    return 0


def _cmd_graph(args) -> int:
    from .analysis import build_dependency_graph, graph_to_dot, instantiate

    target = _resolve_target(args)
    source = Path(args.program).read_text()
    info = check_program(parse_program(source, args.program))
    ir = build_ir(info, args.entry)
    counts = compute_upper_bounds(ir, target).as_counts()
    if args.unroll is not None:
        counts = {sym: args.unroll for sym in counts}
    graph = build_dependency_graph(instantiate(ir, counts))
    print(graph_to_dot(graph, title=Path(args.program).stem))
    return 0


def _cmd_targets(_args) -> int:
    for name in sorted(TARGETS):
        print(get_target(name).describe())
    return 0


def _cmd_library(args) -> int:
    from .structures import LIBRARY_SOURCES

    if not args.name:
        for name in sorted(LIBRARY_SOURCES):
            print(name)
        return 0
    try:
        print(LIBRARY_SOURCES[args.name])
    except KeyError:
        print(f"unknown module {args.name!r}; options: "
              f"{', '.join(sorted(LIBRARY_SOURCES))}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p4all",
        description="P4All elastic switch-program compiler (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a .p4all program to P4")
    p_compile.add_argument("program", help="path to the .p4all source")
    p_compile.add_argument("-o", "--output", help="output .p4 path (default: stdout)")
    p_compile.add_argument("--entry", default="Ingress", help="ingress control name")
    p_compile.add_argument("--backend", default="auto",
                           help="ILP backend: auto, scipy, bb")
    p_compile.add_argument("--report", action="store_true",
                           help="print the per-stage layout report")
    _add_target_arg(p_compile)
    p_compile.set_defaults(func=_cmd_compile)

    p_bounds = sub.add_parser("bounds", help="show loop-unrolling upper bounds")
    p_bounds.add_argument("program")
    p_bounds.add_argument("--entry", default="Ingress")
    _add_target_arg(p_bounds)
    p_bounds.set_defaults(func=_cmd_bounds)

    p_graph = sub.add_parser(
        "graph", help="emit the dependency graph (DOT) at the unroll bound"
    )
    p_graph.add_argument("program")
    p_graph.add_argument("--entry", default="Ingress")
    p_graph.add_argument("--unroll", type=int, default=None,
                         help="override the iteration count for all loops")
    _add_target_arg(p_graph)
    p_graph.set_defaults(func=_cmd_graph)

    p_targets = sub.add_parser("targets", help="list known target specifications")
    p_targets.set_defaults(func=_cmd_targets)

    p_library = sub.add_parser("library", help="print a library module's source")
    p_library.add_argument("name", nargs="?", default=None)
    p_library.set_defaults(func=_cmd_library)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (P4AllError, CompileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
