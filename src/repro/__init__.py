"""P4All: elastic switch programming (HotNets 2020) — full reproduction.

Subpackages:

* :mod:`repro.lang` — the P4All language front end (lexer/parser/AST);
* :mod:`repro.analysis` — dependency analysis and loop-unrolling bounds;
* :mod:`repro.ilp` — MILP modeling layer with two exact solvers;
* :mod:`repro.core` — the layout ILP, utility linearization, code
  generation, and the end-to-end compiler driver;
* :mod:`repro.pisa` — the PISA target model and pipeline simulator (the
  stand-in for the Tofino);
* :mod:`repro.structures` — reusable elastic data-structure library;
* :mod:`repro.apps` — NetCache, SketchLearn, PRECISION, ConQuest;
* :mod:`repro.workloads` — Zipf key traces and heavy-tail flow traces;
* :mod:`repro.eval` — one harness per paper table/figure.

Quickstart::

    from repro import compile_source, tofino, Pipeline, Packet

    program = open("sketch.p4all").read()
    compiled = compile_source(program, tofino())
    print(compiled.symbol_values)      # the chosen elastic sizes
    print(compiled.p4_source)          # the concrete P4 program

    pipe = Pipeline(compiled)
    pipe.process(Packet(fields={"flow_id": 42}))
"""

from .core import (
    CompiledProgram,
    CompileError,
    CompileOptions,
    LayoutOptions,
    compile_file,
    compile_source,
    layout_report,
)
from .pisa import Packet, Pipeline, TargetSpec, get_target, tofino

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "CompileError",
    "CompileOptions",
    "LayoutOptions",
    "compile_file",
    "compile_source",
    "layout_report",
    "Packet",
    "Pipeline",
    "TargetSpec",
    "get_target",
    "tofino",
    "__version__",
]
