"""Greedy first-fit layout baseline.

Related work (Jose et al.) compiles fixed programs with both ILPs and
greedy heuristics; the paper's contribution is that the *elastic* problem
is solved optimally by an ILP. This module provides the natural greedy
baseline for the ablation benchmark:

1. walk placement units in program order, placing each in the earliest
   stage that satisfies dependencies (strictly after predecessors, not
   sharing a stage with excluded peers or over-budget ALUs), dropping an
   elastic iteration — and all later iterations of its symbolic — when it
   does not fit;
2. afterwards, split each stage's register memory equally among the
   register instances placed there, then shrink every family to its
   smallest per-instance share (the equal-size rule).

The ILP dominates this baseline whenever utility favors an allocation the
greedy order cannot reach (e.g. reserving memory for a later, more
valuable structure) — exactly the effect the ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dependencies import build_dependency_graph
from ..analysis.ir import ProgramIR, instantiate
from ..analysis.unroll import UnrollBounds
from ..lang import ast
from ..lang.symbols import eval_static
from ..pisa.resources import TargetSpec
from .errors import CompileError

__all__ = ["GreedyResult", "greedy_layout"]


@dataclass
class GreedyResult:
    """Outcome of the greedy allocator (mirrors the ILP solution shape)."""

    symbol_values: dict[str, int]
    instance_stage: dict[int, int | None]
    register_alloc: dict[tuple[str, int], tuple[int, int]]  # (fam, idx) -> (stage, cells)
    placed_count: int = 0
    dropped_count: int = 0
    #: the action instances the layout was computed over (uids match
    #: ``instance_stage``), so callers can assemble a CompiledProgram
    #: without re-instantiating.
    instances: list = field(default_factory=list)

    def utility_value(self, utility: ast.Expr, consts: dict[str, int]) -> float:
        """Evaluate the utility function at the greedy symbolic values."""
        env: dict[str, float] = dict(consts)
        env.update(self.symbol_values)
        return float(eval_static(utility, env))


def greedy_layout(
    ir: ProgramIR,
    bounds: UnrollBounds,
    target: TargetSpec,
) -> GreedyResult:
    """Greedy first-fit placement and memory split (see module docstring)."""
    counts = bounds.as_counts()
    instances = instantiate(ir, counts)
    graph = build_dependency_graph(instances)

    prec_in = graph.precedence_in
    excl = graph.exclusion

    node_stage: dict[int, int | None] = {}
    stateful_used = [0] * target.stages
    stateless_used = [0] * target.stages
    hash_used = [0] * target.stages
    dead_symbolics: dict[str, int] = {}  # symbolic -> first dropped iteration

    def node_iterations(node) -> list[tuple[str, int]]:
        return [
            (inst.symbolic, inst.iteration)
            for inst in node.instances
            if inst.symbolic is not None
        ]

    for node in graph.nodes:
        # Skip nodes of iterations at/after a dropped one.
        dropped = any(
            sym in dead_symbolics and it >= dead_symbolics[sym]
            for sym, it in node_iterations(node)
        )
        if dropped:
            node_stage[node.node_id] = None
            continue
        min_stage = 0
        feasible = True
        for pred in prec_in[node.node_id]:
            pred_stage = node_stage.get(pred)
            if pred_stage is None:
                feasible = False
                break
            min_stage = max(min_stage, pred_stage + 1)
        hf = sum(target.hf(i.cost) for i in node.instances)
        hl = sum(target.hl(i.cost) for i in node.instances)
        hh = sum(i.cost.hash_ops for i in node.instances)
        chosen: int | None = None
        if feasible:
            for s in range(min_stage, target.stages):
                if stateful_used[s] + hf > target.stateful_alus_per_stage:
                    continue
                if stateless_used[s] + hl > target.stateless_alus_per_stage:
                    continue
                if hash_used[s] + hh > target.hash_units_per_stage:
                    continue
                if any(node_stage.get(other) == s for other in excl[node.node_id]):
                    continue
                chosen = s
                break
        node_stage[node.node_id] = chosen
        if chosen is None:
            elastic = node_iterations(node)
            if not elastic:
                raise CompileError(
                    f"greedy layout: inelastic unit {node.label!r} does not fit"
                )
            for sym, it in elastic:
                prior = dead_symbolics.get(sym)
                dead_symbolics[sym] = it if prior is None else min(prior, it)
        else:
            stateful_used[chosen] += hf
            stateless_used[chosen] += hl
            hash_used[chosen] += hh

    # Drop *whole* iterations when any of their units was dropped
    # (conditional constraint #7), and everything after them (#16).
    active: dict[tuple[str, int], bool] = {}
    for inst in instances:
        if inst.symbolic is None:
            continue
        key = (inst.symbolic, inst.iteration)
        placed = node_stage[graph.node_of(inst).node_id] is not None
        active[key] = active.get(key, True) and placed
    for sym, count in counts.items():
        alive = True
        for i in range(count):
            alive = alive and active.get((sym, i), False)
            active[(sym, i)] = alive

    instance_stage: dict[int, int | None] = {}
    for inst in instances:
        stage = node_stage[graph.node_of(inst).node_id]
        if inst.symbolic is not None and not active[(inst.symbolic, inst.iteration)]:
            stage = None
        instance_stage[inst.uid] = stage

    # -- memory split ------------------------------------------------------------
    info = ir.info
    # Register instances present per stage.
    stage_regs: dict[int, list[tuple[str, int]]] = {}
    reg_stage: dict[tuple[str, int], int] = {}
    for inst in instances:
        stage = instance_stage[inst.uid]
        if stage is None:
            continue
        for reg in inst.registers:
            if reg not in reg_stage:
                reg_stage[reg] = stage
                stage_regs.setdefault(stage, []).append(reg)

    # Table SRAM placed in a stage comes out of the same M budget the
    # registers draw from (the ILP's constraint #8 with the §4.4 table
    # extension), so reserve it before splitting.
    from .tablemem import table_memory_bits

    table_bits_in_stage: dict[int, int] = {}
    for inst in instances:
        stage = instance_stage[inst.uid]
        if stage is None or inst.table is None:
            continue
        table_bits_in_stage[stage] = table_bits_in_stage.get(stage, 0) + (
            table_memory_bits(info.tables[inst.table], info)
        )

    # Equal split of the remaining stage memory by cell width.
    share_cells: dict[tuple[str, int], int] = {}
    for stage, regs in stage_regs.items():
        budget = target.memory_bits_per_stage - table_bits_in_stage.get(stage, 0)
        per_reg_bits = max(budget, 0) // max(len(regs), 1)
        for fam, idx in regs:
            width = info.registers[fam].cell_bits
            share_cells[(fam, idx)] = max(per_reg_bits // width, 0)

    # Families with fixed sizes keep them; elastic families take the
    # minimum share across their instances (equal-size rule).
    family_cells: dict[str, int] = {}
    for (fam, _idx), cells in share_cells.items():
        family_cells[fam] = min(family_cells.get(fam, 1 << 62), cells)
    # Families sized by the *same symbol* must also agree across
    # families — the symbol has one value. NetCache's kv_keys/kv_val0/
    # kv_val1 are all [kv_cols]: letting them diverge leaves the data
    # plane with key arrays longer than the value arrays they index.
    symbol_cells: dict[str, int] = {}
    for fam, cells in family_cells.items():
        size = info.registers[fam].decl.size
        if isinstance(size, ast.Name):
            symbol_cells[size.ident] = min(
                symbol_cells.get(size.ident, 1 << 62), cells
            )
    for fam in family_cells:
        size = info.registers[fam].decl.size
        if isinstance(size, ast.Name):
            family_cells[fam] = symbol_cells[size.ident]
    register_alloc: dict[tuple[str, int], tuple[int, int]] = {}
    for (fam, idx), stage in reg_stage.items():
        reg = info.registers[fam]
        if not reg.is_elastic_size:
            cells = int(eval_static(reg.decl.size, info.consts))
        else:
            cells = family_cells[fam]
        if cells <= 0:
            cells = 1
        register_alloc[(fam, idx)] = (stage, cells)

    # -- symbolic values ------------------------------------------------------------
    symbol_values: dict[str, int] = {}
    for sym, count in counts.items():
        symbol_values[sym] = sum(1 for i in range(count) if active.get((sym, i)))
    for fam, cells in family_cells.items():
        reg = info.registers[fam]
        if isinstance(reg.decl.size, ast.Name):
            symbol_values.setdefault(reg.decl.size.ident, cells)
    for sym in info.symbolics:
        symbol_values.setdefault(sym, 0)

    placed = sum(1 for s in instance_stage.values() if s is not None)
    return GreedyResult(
        symbol_values=symbol_values,
        instance_stage=instance_stage,
        register_alloc=register_alloc,
        placed_count=placed,
        dropped_count=len(instance_stage) - placed,
        instances=instances,
    )
