"""Compilation phase caches for fast elastic recompilation.

The elastic runtime recompiles the *same* program again and again —
only the target geometry (a memory cut, a stage change) or the utility
varies between triggers. A cold compile re-runs every phase of
Figure 8, yet the front-end artifacts (parse/AST, semantic info, IR)
depend only on the source text, and the unroll bounds only on
(source, target, unroll options). :class:`CompileCache` memoizes those
phases, plus the *full* compile result, so that:

* a recompile with only a changed :class:`~repro.pisa.resources.TargetSpec`
  skips parsing, semantic checking, and IR construction entirely
  (bounds are recomputed — they depend on the target — but that is the
  cheap tail of the front end);
* a recompile with nothing changed returns the previous
  :class:`~repro.core.program.CompiledProgram` outright (compiled
  programs are immutable once assembled — pipelines built from them
  hold their own register state — so sharing is safe).

Keys are content hashes of the source plus the frozen option/target
dataclasses, never object identities, so two textually identical
programs share cache entries. Hit/miss counters are kept per tier and
can be exported on the runtime telemetry bus
(:meth:`CompileCache.emit`); the :class:`~repro.runtime.planner.ReconfigPlanner`
does this after every planning cycle.

The cache is deliberately *not* a global: callers opt in through
``CompileOptions(cache=...)`` (the planner installs one by default), so
batch compiles and tests keep their cold-path semantics unless they ask
otherwise.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..analysis import build_ir, compute_upper_bounds
from ..analysis.unroll import UnrollBounds, UnrollOptions
from ..lang import check_program, parse_program
from ..obs import metrics as obs_metrics
from ..pisa.resources import TargetSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .driver import CompileOptions
    from .program import CompiledProgram

__all__ = ["CompileCache", "CacheStats", "source_fingerprint"]


def source_fingerprint(source: str) -> str:
    """Stable content hash of a program's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _count_request(tier: str, hit: bool) -> None:
    """Mirror one cache lookup onto the global metrics registry (the
    per-instance :class:`CacheStats` counters stay authoritative for
    telemetry; this feeds the Prometheus export)."""
    obs_metrics.counter(
        "p4all_cache_requests_total",
        help="CompileCache lookups, by tier and outcome.",
        labels=("tier", "outcome"),
    ).inc(tier=tier, outcome="hit" if hit else "miss")


@dataclass
class CacheStats:
    """Hit/miss counters per cache tier (monotone; never reset by
    eviction or invalidation, so rates stay meaningful over a run)."""

    frontend_hits: int = 0
    frontend_misses: int = 0
    module_hits: int = 0
    module_misses: int = 0
    bounds_hits: int = 0
    bounds_misses: int = 0
    layout_hits: int = 0
    layout_misses: int = 0
    verify_hits: int = 0
    verify_misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "frontend_hits": self.frontend_hits,
            "frontend_misses": self.frontend_misses,
            "module_hits": self.module_hits,
            "module_misses": self.module_misses,
            "bounds_hits": self.bounds_hits,
            "bounds_misses": self.bounds_misses,
            "layout_hits": self.layout_hits,
            "layout_misses": self.layout_misses,
            "verify_hits": self.verify_hits,
            "verify_misses": self.verify_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    @property
    def total_hits(self) -> int:
        return self.frontend_hits + self.bounds_hits + self.layout_hits


@dataclass
class _FrontendEntry:
    """Phases 1-2 artifacts: parsed program, semantic info, IR."""

    program: Any
    info: Any
    ir: Any


class CompileCache:
    """Memoizes compilation phases across recompiles.

    Four tiers, from cheapest to most complete:

    ========  ==========================================  =====================
    tier      holds                                       keyed by
    ========  ==========================================  =====================
    frontend  AST + semantic info + IR                    (source hash, entry)
    bounds    loop-unroll upper bounds                    + (target, unroll opts)
    verify    taint/isolation verification result         + chosen symbol values
    layout    the full ``CompiledProgram``                + (backend, time
                                                          limit, layout opts)
    ========  ==========================================  =====================

    The layout tier is LRU-bounded by ``max_layouts`` (``0`` disables it
    entirely — useful for benchmarks that want front-end reuse but fresh
    solves). All operations are thread-safe: the planner's parallel
    candidate race compiles on worker threads against a shared cache.
    """

    def __init__(self, max_layouts: int = 64):
        self.max_layouts = max_layouts
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._frontend: dict[tuple, _FrontendEntry] = {}
        self._modules: dict[str, Any] = {}
        self._bounds: dict[tuple, UnrollBounds] = {}
        self._layouts: OrderedDict[tuple, "CompiledProgram"] = OrderedDict()
        self._verify: dict[tuple, Any] = {}

    # -- phase 1-2: parse + check + IR -------------------------------------------
    def frontend(self, source: str, entry: str, source_name: str = "<string>"):
        """Return ``(program, info, ir, hit)`` for the source, memoized.

        ``source_name`` only flavors diagnostics on a miss; hits reuse
        the artifacts of whichever name compiled the text first.
        """
        key = (source_fingerprint(source), entry)
        with self._lock:
            cached = self._frontend.get(key)
        if cached is not None:
            self.stats.frontend_hits += 1
            _count_request("frontend", True)
            return cached.program, cached.info, cached.ir, True
        self.stats.frontend_misses += 1
        _count_request("frontend", False)
        program = parse_program(source, source_name)
        info = check_program(program)
        ir = build_ir(info, entry)
        with self._lock:
            self._frontend[key] = _FrontendEntry(program, info, ir)
        return program, info, ir, False

    # -- per-module frontend tier -------------------------------------------------
    def module(self, key_text: str, build):
        """Return ``(value, hit)`` for one module's frontend artifact.

        The linker keys each module by its fragment text, so editing one
        tenant's module only re-runs ``build`` (parse + extract) for that
        module; every other module of the linked program is a hit.
        """
        key = source_fingerprint(key_text)
        with self._lock:
            cached = self._modules.get(key)
        if cached is not None:
            self.stats.module_hits += 1
            _count_request("module", True)
            return cached, True
        self.stats.module_misses += 1
        _count_request("module", False)
        value = build()
        with self._lock:
            self._modules[key] = value
        return value, False

    def linked_frontend(self, linked, entry: str):
        """Frontend a :class:`~repro.link.LinkedProgram`, memoized.

        The linker already parsed each module; what remains is semantic
        checking and IR construction over the merged AST. Keyed by the
        linked program's fingerprint through a pseudo-source string so
        the bounds/layout tiers (and ``invalidate``) compose unchanged.
        """
        key = ("linked:" + linked.fingerprint, entry)
        with self._lock:
            cached = self._frontend.get(key)
        if cached is not None:
            self.stats.frontend_hits += 1
            _count_request("frontend", True)
            return cached.program, cached.info, cached.ir, True
        self.stats.frontend_misses += 1
        _count_request("frontend", False)
        program = linked.program
        info = check_program(program)
        info.namespace = linked.namespace
        ir = build_ir(info, entry)
        with self._lock:
            self._frontend[key] = _FrontendEntry(program, info, ir)
        return program, info, ir, False

    # -- phase 3: unroll bounds ----------------------------------------------------
    def bounds(
        self,
        source: str,
        entry: str,
        ir,
        target: TargetSpec,
        options: UnrollOptions,
    ) -> tuple[UnrollBounds, bool]:
        """Return ``(bounds, hit)``; bounds depend on the target too."""
        key = (source_fingerprint(source), entry, target, options)
        with self._lock:
            cached = self._bounds.get(key)
        if cached is not None:
            self.stats.bounds_hits += 1
            _count_request("bounds", True)
            return cached, True
        self.stats.bounds_misses += 1
        _count_request("bounds", False)
        computed = compute_upper_bounds(ir, target, options)
        with self._lock:
            self._bounds[key] = computed
        return computed, False

    # -- full-result layout tier ---------------------------------------------------
    def _layout_key(self, source: str, target: TargetSpec,
                    options: "CompileOptions") -> tuple:
        return (
            source_fingerprint(source),
            options.entry,
            target,
            options.backend,
            options.time_limit,
            options.layout,
            options.unroll,
        )

    def get_layout(self, source: str, target: TargetSpec,
                   options: "CompileOptions") -> "CompiledProgram | None":
        if self.max_layouts <= 0:
            return None
        key = self._layout_key(source, target, options)
        with self._lock:
            compiled = self._layouts.get(key)
            if compiled is not None:
                self._layouts.move_to_end(key)
        if compiled is None:
            self.stats.layout_misses += 1
            _count_request("layout", False)
            return None
        self.stats.layout_hits += 1
        _count_request("layout", True)
        return compiled

    def put_layout(self, source: str, target: TargetSpec,
                   options: "CompileOptions", compiled: "CompiledProgram") -> None:
        if self.max_layouts <= 0:
            return
        key = self._layout_key(source, target, options)
        with self._lock:
            self._layouts[key] = compiled
            self._layouts.move_to_end(key)
            while len(self._layouts) > self.max_layouts:
                self._layouts.popitem(last=False)
                self.stats.evictions += 1
                obs_metrics.counter(
                    "p4all_cache_evictions_total",
                    help="Layout-tier LRU evictions.",
                ).inc()

    # -- verification tier -----------------------------------------------------------
    def verify(self, source: str, entry: str, target: TargetSpec,
               symbol_values: dict, build):
        """Return ``(verify_result, hit)`` for one compiled artifact.

        Taint verification depends only on the program text, the entry
        point, and the chosen symbolic values (the unroll depth fixes
        which instances exist) — the target matters only through those
        values, but it is part of the key so invalidation stays simple
        and a target change can never alias. Warm recompiles of an
        unchanged program therefore skip re-verification entirely.
        """
        key = (
            source_fingerprint(source),
            entry,
            target,
            tuple(sorted(symbol_values.items())),
        )
        with self._lock:
            cached = self._verify.get(key)
        if cached is not None:
            self.stats.verify_hits += 1
            _count_request("verify", True)
            return cached, True
        self.stats.verify_misses += 1
        _count_request("verify", False)
        value = build()
        with self._lock:
            self._verify[key] = value
        return value, False

    # -- invalidation --------------------------------------------------------------
    def invalidate(self, source: str | None = None) -> int:
        """Drop cached artifacts; returns the number of entries removed.

        With ``source`` given, only entries derived from that text are
        dropped (the operator edited one program); with ``None``,
        everything goes.
        """
        with self._lock:
            if source is None:
                removed = (len(self._frontend) + len(self._modules)
                           + len(self._bounds) + len(self._layouts)
                           + len(self._verify))
                self._frontend.clear()
                self._modules.clear()
                self._bounds.clear()
                self._layouts.clear()
                self._verify.clear()
            else:
                fp = source_fingerprint(source)
                removed = 0
                for store in (self._frontend, self._bounds, self._layouts,
                              self._verify):
                    stale = [k for k in store if k[0] == fp]
                    for k in stale:
                        del store[k]
                    removed += len(stale)
        if removed:
            self.stats.invalidations += 1
            obs_metrics.counter(
                "p4all_cache_invalidations_total",
                help="Explicit CompileCache invalidations that removed entries.",
            ).inc()
        return removed

    def clear(self) -> int:
        """Alias for full invalidation."""
        return self.invalidate()

    # -- introspection ---------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Counters plus current sizes, as one flat JSON-friendly dict."""
        out = self.stats.to_dict()
        with self._lock:
            out["frontend_entries"] = len(self._frontend)
            out["module_entries"] = len(self._modules)
            out["bounds_entries"] = len(self._bounds)
            out["layout_entries"] = len(self._layouts)
            out["verify_entries"] = len(self._verify)
        return out

    def emit(self, telemetry, **extra) -> None:
        """Export the counters as a ``compile_cache`` telemetry event."""
        telemetry.emit("compile_cache", **self.snapshot(), **extra)

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"CompileCache(frontend {s.frontend_hits}h/{s.frontend_misses}m, "
            f"module {s.module_hits}h/{s.module_misses}m, "
            f"bounds {s.bounds_hits}h/{s.bounds_misses}m, "
            f"layout {s.layout_hits}h/{s.layout_misses}m, "
            f"verify {s.verify_hits}h/{s.verify_misses}m)"
        )
