"""P4All compiler core — the paper's primary contribution.

Public entry points:

* :func:`compile_source` / :func:`compile_file` — full compilation
  (parse → analyze → bound → ILP → codegen);
* :class:`CompileOptions`, :class:`LayoutOptions` — compiler knobs;
* :class:`CompiledProgram` — the result artifact (symbol assignment,
  stage map, register allocation, concrete P4, timings);
* :func:`layout_report` — Figure-7-style stage map rendering;
* :func:`greedy_layout` — the greedy first-fit baseline for ablations;
* :class:`CompileCache` — phase/layout memoization for fast elastic
  recompiles (wired in via :attr:`CompileOptions.cache`).
"""

from .cache import CacheStats, CompileCache, source_fingerprint
from .codegen import generate_p4
from .driver import (
    CompileOptions,
    compile_file,
    compile_linked,
    compile_linked_greedy,
    compile_source,
    compile_source_greedy,
)
from .errors import (
    CompileError,
    LayoutInfeasibleError,
    LayoutTimeoutError,
    UtilityError,
)
from .greedy import GreedyResult, greedy_layout
from .layout import LayoutBuilder, LayoutModel, LayoutOptions, LayoutSolution
from .program import CompiledProgram, CompileStats, PlacedUnit, RegisterAlloc
from .report import (
    ModuleAttribution,
    layout_report,
    module_attribution,
    module_report,
    stats_report,
    summary_line,
)
from .tablemem import table_memory_bits
from .validate import (
    LayoutValidationError,
    TaintMismatchError,
    VerifyResult,
    validate_layout,
    verify_taint,
)

__all__ = [
    "CacheStats",
    "CompileCache",
    "source_fingerprint",
    "generate_p4",
    "CompileOptions",
    "compile_file",
    "compile_linked",
    "compile_linked_greedy",
    "compile_source",
    "compile_source_greedy",
    "CompileError",
    "LayoutInfeasibleError",
    "LayoutTimeoutError",
    "UtilityError",
    "GreedyResult",
    "greedy_layout",
    "LayoutBuilder",
    "LayoutModel",
    "LayoutOptions",
    "LayoutSolution",
    "CompiledProgram",
    "CompileStats",
    "PlacedUnit",
    "RegisterAlloc",
    "ModuleAttribution",
    "layout_report",
    "module_attribution",
    "module_report",
    "stats_report",
    "summary_line",
    "table_memory_bits",
    "LayoutValidationError",
    "TaintMismatchError",
    "VerifyResult",
    "validate_layout",
    "verify_taint",
]
