"""End-to-end P4All compilation driver.

``compile_source`` runs the full pipeline of Figure 8:

1. parse + semantic checks (:mod:`repro.lang`),
2. elaboration and dependency analysis (:mod:`repro.analysis`),
3. loop-unrolling upper bounds (§4.2),
4. layout ILP construction and solving (§4.3),
5. concrete-P4 code generation and stage-mapping extraction.

Phase timings are recorded in :class:`CompileStats` — §6.1 reports that
compile time is dominated by ILP solving, which the Figure-11 benchmark
verifies.

Besides the exact ILP backends (``auto``/``scipy``/``bb``), the driver
accepts ``backend="greedy"``: the same front end feeding
:func:`~repro.core.greedy.greedy_layout` instead of the ILP. The result
is a fully assembled :class:`CompiledProgram` (loadable into the PISA
simulator, validated by :func:`~repro.core.validate.validate_layout`)
whose solution carries ``status=FEASIBLE`` — the degraded-but-safe
artifact the elastic runtime falls back to when the ILP times out.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from ..analysis import build_ir, compute_upper_bounds
from ..analysis.unroll import UnrollOptions
from ..lang import check_program, parse_program
from ..lang.symbols import eval_static
from ..ilp import SolveStatus
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..pisa.resources import TargetSpec
from .cache import CompileCache
from .codegen import generate_p4
from .errors import CompileError
from .layout import LayoutBuilder, LayoutOptions, LayoutSolution
from .program import CompiledProgram, CompileStats, PlacedUnit, RegisterAlloc

__all__ = [
    "compile_source",
    "compile_file",
    "compile_source_greedy",
    "compile_linked",
    "compile_linked_greedy",
    "CompileOptions",
]


class CompileOptions:
    """All compiler knobs in one place."""

    def __init__(
        self,
        entry: str = "Ingress",
        backend: str = "auto",
        time_limit: float | None = None,
        layout: LayoutOptions | None = None,
        unroll: UnrollOptions | None = None,
        verify: bool = True,
        cache: CompileCache | None = None,
        warm_start: LayoutSolution | None = None,
    ):
        self.entry = entry
        #: ILP backend (``auto``/``scipy``/``bb``) or ``greedy`` for the
        #: first-fit heuristic layout (no ILP at all).
        self.backend = backend
        self.time_limit = time_limit
        self.layout = layout or LayoutOptions()
        self.unroll = unroll or UnrollOptions(
            exclusion_as_precedence=self.layout.exclusion_as_precedence
        )
        #: re-check the produced layout against every resource/dependency
        #: rule (cheap; catches formulation bugs at the source).
        self.verify = verify
        #: optional :class:`~repro.core.cache.CompileCache` — reuses
        #: front-end artifacts across recompiles and short-circuits
        #: identical compiles entirely.
        self.cache = cache
        #: optional previous :class:`LayoutSolution` to seed the
        #: branch-and-bound solver's incumbent (ignored by backends that
        #: cannot use it).
        self.warm_start = warm_start

    def replace(self, **updates) -> "CompileOptions":
        """A copy with the given fields updated (options are not frozen,
        but callers treat them as immutable once a compile starts)."""
        fields = dict(
            entry=self.entry,
            backend=self.backend,
            time_limit=self.time_limit,
            layout=self.layout,
            unroll=self.unroll,
            verify=self.verify,
            cache=self.cache,
            warm_start=self.warm_start,
        )
        fields.update(updates)
        return CompileOptions(**fields)


def _run_frontend(source, target, options, source_name, stats):
    """Phases 1-3: parse, check, build IR, compute unroll bounds.

    With a :class:`CompileCache` on the options, parse/check/IR are
    served from the frontend tier (one lookup instead of three phases)
    and bounds from the per-target bounds tier."""
    cache = options.cache
    if cache is not None:
        t0 = time.perf_counter()
        with trace.span("compile.frontend", source=source_name) as span:
            program, info, ir, hit = cache.frontend(
                source, options.entry, source_name
            )
            span.set_attr("cached", hit)
        stats.frontend_cached = hit
        stats.parse_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        with trace.span("compile.bounds") as span:
            bounds, bhit = cache.bounds(
                source, options.entry, ir, target, options.unroll
            )
            span.set_attr("cached", bhit)
        stats.bounds_cached = bhit
        stats.bounds_seconds = time.perf_counter() - t0
        stats.analysis_seconds = stats.bounds_seconds
        return program, info, ir, bounds

    t0 = time.perf_counter()
    with trace.span("compile.parse", source=source_name):
        program = parse_program(source, source_name)
        info = check_program(program)
    stats.parse_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with trace.span("compile.ir"):
        ir = build_ir(info, options.entry)
    stats.ir_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with trace.span("compile.bounds"):
        bounds = compute_upper_bounds(ir, target, options.unroll)
    stats.bounds_seconds = time.perf_counter() - t0
    stats.analysis_seconds = stats.ir_seconds + stats.bounds_seconds
    return program, info, ir, bounds


def _assemble(
    compiled: CompiledProgram,
    instances,
    solution,
    options: CompileOptions,
) -> CompiledProgram:
    """Phase 5: placed units, register allocation, codegen, verification."""
    info = compiled.info
    stats = compiled.stats

    t0 = time.perf_counter()
    with trace.span("compile.codegen"):
        # Placed units: active instances with a stage, in (stage, order)
        # order.
        for inst in instances:
            stage = solution.instance_stage.get(inst.uid)
            if stage is None:
                continue
            if inst.symbolic is not None and not solution.iteration_active.get(
                (inst.symbolic, inst.iteration), False
            ):
                continue
            compiled.units.append(PlacedUnit(instance=inst, stage=stage))
        compiled.units.sort(key=lambda u: (u.stage, u.instance.source_order))

        for (family, index), (stage, cells) in sorted(
            solution.register_alloc.items()
        ):
            width = info.registers[family].cell_bits
            compiled.registers.append(
                RegisterAlloc(family=family, index=index, stage=stage,
                              cells=cells, width=width)
            )

        compiled.p4_source = generate_p4(compiled)
    stats.codegen_seconds = time.perf_counter() - t0

    if options.verify:
        from ..analysis.bounds_check import check_index_bounds
        from .validate import validate_layout

        with trace.span("compile.validate"):
            # §7 verification: every elastic-array index provably in
            # bounds at the chosen symbolic values.
            check_index_bounds(
                compiled.ir,
                {sym: compiled.symbol_values.get(sym, 1)
                 for sym in compiled.bounds.as_counts()},
            )

            validate_layout(
                compiled,
                hash_unit_limits=options.layout.hash_unit_limits,
                table_memory=options.layout.table_memory,
            )
    return compiled


def _verify_linked(compiled, pseudo_source, target, options, stats) -> None:
    """Taint-verification phase for linked compiles (cached tier).

    Runs :func:`~repro.core.validate.verify_taint` — the depgraph-level
    taint pass plus the independent plan-level pass and their
    cross-check — through the CompileCache ``verify`` tier when a cache
    is installed, so a warm recompile of an unchanged program at the
    same symbolic values never re-verifies. Also invoked on layout-tier
    hits for exactly that reason.
    """
    from .validate import verify_taint

    cache = options.cache
    t0 = time.perf_counter()
    with trace.span("compile.verify", source=compiled.source_name) as span:
        if cache is not None:
            result, hit = cache.verify(
                pseudo_source, options.entry, target,
                compiled.symbol_values,
                lambda: verify_taint(compiled),
            )
        else:
            result, hit = verify_taint(compiled), False
        span.set_attrs(cached=hit, flows=len(result.flows))
    stats.verify_seconds = time.perf_counter() - t0
    stats.verify_cached = hit
    compiled.verify = result

    obs_metrics.histogram(
        "p4all_verify_seconds",
        help="Wall time of the compile-time taint-verification phase.",
    ).observe(stats.verify_seconds)
    flow_counter = obs_metrics.counter(
        "p4all_verify_flows_total",
        help="Verified compiles by isolation outcome: clean, or one "
             "count per allowed cross-module flow.",
        labels=("result",),
    )
    if result.flows:
        for _flow in result.flows:
            flow_counter.inc(result="flow")
    else:
        flow_counter.inc(result="clean")


def _record_compile_metrics(stats: CompileStats, backend: str) -> None:
    """Per-compile counters and phase-latency histograms."""
    obs_metrics.counter(
        "p4all_compiles_total",
        help="Completed compiles, by layout backend and layout-cache outcome.",
        labels=("backend", "cached"),
    ).inc(backend=backend, cached=str(stats.layout_cached).lower())
    if stats.layout_cached:
        return
    phases = obs_metrics.histogram(
        "p4all_compile_phase_seconds",
        help="Wall time per compiler phase (Figure 8 pipeline).",
        labels=("phase",),
    )
    phases.observe(stats.parse_seconds, phase="parse")
    phases.observe(stats.ir_seconds, phase="ir")
    phases.observe(stats.bounds_seconds, phase="bounds")
    phases.observe(stats.ilp_build_seconds, phase="ilp_build")
    phases.observe(stats.ilp_solve_seconds, phase="ilp_solve")
    phases.observe(stats.codegen_seconds, phase="codegen")
    phases.observe(stats.verify_seconds, phase="verify")


def compile_source(
    source: str,
    target: TargetSpec,
    options: CompileOptions | None = None,
    source_name: str = "<string>",
) -> CompiledProgram:
    """Compile a P4All program for ``target``; returns the full artifact."""
    options = options or CompileOptions()
    if options.backend == "greedy":
        return compile_source_greedy(source, target, options, source_name)
    with trace.span(
        "compile",
        source=source_name,
        target=target.name,
        backend=options.backend,
    ) as span:
        cache = options.cache
        if cache is not None:
            cached = cache.get_layout(source, target, options)
            if cached is not None:
                # Share the artifact, but stamp a fresh stats record so
                # the caller can see this compile was served from cache
                # (the original's phase timings are preserved for
                # reference).
                span.set_attr("layout_cached", True)
                cached = dataclasses.replace(
                    cached,
                    stats=dataclasses.replace(cached.stats,
                                              layout_cached=True),
                )
                _record_compile_metrics(cached.stats, options.backend)
                return cached
        stats = CompileStats()
        program, info, ir, bounds = _run_frontend(
            source, target, options, source_name, stats
        )

        t0 = time.perf_counter()
        with trace.span("compile.ilp_build"):
            builder = LayoutBuilder(ir, bounds, target, options.layout)
            lm = builder.build()
        stats.ilp_build_seconds = time.perf_counter() - t0
        stats.ilp_variables = lm.model.num_variables
        stats.ilp_constraints = lm.model.num_constraints

        optimize = program.optimize()
        utility = optimize.utility if optimize is not None else None
        with trace.span("compile.ilp_solve",
                        backend=options.backend) as solve_span:
            solution = builder.solve(
                utility=utility,
                backend=options.backend,
                time_limit=options.time_limit,
                warm_start=options.warm_start,
            )
            solve_span.set_attrs(
                status=solution.status.value,
                nodes_explored=solution.nodes_explored,
            )
        stats.ilp_solve_seconds = solution.solve_seconds
        # Constraints may have been added during utility linearization.
        stats.ilp_variables = lm.model.num_variables
        stats.ilp_constraints = lm.model.num_constraints

        compiled = CompiledProgram(
            source_name=source_name,
            target=target,
            info=info,
            ir=ir,
            bounds=bounds,
            solution=solution,
            stats=stats,
        )
        compiled = _assemble(compiled, lm.instances, solution, options)
        if cache is not None:
            cache.put_layout(source, target, options, compiled)
        span.set_attrs(status=solution.status.value,
                       symbols=dict(solution.symbol_values))
        _record_compile_metrics(stats, options.backend)
        return compiled


def compile_source_greedy(
    source: str,
    target: TargetSpec,
    options: CompileOptions | None = None,
    source_name: str = "<string>",
) -> CompiledProgram:
    """Compile with the greedy first-fit layout instead of the ILP.

    Same front end, codegen, and verification as :func:`compile_source`;
    only the layout phase differs. Used directly and as the elastic
    runtime's fallback when the ILP backend hits its time limit.
    """
    from .greedy import greedy_layout

    options = options or CompileOptions()
    with trace.span(
        "compile",
        source=source_name,
        target=target.name,
        backend="greedy",
    ) as span:
        stats = CompileStats()
        program, info, ir, bounds = _run_frontend(
            source, target, options, source_name, stats
        )

        t0 = time.perf_counter()
        with trace.span("compile.greedy_layout"):
            result = greedy_layout(ir, bounds, target)
        stats.ilp_solve_seconds = time.perf_counter() - t0

        iteration_active = {
            (inst.symbolic, inst.iteration):
                result.instance_stage[inst.uid] is not None
            for inst in result.instances
            if inst.symbolic is not None
        }
        optimize = program.optimize()
        objective = 0.0
        if optimize is not None:
            env: dict[str, float] = dict(info.consts)
            env.update(result.symbol_values)
            objective = float(eval_static(optimize.utility, env))
        solution = LayoutSolution(
            status=SolveStatus.FEASIBLE,
            objective=objective,
            symbol_values=result.symbol_values,
            node_stage={},
            instance_stage=result.instance_stage,
            register_alloc=result.register_alloc,
            iteration_active=iteration_active,
            solve_seconds=stats.ilp_solve_seconds,
            backend="greedy",
            num_variables=0,
            num_constraints=0,
        )

        compiled = CompiledProgram(
            source_name=source_name,
            target=target,
            info=info,
            ir=ir,
            bounds=bounds,
            solution=solution,
            stats=stats,
        )
        compiled = _assemble(compiled, result.instances, solution, options)
        span.set_attrs(status=solution.status.value,
                       symbols=dict(solution.symbol_values))
        _record_compile_metrics(stats, "greedy")
        return compiled


def compile_file(
    path: str | Path,
    target: TargetSpec,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Compile a ``.p4all`` file."""
    path = Path(path)
    return compile_source(
        path.read_text(), target, options=options, source_name=str(path)
    )


# ---------------------------------------------------------------------------
# Linked-program compilation. ``linked`` is duck-typed on the
# LinkedProgram surface (program/namespace/fingerprint/utility/
# utility_terms/floors/name) so this module never imports repro.link.

def _linked_pseudo_source(linked) -> str:
    """Key the bounds/layout cache tiers by the linked fingerprint.

    The tiers hash their ``source`` argument, so a stable pseudo-source
    string lets a linked program share them unchanged with string
    compiles (including ``invalidate``)."""
    return "linked:" + linked.fingerprint


def _run_frontend_linked(linked, target, options, stats):
    """Phases 2-3 for an already-parsed linked program."""
    cache = options.cache
    if cache is not None:
        t0 = time.perf_counter()
        with trace.span("compile.frontend", source=linked.name,
                        linked=True) as span:
            program, info, ir, hit = cache.linked_frontend(
                linked, options.entry
            )
            span.set_attr("cached", hit)
        stats.frontend_cached = hit
        stats.parse_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        with trace.span("compile.bounds") as span:
            bounds, bhit = cache.bounds(
                _linked_pseudo_source(linked), options.entry, ir, target,
                options.unroll,
            )
            span.set_attr("cached", bhit)
        stats.bounds_cached = bhit
        stats.bounds_seconds = time.perf_counter() - t0
        stats.analysis_seconds = stats.bounds_seconds
        return program, info, ir, bounds

    t0 = time.perf_counter()
    with trace.span("compile.parse", source=linked.name, linked=True):
        program = linked.program
        info = check_program(program)
        info.namespace = linked.namespace
    stats.parse_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with trace.span("compile.ir"):
        ir = build_ir(info, options.entry)
    stats.ir_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with trace.span("compile.bounds"):
        bounds = compute_upper_bounds(ir, target, options.unroll)
    stats.bounds_seconds = time.perf_counter() - t0
    stats.analysis_seconds = stats.ir_seconds + stats.bounds_seconds
    return program, info, ir, bounds


def compile_linked(
    linked,
    target: TargetSpec,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Compile a :class:`~repro.link.LinkedProgram` for ``target``.

    Same pipeline as :func:`compile_source` from semantic checking
    onward — the linker already ran the per-module front end — with the
    objective built as the explicit weighted sum of per-module utility
    terms (per-module floors become constraints) and the solution
    carrying a per-module utility breakdown.
    """
    options = options or CompileOptions()
    if options.backend == "greedy":
        return compile_linked_greedy(linked, target, options)
    with trace.span(
        "compile",
        source=linked.name,
        target=target.name,
        backend=options.backend,
        linked=True,
    ) as span:
        cache = options.cache
        pseudo = _linked_pseudo_source(linked)
        if cache is not None:
            cached = cache.get_layout(pseudo, target, options)
            if cached is not None:
                span.set_attr("layout_cached", True)
                cached = dataclasses.replace(
                    cached,
                    stats=dataclasses.replace(cached.stats,
                                              layout_cached=True),
                )
                if options.verify:
                    # Warm recompile: the verify tier answers from cache
                    # (same program, same symbol values), keeping the
                    # isolation property checked on every build without
                    # re-running the passes.
                    _verify_linked(cached, pseudo, target, options,
                                   cached.stats)
                _record_compile_metrics(cached.stats, options.backend)
                return cached
        stats = CompileStats()
        program, info, ir, bounds = _run_frontend_linked(
            linked, target, options, stats
        )

        t0 = time.perf_counter()
        with trace.span("compile.ilp_build"):
            builder = LayoutBuilder(ir, bounds, target, options.layout)
            lm = builder.build()
        stats.ilp_build_seconds = time.perf_counter() - t0
        stats.ilp_variables = lm.model.num_variables
        stats.ilp_constraints = lm.model.num_constraints

        with trace.span("compile.ilp_solve",
                        backend=options.backend) as solve_span:
            solution = builder.solve(
                utility=linked.utility,
                backend=options.backend,
                time_limit=options.time_limit,
                warm_start=options.warm_start,
                utility_terms=linked.utility_terms,
                floors=linked.floors,
            )
            solve_span.set_attrs(
                status=solution.status.value,
                nodes_explored=solution.nodes_explored,
            )
        stats.ilp_solve_seconds = solution.solve_seconds
        stats.ilp_variables = lm.model.num_variables
        stats.ilp_constraints = lm.model.num_constraints

        compiled = CompiledProgram(
            source_name=linked.name,
            target=target,
            info=info,
            ir=ir,
            bounds=bounds,
            solution=solution,
            stats=stats,
        )
        compiled = _assemble(compiled, lm.instances, solution, options)
        if options.verify:
            _verify_linked(compiled, pseudo, target, options, stats)
        if cache is not None:
            cache.put_layout(pseudo, target, options, compiled)
        span.set_attrs(status=solution.status.value,
                       symbols=dict(solution.symbol_values))
        _record_compile_metrics(stats, options.backend)
        return compiled


def compile_linked_greedy(
    linked,
    target: TargetSpec,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Greedy-layout counterpart of :func:`compile_linked`."""
    options = options or CompileOptions()
    span = trace.span("compile", source=linked.name, target=target.name,
                      backend="greedy", linked=True)
    with span:
        return _compile_linked_greedy_body(linked, target, options, span)


def _compile_linked_greedy_body(linked, target, options, span):
    from .greedy import greedy_layout
    from .utility import eval_utility_term

    stats = CompileStats()
    program, info, ir, bounds = _run_frontend_linked(
        linked, target, options, stats
    )

    t0 = time.perf_counter()
    with trace.span("compile.greedy_layout"):
        result = greedy_layout(ir, bounds, target)
    stats.ilp_solve_seconds = time.perf_counter() - t0

    iteration_active = {
        (inst.symbolic, inst.iteration): result.instance_stage[inst.uid] is not None
        for inst in result.instances
        if inst.symbolic is not None
    }
    env: dict[str, float] = dict(info.consts)
    env.update(result.symbol_values)
    breakdown: dict[str, float] = {}
    for module, weight, term in linked.utility_terms:
        value = float(weight) * eval_utility_term(term, env)
        breakdown[module] = breakdown.get(module, 0.0) + value
    if breakdown:
        objective = sum(breakdown.values())
    elif linked.utility is not None:
        objective = float(eval_utility_term(linked.utility, env))
    else:
        objective = 0.0
    solution = LayoutSolution(
        status=SolveStatus.FEASIBLE,
        objective=objective,
        symbol_values=result.symbol_values,
        node_stage={},
        instance_stage=result.instance_stage,
        register_alloc=result.register_alloc,
        iteration_active=iteration_active,
        solve_seconds=stats.ilp_solve_seconds,
        backend="greedy",
        num_variables=0,
        num_constraints=0,
        utility_breakdown=breakdown,
    )

    compiled = CompiledProgram(
        source_name=linked.name,
        target=target,
        info=info,
        ir=ir,
        bounds=bounds,
        solution=solution,
        stats=stats,
    )
    compiled = _assemble(compiled, result.instances, solution, options)
    if options.verify:
        _verify_linked(compiled, _linked_pseudo_source(linked), target,
                       options, stats)
    span.set_attrs(status=solution.status.value,
                   symbols=dict(solution.symbol_values))
    _record_compile_metrics(stats, "greedy")
    return compiled
