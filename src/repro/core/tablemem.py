"""Match-action table memory accounting (§4.4 extension).

The paper's ILP "does not consider the placement of match-action tables"
but notes there is "no fundamental reason" it could not. This
reproduction places table-apply units like actions and, with
``LayoutOptions.table_memory`` (default on), charges each table's SRAM
footprint — entries × (key bits + action-data overhead) — against the
memory of the stage it lands in. The PISA simulator validates the same
accounting at load time.
"""

from __future__ import annotations

from ..analysis.ir import field_key
from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.symbols import ProgramInfo, eval_static

__all__ = ["table_memory_bits", "DEFAULT_TABLE_SIZE", "ACTION_DATA_OVERHEAD_BITS"]

#: Entries assumed when a table declares no ``size``.
DEFAULT_TABLE_SIZE = 1024
#: Per-entry overhead for action id + action data words.
ACTION_DATA_OVERHEAD_BITS = 32


def _key_width(expr: ast.Expr, info: ProgramInfo) -> int:
    """Width of one table key field (metadata/header lookup; 32 default)."""
    key = field_key(expr, info.consts)
    if key.startswith("meta."):
        base = key[len("meta."):].split("[")[0]
        field = info.metadata.get(base)
        if field is not None:
            return field.width
    if key.startswith("hdr."):
        return info.header_fields.get(key[len("hdr."):], 32)
    return 32


def table_memory_bits(table: ast.TableDecl, info: ProgramInfo) -> int:
    """SRAM bits one table occupies in its stage.

    ``entries * (sum of key widths + overhead)``; ternary keys double
    their width (value + mask).
    """
    entries = DEFAULT_TABLE_SIZE
    if table.size is not None:
        try:
            entries = int(eval_static(table.size, info.consts))
        except SemanticError:
            entries = DEFAULT_TABLE_SIZE
    width = ACTION_DATA_OVERHEAD_BITS
    for key in table.keys:
        bits = _key_width(key.expr, info)
        if key.match_kind == "ternary":
            bits *= 2
        width += bits
    return entries * width
