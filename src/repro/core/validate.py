"""Standalone validation of compiled layouts.

:func:`validate_layout` re-checks a :class:`CompiledProgram` against
every rule the layout ILP encoded — independently of the ILP, from the
artifact alone. The PISA simulator runs the same checks at load time;
this module makes them available without building a pipeline (and is
what the compiler driver's ``verify`` flag and several tests use).

Checks: per-stage memory (registers + table SRAM), stateful/stateless
ALUs, hash units, PHV capacity, register/action co-location, equal sizes
within register families, dependency ordering (precedence strictly
increasing, exclusions in distinct stages), and iteration-prefix
activation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dependencies import build_dependency_graph
from ..analysis.ir import instantiate, module_of_instance
from ..analysis.taint import cross_module_flows, propagate_taint
from ..lang.symbols import eval_static
from ..pisa.plan import plan_taint
from .errors import CompileError
from .program import CompiledProgram
from .tablemem import table_memory_bits

__all__ = [
    "validate_layout",
    "LayoutValidationError",
    "VerifyResult",
    "TaintMismatchError",
    "verify_taint",
]


class LayoutValidationError(CompileError):
    """A compiled layout violates a resource or dependency rule."""


class TaintMismatchError(CompileError):
    """The depgraph-level and plan-level taint passes disagree.

    Both passes solve the same monotone dataflow equations, one over the
    elaborated action instances and one over the lowered execution-plan
    units, so a mismatch means lowering changed the program's dataflow —
    a compiler bug that must fail the build loudly, never a property of
    the input program.
    """


def _fail(message: str) -> None:
    raise LayoutValidationError(message)


def validate_layout(
    compiled: CompiledProgram,
    hash_unit_limits: bool = True,
    table_memory: bool = True,
) -> None:
    """Raise :class:`LayoutValidationError` on any violated rule.

    ``hash_unit_limits``/``table_memory`` mirror the corresponding
    :class:`~repro.core.layout.LayoutOptions` flags, so layouts compiled
    with an extension disabled validate under the same rules.
    """
    target = compiled.target
    info = compiled.info

    # -- per-stage resource budgets ----------------------------------------
    for stage in range(target.stages):
        units = compiled.units_in_stage(stage)
        regs = compiled.registers_in_stage(stage)
        memory = sum(r.size_bits for r in regs)
        if table_memory:
            memory += sum(
                table_memory_bits(info.tables[u.instance.table], info)
                for u in units
                if u.instance.table is not None
            )
        if memory > target.memory_bits_per_stage:
            _fail(f"stage {stage}: memory {memory} exceeds "
                  f"{target.memory_bits_per_stage} bits")
        stateful = sum(target.hf(u.instance.cost) for u in units)
        if stateful > target.stateful_alus_per_stage:
            _fail(f"stage {stage}: {stateful} stateful ALUs exceed "
                  f"{target.stateful_alus_per_stage}")
        stateless = sum(target.hl(u.instance.cost) for u in units)
        if stateless > target.stateless_alus_per_stage:
            _fail(f"stage {stage}: {stateless} stateless ALUs exceed "
                  f"{target.stateless_alus_per_stage}")
        if hash_unit_limits:
            hashes = sum(u.instance.cost.hash_ops for u in units)
            if hashes > target.hash_units_per_stage:
                _fail(f"stage {stage}: {hashes} hash ops exceed "
                      f"{target.hash_units_per_stage} units")

    # -- PHV ---------------------------------------------------------------
    env = dict(info.consts)
    env.update(compiled.symbol_values)
    phv_bits = 0
    for fd in info.metadata.values():
        if fd.array_size is None:
            phv_bits += fd.width
        else:
            phv_bits += fd.width * int(eval_static(fd.array_size, env))
    phv_bits += sum(info.header_fields.values())
    if phv_bits > target.phv_bits:
        _fail(f"PHV allocation {phv_bits} exceeds {target.phv_bits} bits")

    # -- register placement ---------------------------------------------------
    reg_stage = {(r.family, r.index): r.stage for r in compiled.registers}
    family_sizes: dict[str, set[int]] = {}
    for reg in compiled.registers:
        family_sizes.setdefault(reg.family, set()).add(reg.cells)
    for family, sizes in family_sizes.items():
        if len(sizes) > 1:
            _fail(f"register family {family!r} has unequal sizes {sorted(sizes)}")
    for unit in compiled.units:
        for fam, idx in unit.instance.registers:
            placed = reg_stage.get((fam, idx))
            if placed is None:
                _fail(f"unit {unit.label} touches unallocated register "
                      f"{fam}[{idx}]")
            if placed != unit.stage:
                _fail(f"unit {unit.label} in stage {unit.stage} touches "
                      f"register {fam}[{idx}] in stage {placed}")

    # -- dependency ordering ----------------------------------------------------
    instances = [u.instance for u in compiled.units]
    stage_of_uid = {u.instance.uid: u.stage for u in compiled.units}
    graph = build_dependency_graph(sorted(instances, key=lambda i: i.source_order))
    for src, dst in graph.precedence_edges():
        s_src = stage_of_uid[src.instances[0].uid]
        s_dst = stage_of_uid[dst.instances[0].uid]
        if not s_src < s_dst:
            _fail(f"precedence violated: {src.label} (stage {s_src}) must "
                  f"precede {dst.label} (stage {s_dst})")
    for a, b in graph.exclusion_edges():
        s_a = stage_of_uid[a.instances[0].uid]
        s_b = stage_of_uid[b.instances[0].uid]
        if s_a == s_b:
            _fail(f"exclusion violated: {a.label} and {b.label} share "
                  f"stage {s_a}")

    # -- iteration activation forms a prefix -----------------------------------
    by_symbolic: dict[str, set[int]] = {}
    for inst in instances:
        if inst.symbolic is not None:
            by_symbolic.setdefault(inst.symbolic, set()).add(inst.iteration)
    for symbolic, iterations in by_symbolic.items():
        expected = set(range(len(iterations)))
        if iterations != expected:
            _fail(f"iterations of {symbolic!r} are not a prefix: "
                  f"{sorted(iterations)}")
        if compiled.symbol_values.get(symbolic) != len(iterations):
            _fail(f"symbolic {symbolic!r} value "
                  f"{compiled.symbol_values.get(symbolic)} != "
                  f"{len(iterations)} placed iterations")


# ---------------------------------------------------------------------------
# Taint verification (cross-tenant isolation), driver-level.


@dataclass
class _PlanUnitView:
    """Effect surface of one placed unit, shaped like a plan unit."""

    module: "str | None"
    reads: frozenset
    writes: frozenset
    registers: frozenset


@dataclass
class VerifyResult:
    """Outcome of the compile-time taint verification phase.

    ``flows`` are the cross-module flows found in the artifact (already
    downgraded by the linker — a disallowed flow never reaches the
    compiler); ``field_taint``/``register_taint`` are the depgraph-level
    labels; ``agree`` records that the independent plan-level pass
    reproduced them (it is always ``True`` on a returned result —
    disagreement raises :class:`TaintMismatchError` instead).
    """

    modules: list = field(default_factory=list)
    flows: list = field(default_factory=list)
    field_taint: dict = field(default_factory=dict)
    register_taint: dict = field(default_factory=dict)
    agree: bool = True

    @property
    def clean(self) -> bool:
        return not self.flows

    def influencers(self, module: str) -> set:
        """Modules whose state influences any sink owned by ``module``."""
        return {f.source for f in self.flows if f.sink_module == module}

    def flow_matrix(self) -> dict:
        """``{(source, sink): count}`` over the verified flows."""
        matrix: dict = {}
        for f in self.flows:
            key = (f.source, f.sink_module)
            matrix[key] = matrix.get(key, 0) + 1
        return matrix


def verify_taint(compiled: CompiledProgram) -> VerifyResult:
    """Verify cross-tenant isolation on a compiled artifact.

    Runs the depgraph-level taint pass (:mod:`repro.analysis.taint`)
    over the instances elaborated at the *chosen* symbolic values, and
    the independent plan-level pass (:func:`repro.pisa.plan.plan_taint`)
    over the placed units' effect sets, then cross-checks the two label
    maps. Programs without a module namespace (single-program compiles)
    verify trivially.
    """
    ns = compiled.namespace
    if ns is None or not ns.modules:
        return VerifyResult()

    counts = {sym: compiled.symbol_values.get(sym, 1)
              for sym in compiled.ir.loop_symbolics}
    dep = propagate_taint(instantiate(compiled.ir, counts), ns)
    dep_fields, dep_regs = dep.normalized()

    views = [
        _PlanUnitView(
            module=module_of_instance(u.instance, ns),
            reads=frozenset(u.instance.reads),
            writes=frozenset(u.instance.writes),
            registers=frozenset(f for f, _ in u.instance.registers),
        )
        for u in compiled.units
    ]
    plan_fields, plan_regs = plan_taint(views, ns.registers)

    for kind, ours, theirs in (("field", dep_fields, plan_fields),
                               ("register", dep_regs, plan_regs)):
        if ours == theirs:
            continue
        diverging = sorted(
            name for name in set(ours) | set(theirs)
            if ours.get(name) != theirs.get(name)
        )
        name = diverging[0]
        raise TaintMismatchError(
            f"taint verification mismatch on {kind} '{name}': depgraph "
            f"pass says {sorted(ours.get(name, ()))}, plan pass says "
            f"{sorted(theirs.get(name, ()))} — lowering changed the "
            f"program's dataflow ({len(diverging)} diverging {kind}s)"
        )

    flows = cross_module_flows(dep, ns)
    return VerifyResult(
        modules=list(ns.modules),
        flows=flows,
        field_taint=dep_fields,
        register_taint=dep_regs,
        agree=True,
    )
