"""Standalone validation of compiled layouts.

:func:`validate_layout` re-checks a :class:`CompiledProgram` against
every rule the layout ILP encoded — independently of the ILP, from the
artifact alone. The PISA simulator runs the same checks at load time;
this module makes them available without building a pipeline (and is
what the compiler driver's ``verify`` flag and several tests use).

Checks: per-stage memory (registers + table SRAM), stateful/stateless
ALUs, hash units, PHV capacity, register/action co-location, equal sizes
within register families, dependency ordering (precedence strictly
increasing, exclusions in distinct stages), and iteration-prefix
activation.
"""

from __future__ import annotations

from ..analysis.dependencies import build_dependency_graph
from ..lang.symbols import eval_static
from .errors import CompileError
from .program import CompiledProgram
from .tablemem import table_memory_bits

__all__ = ["validate_layout", "LayoutValidationError"]


class LayoutValidationError(CompileError):
    """A compiled layout violates a resource or dependency rule."""


def _fail(message: str) -> None:
    raise LayoutValidationError(message)


def validate_layout(
    compiled: CompiledProgram,
    hash_unit_limits: bool = True,
    table_memory: bool = True,
) -> None:
    """Raise :class:`LayoutValidationError` on any violated rule.

    ``hash_unit_limits``/``table_memory`` mirror the corresponding
    :class:`~repro.core.layout.LayoutOptions` flags, so layouts compiled
    with an extension disabled validate under the same rules.
    """
    target = compiled.target
    info = compiled.info

    # -- per-stage resource budgets ----------------------------------------
    for stage in range(target.stages):
        units = compiled.units_in_stage(stage)
        regs = compiled.registers_in_stage(stage)
        memory = sum(r.size_bits for r in regs)
        if table_memory:
            memory += sum(
                table_memory_bits(info.tables[u.instance.table], info)
                for u in units
                if u.instance.table is not None
            )
        if memory > target.memory_bits_per_stage:
            _fail(f"stage {stage}: memory {memory} exceeds "
                  f"{target.memory_bits_per_stage} bits")
        stateful = sum(target.hf(u.instance.cost) for u in units)
        if stateful > target.stateful_alus_per_stage:
            _fail(f"stage {stage}: {stateful} stateful ALUs exceed "
                  f"{target.stateful_alus_per_stage}")
        stateless = sum(target.hl(u.instance.cost) for u in units)
        if stateless > target.stateless_alus_per_stage:
            _fail(f"stage {stage}: {stateless} stateless ALUs exceed "
                  f"{target.stateless_alus_per_stage}")
        if hash_unit_limits:
            hashes = sum(u.instance.cost.hash_ops for u in units)
            if hashes > target.hash_units_per_stage:
                _fail(f"stage {stage}: {hashes} hash ops exceed "
                      f"{target.hash_units_per_stage} units")

    # -- PHV ---------------------------------------------------------------
    env = dict(info.consts)
    env.update(compiled.symbol_values)
    phv_bits = 0
    for fd in info.metadata.values():
        if fd.array_size is None:
            phv_bits += fd.width
        else:
            phv_bits += fd.width * int(eval_static(fd.array_size, env))
    phv_bits += sum(info.header_fields.values())
    if phv_bits > target.phv_bits:
        _fail(f"PHV allocation {phv_bits} exceeds {target.phv_bits} bits")

    # -- register placement ---------------------------------------------------
    reg_stage = {(r.family, r.index): r.stage for r in compiled.registers}
    family_sizes: dict[str, set[int]] = {}
    for reg in compiled.registers:
        family_sizes.setdefault(reg.family, set()).add(reg.cells)
    for family, sizes in family_sizes.items():
        if len(sizes) > 1:
            _fail(f"register family {family!r} has unequal sizes {sorted(sizes)}")
    for unit in compiled.units:
        for fam, idx in unit.instance.registers:
            placed = reg_stage.get((fam, idx))
            if placed is None:
                _fail(f"unit {unit.label} touches unallocated register "
                      f"{fam}[{idx}]")
            if placed != unit.stage:
                _fail(f"unit {unit.label} in stage {unit.stage} touches "
                      f"register {fam}[{idx}] in stage {placed}")

    # -- dependency ordering ----------------------------------------------------
    instances = [u.instance for u in compiled.units]
    stage_of_uid = {u.instance.uid: u.stage for u in compiled.units}
    graph = build_dependency_graph(sorted(instances, key=lambda i: i.source_order))
    for src, dst in graph.precedence_edges():
        s_src = stage_of_uid[src.instances[0].uid]
        s_dst = stage_of_uid[dst.instances[0].uid]
        if not s_src < s_dst:
            _fail(f"precedence violated: {src.label} (stage {s_src}) must "
                  f"precede {dst.label} (stage {s_dst})")
    for a, b in graph.exclusion_edges():
        s_a = stage_of_uid[a.instances[0].uid]
        s_b = stage_of_uid[b.instances[0].uid]
        if s_a == s_b:
            _fail(f"exclusion violated: {a.label} and {b.label} share "
                  f"stage {s_a}")

    # -- iteration activation forms a prefix -----------------------------------
    by_symbolic: dict[str, set[int]] = {}
    for inst in instances:
        if inst.symbolic is not None:
            by_symbolic.setdefault(inst.symbolic, set()).add(inst.iteration)
    for symbolic, iterations in by_symbolic.items():
        expected = set(range(len(iterations)))
        if iterations != expected:
            _fail(f"iterations of {symbolic!r} are not a prefix: "
                  f"{sorted(iterations)}")
        if compiled.symbol_values.get(symbolic) != len(iterations):
            _fail(f"symbolic {symbolic!r} value "
                  f"{compiled.symbol_values.get(symbolic)} != "
                  f"{len(iterations)} placed iterations")
