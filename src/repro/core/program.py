"""Compiled-program artifacts.

A :class:`CompiledProgram` bundles everything the back ends need:

* the chosen symbolic values and the stage mapping (what the paper's
  compiler hands to a target-specific compiler),
* the placed action instances (consumed by the PISA simulator),
* the concrete register allocation,
* the generated concrete P4 text, and
* phase timings and ILP statistics (reported in Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.ir import ActionInstance, ProgramIR
from ..analysis.unroll import UnrollBounds
from ..lang.symbols import ProgramInfo
from ..pisa.resources import TargetSpec
from .layout import LayoutSolution

__all__ = ["PlacedUnit", "RegisterAlloc", "CompiledProgram", "CompileStats"]


@dataclass
class PlacedUnit:
    """An active action instance with its pipeline stage."""

    instance: ActionInstance
    stage: int

    @property
    def label(self) -> str:
        return self.instance.label


@dataclass
class RegisterAlloc:
    """A placed register instance."""

    family: str
    index: int
    stage: int
    cells: int
    width: int

    @property
    def name(self) -> str:
        return f"{self.family}[{self.index}]"

    @property
    def size_bits(self) -> int:
        return self.cells * self.width


@dataclass
class CompileStats:
    """Per-phase timings (seconds) and ILP size.

    ``analysis_seconds`` covers IR construction plus unroll bounds; the
    ``ir_seconds``/``bounds_seconds`` sub-splits exist for
    ``p4all compile --stats`` and the compile-latency benchmark. The
    ``*_cached`` flags record which phases were served from a
    :class:`~repro.core.cache.CompileCache` (their timings then measure
    the lookup, not the work)."""

    parse_seconds: float = 0.0
    analysis_seconds: float = 0.0
    ir_seconds: float = 0.0
    bounds_seconds: float = 0.0
    ilp_build_seconds: float = 0.0
    ilp_solve_seconds: float = 0.0
    codegen_seconds: float = 0.0
    verify_seconds: float = 0.0
    ilp_variables: int = 0
    ilp_constraints: int = 0
    frontend_cached: bool = False
    bounds_cached: bool = False
    layout_cached: bool = False
    verify_cached: bool = False

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.analysis_seconds
            + self.ilp_build_seconds
            + self.ilp_solve_seconds
            + self.codegen_seconds
            + self.verify_seconds
        )


@dataclass
class CompiledProgram:
    """Result of compiling one P4All program for one target."""

    source_name: str
    target: TargetSpec
    info: ProgramInfo
    ir: ProgramIR
    bounds: UnrollBounds
    solution: LayoutSolution
    units: list[PlacedUnit] = field(default_factory=list)
    registers: list[RegisterAlloc] = field(default_factory=list)
    p4_source: str = ""
    stats: CompileStats = field(default_factory=CompileStats)
    #: taint-verification result (:class:`~repro.core.validate.VerifyResult`)
    #: attached by the driver's verify phase; ``None`` when verification
    #: was disabled or the program has no module namespace.
    verify: object = None

    @property
    def symbol_values(self) -> dict[str, int]:
        return self.solution.symbol_values

    @property
    def namespace(self):
        """Module ownership map when built by the linker, else ``None``."""
        return self.info.namespace

    def units_in_stage(self, stage: int) -> list[PlacedUnit]:
        return [u for u in self.units if u.stage == stage]

    def registers_in_stage(self, stage: int) -> list[RegisterAlloc]:
        return [r for r in self.registers if r.stage == stage]

    def stages_used(self) -> list[int]:
        return sorted({u.stage for u in self.units})

    def total_register_bits(self) -> int:
        return sum(r.size_bits for r in self.registers)

    def family_total_cells(self, family: str) -> int:
        return sum(r.cells for r in self.registers if r.family == family)

    def __repr__(self) -> str:
        syms = ", ".join(f"{k}={v}" for k, v in sorted(self.symbol_values.items()))
        return (
            f"CompiledProgram({self.source_name!r} on {self.target.name}: {syms})"
        )
