"""Utility-function and assume-clause linearization (paper §3.2.4).

Utility functions are arithmetic expressions over symbolic values. The
ILP is linear, so each term must map to a linear expression over layout
variables:

* a bare symbolic → its ILP expression (iteration count or size var);
* ``const * term`` → scaled term;
* ``count_sym * size_sym`` for a register family (e.g. ``rows * cols``)
  → the family's **total allocated cells** ``Σ m[r,i,s]``, which equals
  the product when the equal-size constraint (#10) holds — this is what
  makes the paper's ``0.4*(rows*cols) + 0.6*(kv_items)`` form linear;
* ``min(e1, ..., en)`` of such terms → an auxiliary variable ``t`` with
  ``t <= e_k`` (exact for maximization, since utilities enter the
  objective positively).

``assume`` clauses reuse the same term linearizer on both sides of each
comparison, so memory-floor constraints like
``assume kv_rows * kv_cols * 128 >= 8388608`` work directly.
"""

from __future__ import annotations

from ..ilp import Constraint, LinExpr, Sense, VarType
from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.symbols import ProgramInfo, eval_static
from .errors import UtilityError
from .layout import LayoutModel

__all__ = ["linearize_utility", "linearize_condition", "linearize_term",
           "eval_utility_term"]

_BIG = 1e12


def _try_static(expr: ast.Expr, info: ProgramInfo):
    """Evaluate to a number using only consts; None when symbolics appear."""
    names = {
        n.ident
        for n in ast.walk(expr)
        if isinstance(n, ast.Name)
    }
    if names & set(info.symbolics):
        return None
    try:
        return eval_static(expr, info.consts)
    except SemanticError:
        return None


def linearize_term(expr: ast.Expr, lm: LayoutModel, info: ProgramInfo) -> LinExpr:
    """Translate a utility/assume term into a linear layout expression."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return LinExpr(constant=expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in info.symbolics:
            return lm.symbolic_expr(expr.ident)
        if expr.ident in info.consts:
            return LinExpr(constant=info.consts[expr.ident])
        raise UtilityError(f"unknown name {expr.ident!r} in utility expression")
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -linearize_term(expr.operand, lm, info)
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "+":
            return linearize_term(expr.left, lm, info) + linearize_term(
                expr.right, lm, info
            )
        if expr.op == "-":
            return linearize_term(expr.left, lm, info) - linearize_term(
                expr.right, lm, info
            )
        if expr.op == "*":
            return _linearize_product(expr, lm, info)
        if expr.op == "/":
            divisor = _try_static(expr.right, info)
            if divisor:
                return linearize_term(expr.left, lm, info) * (1.0 / divisor)
            raise UtilityError("division in utility requires a constant divisor")
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.ident == "min":
        arms = [linearize_term(arg, lm, info) for arg in expr.args]
        aux = lm.model.add_var("util_min", lb=-_BIG, ub=_BIG)
        for k, arm in enumerate(arms):
            lm.model.add_constr(
                LinExpr.from_term(aux) <= arm, name=f"util_min[{k}]"
            )
        lm.min_aux.append((aux, arms))
        return LinExpr.from_term(aux)
    raise UtilityError(
        f"cannot linearize utility term of kind {type(expr).__name__}"
    )


def _linearize_product(expr: ast.BinaryOp, lm: LayoutModel,
                       info: ProgramInfo) -> LinExpr:
    left_const = _try_static(expr.left, info)
    right_const = _try_static(expr.right, info)
    if left_const is not None and right_const is not None:
        return LinExpr(constant=left_const * right_const)
    if left_const is not None:
        return left_const * linearize_term(expr.right, lm, info)
    if right_const is not None:
        return linearize_term(expr.left, lm, info) * right_const
    # Symbolic × symbolic: recognize count_sym * size_sym of one register
    # family and rewrite as the family's total allocated cells.
    syms = _bare_symbolic_pair(expr, info)
    if syms is not None:
        family = lm.family_for_product(*syms)
        if family is not None:
            return lm.total_cells_expr(family)
        raise UtilityError(
            f"product {syms[0]!r} * {syms[1]!r} does not match any register "
            "family's (count, size) symbolics, so it cannot be linearized"
        )
    raise UtilityError(
        "only const*term or count_sym*size_sym products are supported in "
        "utility expressions"
    )


def _bare_symbolic_pair(expr: ast.BinaryOp, info: ProgramInfo):
    if isinstance(expr.left, ast.Name) and isinstance(expr.right, ast.Name) \
            and expr.left.ident in info.symbolics \
            and expr.right.ident in info.symbolics:
        return expr.left.ident, expr.right.ident
    return None


def linearize_utility(expr: ast.Expr, lm: LayoutModel,
                      info: ProgramInfo) -> LinExpr:
    """Objective expression for an ``optimize`` declaration."""
    return linearize_term(expr, lm, info)


def eval_utility_term(expr: ast.Expr, env: dict) -> float:
    """Numerically evaluate a utility term at concrete symbol values.

    Unlike :func:`~repro.lang.symbols.eval_static`, this supports the
    ``min``/``max`` calls allowed in utilities, so the greedy backend
    (and per-module attribution) can score any objective the ILP can.
    ``env`` maps symbolic/const names to values.
    """
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.ident in ("min", "max"):
        fn = min if expr.func.ident == "min" else max
        return fn(eval_utility_term(arg, env) for arg in expr.args)
    if isinstance(expr, ast.BinaryOp) and expr.op in _EVAL_OPS:
        return _EVAL_OPS[expr.op](
            eval_utility_term(expr.left, env),
            eval_utility_term(expr.right, env),
        )
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -eval_utility_term(expr.operand, env)
    try:
        return eval_static(expr, env)
    except SemanticError as exc:
        raise UtilityError(f"cannot evaluate utility term: {exc}") from exc


_EVAL_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def linearize_condition(cond: ast.Expr, lm: LayoutModel,
                        info: ProgramInfo) -> list[Constraint]:
    """Translate an assume condition into linear constraints.

    Supports conjunctions of comparisons whose sides are linearizable
    terms. Strict integer comparisons are tightened by one.
    """
    if isinstance(cond, ast.BinaryOp) and cond.op == "&&":
        return linearize_condition(cond.left, lm, info) + linearize_condition(
            cond.right, lm, info
        )
    if isinstance(cond, ast.BinaryOp) and cond.op in ("<", "<=", ">", ">=", "=="):
        left = linearize_term(cond.left, lm, info)
        right = linearize_term(cond.right, lm, info)
        diff = left - right
        if cond.op == "<=":
            return [Constraint(diff, Sense.LE)]
        if cond.op == "<":
            return [Constraint(diff + 1, Sense.LE)]
        if cond.op == ">=":
            return [Constraint(diff, Sense.GE)]
        if cond.op == ">":
            return [Constraint(diff - 1, Sense.GE)]
        return [Constraint(diff, Sense.EQ)]
    if isinstance(cond, ast.BoolLit):
        if cond.value:
            return []
        raise UtilityError("assume false makes the program trivially infeasible")
    raise UtilityError(
        "assume conditions must be conjunctions of linear comparisons; got "
        f"{type(cond).__name__}"
    )
