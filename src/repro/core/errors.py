"""Compiler-core error types."""

from __future__ import annotations

__all__ = ["CompileError", "LayoutInfeasibleError", "UtilityError"]


class CompileError(Exception):
    """A P4All program cannot be compiled for the given target."""


class LayoutInfeasibleError(CompileError):
    """The layout ILP is infeasible: the program cannot fit at any size."""


class UtilityError(CompileError):
    """The utility function (or an assume) cannot be linearized."""
