"""Compiler-core error types."""

from __future__ import annotations

__all__ = [
    "CompileError",
    "LayoutInfeasibleError",
    "LayoutTimeoutError",
    "UtilityError",
]


class CompileError(Exception):
    """A P4All program cannot be compiled for the given target."""


class LayoutInfeasibleError(CompileError):
    """The layout ILP is infeasible: the program cannot fit at any size."""


class LayoutTimeoutError(CompileError):
    """The ILP solver hit its time limit without finding any incumbent.

    Structured so callers (the compile driver, the elastic runtime's
    reconfiguration planner) can catch it and fall back — retry with a
    larger limit, or degrade to the greedy layout — without
    string-matching error messages. ``time_limit`` and ``backend`` record
    the solve attempt that expired.
    """

    def __init__(self, message: str, time_limit: float | None = None,
                 backend: str = ""):
        super().__init__(message)
        self.time_limit = time_limit
        self.backend = backend


class UtilityError(CompileError):
    """The utility function (or an assume) cannot be linearized."""
