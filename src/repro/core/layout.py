"""The layout ILP (paper §4.3, Figure 10).

Given the unrolled program (action instances at their upper bounds), the
dependency graph, and a target, :class:`LayoutBuilder` constructs an ILP
whose solution is simultaneously:

* a concrete assignment for every symbolic value,
* a stage placement for every placed action node, and
* a per-stage memory allocation for every placed register instance.

Variable families (Figure 10):

====================  =====================================================
``x[n, s]``           binary — dependency-graph node ``n`` placed in stage
                      ``s`` (same-stage groups place as a unit, which *is*
                      constraint #4)
``it[v, i]``          binary — iteration ``i`` of symbolic ``v`` is active
                      (the metadata variables ``d_i``, #13/#14, coincide
                      with these)
``size[y]``           integer — cells per register array for size-symbolic
                      ``y`` (shared by every register family sized by it)
``m[r, i, s]``        integer — cells of register instance ``(r, i)``
                      allocated in stage ``s``
====================  =====================================================

Constraint families map to the paper's numbering as follows: #4 node
grouping (structural), #5 exclusion, #6 precedence, #7/#15/#16
iteration-activation coupling and ordering, #8 per-stage memory, #9
register/action co-location, #10 equal sizes, #11/#12 ALU limits,
#13/#14 PHV budget, #17 inelastic placement, plus user assumes and — as
extensions flagged in §4.4 — per-stage hash-unit limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.depgraph import DependencyGraph, DepNode
from ..analysis.dependencies import build_dependency_graph
from ..analysis.ir import ActionInstance, ProgramIR, instantiate
from ..analysis.unroll import UnrollBounds
from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.symbols import eval_static
from ..ilp import LinExpr, Model, Solution, SolveStatus, VarType, solve
from ..pisa.resources import TargetSpec
from .errors import (
    CompileError,
    LayoutInfeasibleError,
    LayoutTimeoutError,
    UtilityError,
)

__all__ = ["LayoutBuilder", "LayoutModel", "LayoutSolution", "RegisterFamily",
           "LayoutOptions"]


@dataclass(frozen=True)
class LayoutOptions:
    """Tunables for the ILP construction."""

    stage_bias: float = 1e-5          # tiny pull toward early stages (determinism)
    symmetry_breaking: bool = True    # monotone stages for first elastic template
    hash_unit_limits: bool = True     # §4.4 extension
    table_memory: bool = True         # §4.4 extension: table SRAM in stage M
    exclusion_as_precedence: bool = False  # prototype-mode ablation


@dataclass
class RegisterFamily:
    """A register declaration expanded to its candidate instances."""

    name: str
    cell_bits: int
    count_symbolic: str | None        # symbolic governing #arrays (or None)
    num_instances: int                # count value or unroll bound
    size_expr: ast.Expr               # cells per array (static expr)
    fixed_cells: int | None           # set when size_expr is fully constant
    size_symbolics: frozenset[str] = frozenset()

    @property
    def max_cells_cap(self) -> int:
        return self.fixed_cells if self.fixed_cells is not None else 0


class LayoutModel:
    """The constructed ILP plus handles for solution extraction."""

    def __init__(self, ir: ProgramIR, target: TargetSpec, options: LayoutOptions):
        self.ir = ir
        self.target = target
        self.options = options
        self.model = Model("p4all-layout")
        self.instances: list[ActionInstance] = []
        self.graph: DependencyGraph | None = None
        self.families: dict[str, RegisterFamily] = {}
        # Variable handles
        self.x: dict[tuple[int, int], object] = {}        # (node_id, stage) -> Var
        self.it: dict[tuple[str, int], object] = {}       # (symbolic, iter) -> Var
        self.size_vars: dict[str, object] = {}            # size-symbolic -> Var
        self.m: dict[tuple[str, int, int], object] = {}   # (family, idx, stage) -> Var
        self.free_sym_vars: dict[str, object] = {}        # unused symbolics
        self.loop_symbolics: list[str] = []
        self.counts: dict[str, int] = {}
        # min()-linearization aux vars with their arms, recorded by
        # utility.linearize_term so warm-start encodings can repair them
        # (aux := min over arm values) after assigning the real variables.
        self.min_aux: list[tuple[object, list[LinExpr]]] = []

    # -- symbolic-value expressions ----------------------------------------------
    def symbolic_expr(self, name: str) -> LinExpr:
        """ILP expression whose value equals symbolic ``name``."""
        if name in self.loop_symbolics:
            return LinExpr.total(
                self.it[(name, i)] for i in range(self.counts.get(name, 0))
            )
        if name in self.size_vars:
            return LinExpr.from_term(self.size_vars[name])
        if name in self.free_sym_vars:
            return LinExpr.from_term(self.free_sym_vars[name])
        raise UtilityError(f"symbolic value {name!r} has no ILP representation")

    def total_cells_expr(self, family: RegisterFamily) -> LinExpr:
        """Sum of allocated cells across all instances/stages of a family."""
        return LinExpr.total(
            self.m[(family.name, i, s)]
            for i in range(family.num_instances)
            for s in range(self.target.stages)
        )

    def family_for_product(self, sym_a: str, sym_b: str) -> RegisterFamily | None:
        """Find a register family whose (count, size) symbolics are the pair."""
        for fam in self.families.values():
            pair = {fam.count_symbolic} | set(fam.size_symbolics)
            if fam.count_symbolic is not None and {sym_a, sym_b} <= pair \
                    and len(fam.size_symbolics) == 1:
                return fam
        return None


@dataclass
class LayoutSolution:
    """Decoded ILP solution."""

    status: SolveStatus
    objective: float
    symbol_values: dict[str, int]
    node_stage: dict[int, int | None]
    instance_stage: dict[int, int | None]      # instance uid -> stage
    register_alloc: dict[tuple[str, int], tuple[int, int]]  # (fam, idx) -> (stage, cells)
    iteration_active: dict[tuple[str, int], bool]
    solve_seconds: float
    backend: str
    num_variables: int
    num_constraints: int
    nodes_explored: int = 0
    incumbent_source: str = ""
    #: per-module objective contribution (weighted), when the program
    #: was linked with per-module utility terms
    utility_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def stages_used(self) -> set[int]:
        return {s for s in self.node_stage.values() if s is not None}

    def memory_bits_by_stage(self, layout: "LayoutModel") -> dict[int, int]:
        out: dict[int, int] = {}
        for (fam, _idx), (stage, cells) in self.register_alloc.items():
            bits = cells * layout.families[fam].cell_bits
            out[stage] = out.get(stage, 0) + bits
        return out


class LayoutBuilder:
    """Constructs and solves the layout ILP."""

    def __init__(
        self,
        ir: ProgramIR,
        bounds: UnrollBounds,
        target: TargetSpec,
        options: LayoutOptions | None = None,
    ):
        self.ir = ir
        self.info = ir.info
        self.bounds = bounds
        self.target = target
        self.options = options or LayoutOptions()
        self.layout = LayoutModel(ir, target, self.options)

    # ------------------------------------------------------------------ build --
    def build(self) -> LayoutModel:
        lm = self.layout
        lm.counts = dict(self.bounds.as_counts())
        lm.loop_symbolics = list(lm.counts)
        lm.instances = instantiate(self.ir, lm.counts)
        lm.graph = build_dependency_graph(
            lm.instances,
            exclusion_as_precedence=self.options.exclusion_as_precedence,
        )
        self._make_register_families()
        self._make_variables()
        self._activation_constraints()          # #7, #15, #16, #17
        self._dependency_constraints()          # #5, #6 (+#4 structurally)
        self._alu_constraints()                 # #11, #12 (+ hash units)
        self._memory_constraints()              # #8, #9, #10
        self._phv_constraints()                 # #13, #14
        self._assume_constraints()
        if self.options.symmetry_breaking:
            self._symmetry_breaking()
        return lm

    # -- register families -------------------------------------------------------
    def _make_register_families(self) -> None:
        lm = self.layout
        used: set[str] = set()
        for inst in lm.instances:
            for fam_name, _idx in inst.registers:
                used.add(fam_name)
        for name, reg in self.info.registers.items():
            if name not in used:
                continue
            decl = reg.decl
            count_sym: str | None = None
            if decl.count is None:
                num = 1
            elif isinstance(decl.count, ast.Name) and \
                    decl.count.ident in self.info.symbolics:
                count_sym = decl.count.ident
                if count_sym not in lm.counts:
                    raise CompileError(
                        f"register {name!r}: count symbolic {count_sym!r} does not "
                        "bound any loop, so its value cannot be inferred"
                    )
                num = lm.counts[count_sym]
            else:
                static = _try_static(decl.count, self.info.consts)
                if static is None:
                    raise CompileError(
                        f"register {name!r}: count must be a constant expression "
                        "or a bare symbolic"
                    )
                num = int(static)
            size_syms = frozenset(
                n.ident
                for n in ast.walk(decl.size)
                if isinstance(n, ast.Name) and n.ident in self.info.symbolics
            )
            fixed_cells: int | None = None
            if not size_syms:
                fixed_cells = int(eval_static(decl.size, self.info.consts))
                if fixed_cells <= 0:
                    raise CompileError(f"register {name!r}: size must be positive")
            lm.families[name] = RegisterFamily(
                name=name,
                cell_bits=reg.cell_bits,
                count_symbolic=count_sym,
                num_instances=num,
                size_expr=decl.size,
                fixed_cells=fixed_cells,
                size_symbolics=size_syms,
            )

    # -- variables ---------------------------------------------------------------
    def _make_variables(self) -> None:
        lm = self.layout
        model = lm.model
        stages = self.target.stages
        for node in lm.graph.nodes:
            for s in range(stages):
                lm.x[(node.node_id, s)] = model.add_var(
                    f"x[{node.label}@{s}]", vartype=VarType.BINARY
                )
        for sym, count in lm.counts.items():
            for i in range(count):
                lm.it[(sym, i)] = model.add_var(
                    f"it[{sym},{i}]", vartype=VarType.BINARY
                )
        # One size variable per size-symbolic, bounded by the tightest family.
        sym_caps: dict[str, int] = {}
        for fam in lm.families.values():
            cap = self.target.memory_bits_per_stage // fam.cell_bits
            if cap <= 0:
                raise CompileError(
                    f"register {fam.name!r}: one {fam.cell_bits}-bit cell does not "
                    f"fit in a stage ({self.target.memory_bits_per_stage} bits)"
                )
            # size_symbolics is a frozenset; sort so variable creation
            # order (and thus LP text) is independent of PYTHONHASHSEED.
            for sym in sorted(fam.size_symbolics):
                sym_caps[sym] = min(sym_caps.get(sym, cap), cap)
        for sym, cap in sym_caps.items():
            lm.size_vars[sym] = model.add_var(
                f"size[{sym}]", lb=1, ub=cap, vartype=VarType.INTEGER
            )
        # Memory variables, in cells.
        for fam in lm.families.values():
            cap = self.target.memory_bits_per_stage // fam.cell_bits
            if fam.fixed_cells is not None:
                cap = min(cap, fam.fixed_cells)
            for i in range(fam.num_instances):
                for s in range(self.target.stages):
                    lm.m[(fam.name, i, s)] = model.add_var(
                        f"m[{fam.name}[{i}]@{s}]", lb=0, ub=cap,
                        vartype=VarType.INTEGER,
                    )
        # Symbolics that are neither loop bounds nor register sizes get a
        # free integer variable (constrained only by assumes).
        for sym in self.info.symbolics:
            if sym not in lm.counts and sym not in lm.size_vars:
                lm.free_sym_vars[sym] = model.add_var(
                    f"sym[{sym}]", lb=0, ub=2 ** 20, vartype=VarType.INTEGER
                )

    # -- helpers ----------------------------------------------------------------
    def _placed(self, node: DepNode) -> LinExpr:
        return LinExpr.total(
            self.layout.x[(node.node_id, s)] for s in range(self.target.stages)
        )

    def _stage_of(self, node: DepNode) -> LinExpr:
        return LinExpr.total(
            s * LinExpr.from_term(self.layout.x[(node.node_id, s)])
            for s in range(self.target.stages)
        )

    def _activation_expr(self, inst: ActionInstance) -> LinExpr | int:
        if inst.symbolic is None:
            return 1
        return LinExpr.from_term(self.layout.it[(inst.symbolic, inst.iteration)])

    # -- #7 / #15 / #16 / #17 ------------------------------------------------------
    def _activation_constraints(self) -> None:
        lm = self.layout
        model = lm.model
        for node in lm.graph.nodes:
            placed = self._placed(node)
            # #15: placed at most once (binary sum over stages).
            model.add_constr(placed <= 1, name=f"place_once[{node.label}]")
            activations = {
                (inst.symbolic, inst.iteration)
                for inst in node.instances
                if inst.symbolic is not None
            }
            has_inelastic = any(inst.symbolic is None for inst in node.instances)
            if has_inelastic:
                # #17: inelastic units must be placed.
                model.add_constr(placed == 1, name=f"inelastic[{node.label}]")
                for key in activations:
                    model.add_constr(
                        LinExpr.from_term(lm.it[key]) == 1,
                        name=f"forced_it[{key[0]},{key[1]}]",
                    )
            else:
                # #7: a node is placed iff its iteration(s) are active.
                for key in activations:
                    model.add_constr(
                        placed == LinExpr.from_term(lm.it[key]),
                        name=f"cond[{node.label}:{key[0]},{key[1]}]",
                    )
        # #16: iterations activate in order.
        for sym, count in lm.counts.items():
            for i in range(count - 1):
                model.add_constr(
                    LinExpr.from_term(lm.it[(sym, i + 1)])
                    <= LinExpr.from_term(lm.it[(sym, i)]),
                    name=f"order[{sym},{i}]",
                )

    # -- #5 / #6 -------------------------------------------------------------------
    def _dependency_constraints(self) -> None:
        lm = self.layout
        model = lm.model
        stages = self.target.stages
        for src, dst in lm.graph.precedence_edges():
            # #6: if both placed, src strictly precedes dst.
            gap = self._stage_of(dst) - self._stage_of(src)
            slack = stages * (2 - self._placed(src) - self._placed(dst))
            model.add_constr(
                gap + slack >= 1, name=f"prec[{src.label}->{dst.label}]"
            )
        for a, b in lm.graph.exclusion_edges():
            # #5: never share a stage.
            for s in range(stages):
                model.add_constr(
                    LinExpr.from_term(lm.x[(a.node_id, s)])
                    + LinExpr.from_term(lm.x[(b.node_id, s)])
                    <= 1,
                    name=f"excl[{a.label}|{b.label}@{s}]",
                )

    # -- #11 / #12 (+ hash units) ----------------------------------------------------
    def _alu_constraints(self) -> None:
        lm = self.layout
        model = lm.model
        for s in range(self.target.stages):
            stateful = LinExpr()
            stateless = LinExpr()
            hashes = LinExpr()
            for node in lm.graph.nodes:
                x = lm.x[(node.node_id, s)]
                hf = sum(self.target.hf(inst.cost) for inst in node.instances)
                hl = sum(self.target.hl(inst.cost) for inst in node.instances)
                hh = sum(inst.cost.hash_ops for inst in node.instances)
                if hf:
                    stateful += hf * LinExpr.from_term(x)
                if hl:
                    stateless += hl * LinExpr.from_term(x)
                if hh:
                    hashes += hh * LinExpr.from_term(x)
            model.add_constr(
                stateful <= self.target.stateful_alus_per_stage,
                name=f"alus_f[{s}]",
            )
            model.add_constr(
                stateless <= self.target.stateless_alus_per_stage,
                name=f"alus_l[{s}]",
            )
            if self.options.hash_unit_limits:
                model.add_constr(
                    hashes <= self.target.hash_units_per_stage,
                    name=f"hash_units[{s}]",
                )

    # -- #8 / #9 / #10 ----------------------------------------------------------------
    def _anchor_node(self, fam: RegisterFamily, idx: int) -> DepNode | None:
        lm = self.layout
        for inst in lm.instances:
            if (fam.name, idx) in inst.registers:
                return lm.graph.node_of(inst)
        return None

    def _cells_expr(self, fam: RegisterFamily) -> LinExpr:
        """Per-array cell count as a linear expression of size variables."""
        if fam.fixed_cells is not None:
            return LinExpr(constant=fam.fixed_cells)
        env = {
            sym: LinExpr.from_term(var) for sym, var in self.layout.size_vars.items()
        }
        return _affine_expr(fam.size_expr, env, self.info.consts)

    def _memory_constraints(self) -> None:
        lm = self.layout
        model = lm.model
        stages = self.target.stages
        # Table SRAM per node (§4.4 extension, flag-controlled).
        table_bits_of_node: dict[int, int] = {}
        if self.options.table_memory:
            from .tablemem import table_memory_bits

            for node in lm.graph.nodes:
                bits = sum(
                    table_memory_bits(self.info.tables[inst.table], self.info)
                    for inst in node.instances
                    if inst.table is not None
                )
                if bits:
                    table_bits_of_node[node.node_id] = bits

        # #8: per-stage memory in bits.
        for s in range(stages):
            usage = LinExpr()
            for fam in lm.families.values():
                for i in range(fam.num_instances):
                    usage += fam.cell_bits * LinExpr.from_term(lm.m[(fam.name, i, s)])
            for node_id, bits in table_bits_of_node.items():
                usage += bits * LinExpr.from_term(lm.x[(node_id, s)])
            model.add_constr(
                usage <= self.target.memory_bits_per_stage, name=f"mem[{s}]"
            )
        for fam in lm.families.values():
            cap = self.target.memory_bits_per_stage // fam.cell_bits
            cells = self._cells_expr(fam)
            for i in range(fam.num_instances):
                anchor = self._anchor_node(fam, i)
                if anchor is None:
                    # Declared but unused instance: no memory.
                    for s in range(stages):
                        model.add_constr(
                            LinExpr.from_term(lm.m[(fam.name, i, s)]) <= 0,
                            name=f"unused[{fam.name}[{i}]@{s}]",
                        )
                    continue
                # #9: memory only where the accessing node is placed.
                for s in range(stages):
                    model.add_constr(
                        LinExpr.from_term(lm.m[(fam.name, i, s)])
                        <= cap * LinExpr.from_term(lm.x[(anchor.node_id, s)]),
                        name=f"coloc[{fam.name}[{i}]@{s}]",
                    )
                total = LinExpr.total(
                    lm.m[(fam.name, i, s)] for s in range(stages)
                )
                placed = self._placed(anchor)
                # #10: placed instances all hold exactly ``cells`` cells.
                model.add_constr(
                    total - cells + cap * (1 - placed) >= 0,
                    name=f"size_lo[{fam.name}[{i}]]",
                )
                model.add_constr(
                    total - cells - cap * (1 - placed) <= 0,
                    name=f"size_hi[{fam.name}[{i}]]",
                )

    # -- #13 / #14 ---------------------------------------------------------------------
    def _phv_constraints(self) -> None:
        lm = self.layout
        model = lm.model
        budget = self.target.phv_bits - self.info.metadata_fixed_bits()
        if budget < 0:
            raise CompileError(
                "fixed metadata alone exceeds the target's PHV capacity "
                f"({self.info.metadata_fixed_bits()} > {self.target.phv_bits} bits)"
            )
        usage = LinExpr()
        for fd in self.info.metadata.values():
            if fd.array_size is None:
                continue
            syms = {
                n.ident
                for n in ast.walk(fd.array_size)
                if isinstance(n, ast.Name) and n.ident in self.info.symbolics
            }
            if not syms:
                usage += fd.width * int(eval_static(fd.array_size, self.info.consts))
                continue
            if len(syms) > 1:
                raise CompileError(
                    f"metadata array {fd.name!r}: extent may reference at most "
                    "one symbolic value"
                )
            sym = syms.pop()
            if sym not in lm.counts:
                raise CompileError(
                    f"metadata array {fd.name!r} is sized by {sym!r}, which does "
                    "not bound any loop"
                )
            # width · (number of active iterations); element i exists iff
            # iteration i is active (#14 with d_i ≡ it_i).
            for i in range(lm.counts[sym]):
                usage += fd.width * LinExpr.from_term(lm.it[(sym, i)])
        model.add_constr(usage <= budget, name="phv")

    # -- assumes ----------------------------------------------------------------------
    def _assume_constraints(self) -> None:
        from .utility import linearize_condition  # cycle-free: late import

        for idx, assume in enumerate(self.info.program.assumes()):
            constraints = linearize_condition(assume.condition, self.layout, self.info)
            for j, constr in enumerate(constraints):
                self.layout.model.add_constr(constr, name=f"assume{idx}.{j}")

    # -- symmetry breaking ---------------------------------------------------------
    def _symmetry_breaking(self) -> None:
        self._symmetry_breaking_elastic()
        self._symmetry_breaking_inelastic()

    def _symmetry_breaking_inelastic(self) -> None:
        """Chain stage order over interchangeable inelastic nodes.

        Two always-placed nodes are interchangeable when they have the same
        ALU costs, anchor single instances of the same register family, and
        have identical precedence/exclusion neighborhoods (outside the
        group). Statically-unrolled structures (e.g. SketchLearn's nine
        levels) otherwise make the MILP explore S!-ish permutations.
        """
        lm = self.layout
        model = lm.model
        groups: dict[tuple, list] = {}
        for node in lm.graph.nodes:
            if any(inst.symbolic is not None for inst in node.instances):
                continue
            nid = node.node_id
            fams = tuple(sorted(
                fam for inst in node.instances for fam, _ in inst.registers
            ))
            costs = tuple(sorted(
                (self.target.hf(i.cost), self.target.hl(i.cost), i.cost.hash_ops)
                for i in node.instances
            ))
            key = (
                fams,
                costs,
                frozenset(lm.graph.precedence_in[nid]),
                frozenset(lm.graph.precedence_out[nid]),
            )
            groups.setdefault(key, []).append(node)
        for (fams, costs, pin, pout), nodes in groups.items():
            if len(nodes) < 2:
                continue
            ids = {n.node_id for n in nodes}
            # Exclusion neighborhoods must match outside the group.
            shapes = {
                frozenset(lm.graph.exclusion[n.node_id] - ids) for n in nodes
            }
            if len(shapes) != 1:
                continue
            # Intra-group exclusion must be uniform (all-pairs or none).
            intra_sizes = {
                len(lm.graph.exclusion[n.node_id] & ids) for n in nodes
            }
            if intra_sizes not in ({0}, {len(nodes) - 1}):
                continue
            nodes.sort(key=lambda n: n.node_id)
            for a, b in zip(nodes, nodes[1:]):
                model.add_constr(
                    self._stage_of(b) - self._stage_of(a) >= 0,
                    name=f"symbreak_ne[{a.label}<={b.label}]",
                )

    def _symmetry_breaking_elastic(self) -> None:
        lm = self.layout
        model = lm.model
        stages = self.target.stages
        for sym, count in lm.counts.items():
            # First template of this symbolic: earliest instance per iteration.
            per_iter: dict[int, ActionInstance] = {}
            for inst in lm.instances:
                if inst.symbolic == sym and inst.iteration not in per_iter:
                    per_iter[inst.iteration] = inst
            nodes = []
            seen_nodes = set()
            for i in range(count):
                inst = per_iter.get(i)
                if inst is None:
                    return
                node = lm.graph.node_of(inst)
                if node.node_id in seen_nodes:
                    return  # shared nodes across iterations: skip breaking
                seen_nodes.add(node.node_id)
                nodes.append(node)
            for i in range(len(nodes) - 1):
                a, b = nodes[i], nodes[i + 1]
                model.add_constr(
                    self._stage_of(b) - self._stage_of(a)
                    + stages * (1 - self._placed(b))
                    >= 0,
                    name=f"symbreak[{sym},{i}]",
                )

    # ---------------------------------------------------------------- warm start --
    def encode_assignment(
        self,
        symbol_values: dict[str, int],
        instance_stage: dict[int, int | None],
        register_alloc: dict[tuple[str, int], tuple[int, int]],
        iteration_active: dict[tuple[str, int], bool],
    ) -> dict | None:
        """Translate a decoded layout back into an ILP variable assignment.

        Returns ``None`` when the layout cannot be expressed in this
        model (e.g. instances of one dependency node mapped to different
        stages, which happens when the instance universe shifted between
        targets). The result is *not* feasibility-checked here — callers
        gate on :meth:`Model.is_feasible` — but ``min()`` aux variables
        are repaired so a genuinely feasible layout round-trips. Must be
        called after the objective is attached (aux vars exist then).
        """
        lm = self.layout
        values: dict = {var: 0.0 for var in lm.x.values()}

        # x: node placements, derived from per-instance stages.
        node_stage: dict[int, int | None] = {}
        by_uid = {inst.uid: inst for inst in lm.instances}
        for uid, stage in instance_stage.items():
            inst = by_uid.get(uid)
            if inst is None:
                continue  # instance existed only under the old bounds
            nid = lm.graph.node_of(inst).node_id
            if nid in node_stage and node_stage[nid] != stage:
                return None  # grouped instances must share a stage
            node_stage[nid] = stage
        for nid, stage in node_stage.items():
            if stage is None:
                continue
            var = lm.x.get((nid, stage))
            if var is None:
                return None  # stage out of range for this target
            values[var] = 1.0

        for (sym, i), var in lm.it.items():
            values[var] = 1.0 if iteration_active.get((sym, i), False) else 0.0
        for sym, var in lm.size_vars.items():
            val = float(symbol_values.get(sym, var.lb))
            values[var] = min(max(val, var.lb), var.ub)
        for sym, var in lm.free_sym_vars.items():
            val = float(symbol_values.get(sym, var.lb))
            values[var] = min(max(val, var.lb), var.ub)
        for key, var in lm.m.items():
            values[var] = 0.0
        for (fam, idx), (stage, cells) in register_alloc.items():
            var = lm.m.get((fam, idx, stage))
            if var is None:
                return None
            values[var] = min(float(cells), var.ub)
        # Aux vars from min() linearization: tight value is the arm min.
        for aux, arms in lm.min_aux:
            values[aux] = min(arm.value(values) for arm in arms)
        return values

    def encode_warm_start(self, prev: LayoutSolution) -> dict | None:
        """Encode a previous layout as a feasible incumbent, if it still is.

        A layout solved for an earlier target often remains feasible
        after a resource change (e.g. a memory *increase*, or a cut the
        layout happened not to exceed); re-validated against the new
        model it becomes a free lower bound for branch and bound. Returns
        ``None`` when the old layout no longer fits."""
        values = self.encode_assignment(
            prev.symbol_values,
            prev.instance_stage,
            prev.register_alloc,
            prev.iteration_active,
        )
        if values is None or not self.layout.model.is_feasible(values, tol=1e-6):
            return None
        return values

    def greedy_warm_start(self) -> dict | None:
        """Encode the greedy first-fit layout as an incumbent.

        Always available (greedy never fails short of true
        infeasibility), so it is the fallback seed when the previous
        layout does not survive the target change."""
        from .greedy import greedy_layout

        result = greedy_layout(self.ir, self.bounds, self.target)
        iteration_active = {
            (inst.symbolic, inst.iteration):
                result.instance_stage[inst.uid] is not None
            for inst in result.instances
            if inst.symbolic is not None
        }
        values = self.encode_assignment(
            result.symbol_values,
            result.instance_stage,
            result.register_alloc,
            iteration_active,
        )
        if values is None or not self.layout.model.is_feasible(values, tol=1e-6):
            return None
        return values

    # ------------------------------------------------------------------- solve --
    def solve(
        self,
        utility: ast.Expr | None = None,
        backend: str = "auto",
        time_limit: float | None = None,
        warm_start: LayoutSolution | None = None,
        utility_terms=None,
        floors: dict[str, float] | None = None,
    ) -> LayoutSolution:
        """Build (if needed), attach the objective, solve, and decode.

        ``warm_start`` is a previous :class:`LayoutSolution` to seed the
        solver's incumbent: re-encoded and re-validated against *this*
        model, with the greedy layout as fallback seed when the previous
        layout no longer fits the target. Only the branch-and-bound
        backend can exploit it; others ignore the seed.

        ``utility_terms`` — (module, weight, term-expr) triples from the
        linker — make the objective the explicit weighted sum of
        per-module utilities, decoded into
        :attr:`LayoutSolution.utility_breakdown`. ``floors`` (module →
        minimum weighted utility) become hard constraints. When
        ``utility_terms`` is given it takes precedence over ``utility``
        (the latter is the same expression unsplit)."""
        from .utility import linearize_term, linearize_utility

        lm = self.layout
        if lm.graph is None:
            self.build()
        objective = LinExpr()
        term_exprs: dict[str, LinExpr] = {}
        if utility_terms:
            for module, weight, term in utility_terms:
                lin = linearize_term(term, lm, self.info) * float(weight)
                if module in term_exprs:
                    term_exprs[module] = term_exprs[module] + lin
                else:
                    term_exprs[module] = lin
                objective += lin
        elif utility is not None:
            objective += linearize_utility(utility, lm, self.info)
        if self.options.stage_bias:
            for (node_id, s), var in lm.x.items():
                objective += (-self.options.stage_bias * s) * LinExpr.from_term(var)
        lm.model.maximize(objective, terms=term_exprs)
        for module, floor in sorted((floors or {}).items()):
            lin = term_exprs.get(module)
            if lin is None:
                raise UtilityError(
                    f"utility floor names module {module!r}, which "
                    "contributes no utility term"
                )
            lm.model.add_constr(lin >= float(floor),
                                name=f"util_floor[{module}]")
        warm_values = None
        if warm_start is not None:
            warm_values = self.encode_warm_start(warm_start)
            if warm_values is None:
                warm_values = self.greedy_warm_start()
        solution = solve(
            lm.model, backend=backend, time_limit=time_limit,
            warm_start=warm_values,
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise LayoutInfeasibleError(
                "the layout ILP is infeasible: the program cannot fit on "
                f"target {self.target.name!r} at any size"
            )
        if solution.status is SolveStatus.TIMEOUT and not solution.has_incumbent:
            raise LayoutTimeoutError(
                f"the layout ILP hit its time limit ({time_limit}s) on "
                f"target {self.target.name!r} before finding any incumbent",
                time_limit=time_limit,
                backend=solution.backend,
            )
        return self._decode(solution, term_exprs)

    def _decode(self, solution: Solution,
                term_exprs: dict[str, LinExpr] | None = None) -> LayoutSolution:
        lm = self.layout
        node_stage: dict[int, int | None] = {}
        for node in lm.graph.nodes:
            stage = None
            for s in range(self.target.stages):
                if solution.int_value(lm.x[(node.node_id, s)]):
                    stage = s
                    break
            node_stage[node.node_id] = stage
        instance_stage = {
            inst.uid: node_stage[lm.graph.node_of(inst).node_id]
            for inst in lm.instances
        }
        iteration_active = {
            key: bool(solution.int_value(var)) for key, var in lm.it.items()
        }
        register_alloc: dict[tuple[str, int], tuple[int, int]] = {}
        for (fam, i, s), var in lm.m.items():
            cells = solution.int_value(var)
            if cells > 0:
                register_alloc[(fam, i)] = (s, cells)
        symbol_values: dict[str, int] = {}
        for sym in self.info.symbolics:
            if sym in lm.counts:
                symbol_values[sym] = sum(
                    1
                    for i in range(lm.counts[sym])
                    if iteration_active.get((sym, i), False)
                )
            elif sym in lm.size_vars:
                symbol_values[sym] = solution.int_value(lm.size_vars[sym])
            elif sym in lm.free_sym_vars:
                symbol_values[sym] = solution.int_value(lm.free_sym_vars[sym])
        return LayoutSolution(
            status=solution.status,
            objective=solution.objective,
            symbol_values=symbol_values,
            node_stage=node_stage,
            instance_stage=instance_stage,
            register_alloc=register_alloc,
            iteration_active=iteration_active,
            solve_seconds=solution.solve_seconds,
            backend=solution.backend,
            num_variables=lm.model.num_variables,
            num_constraints=lm.model.num_constraints,
            nodes_explored=solution.nodes_explored,
            incumbent_source=solution.incumbent_source,
            utility_breakdown={
                module: lin.value(solution.values)
                for module, lin in (term_exprs or {}).items()
            },
        )


def _affine_expr(
    expr: ast.Expr,
    env: dict[str, LinExpr],
    consts: dict[str, int],
) -> LinExpr:
    """Evaluate a static expression to a LinExpr, affine in ``env`` names."""
    if isinstance(expr, ast.IntLit):
        return LinExpr(constant=expr.value)
    if isinstance(expr, ast.FloatLit):
        return LinExpr(constant=expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident in env:
            return env[expr.ident].copy()
        if expr.ident in consts:
            return LinExpr(constant=consts[expr.ident])
        raise UtilityError(f"cannot use {expr.ident!r} in a static linear expression")
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -_affine_expr(expr.operand, env, consts)
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "+":
            return _affine_expr(expr.left, env, consts) + _affine_expr(
                expr.right, env, consts
            )
        if expr.op == "-":
            return _affine_expr(expr.left, env, consts) - _affine_expr(
                expr.right, env, consts
            )
        if expr.op == "*":
            left = _try_static(expr.left, consts)
            right = _try_static(expr.right, consts)
            if left is not None:
                return left * _affine_expr(expr.right, env, consts)
            if right is not None:
                return _affine_expr(expr.left, env, consts) * right
            raise UtilityError(
                "products of two symbolic expressions are not affine here"
            )
        if expr.op == "/":
            right = _try_static(expr.right, consts)
            if right:
                return _affine_expr(expr.left, env, consts) * (1.0 / right)
    raise UtilityError(
        f"expression is not affine in the symbolic values: {type(expr).__name__}"
    )


def _try_static(expr: ast.Expr, consts: dict[str, int]):
    try:
        return eval_static(expr, consts)
    except SemanticError:
        return None
