"""Human-readable layout reports (Figure-7-style stage maps)."""

from __future__ import annotations

from .program import CompiledProgram

__all__ = ["layout_report", "stats_report", "summary_line"]


def summary_line(compiled: CompiledProgram) -> str:
    """One line: chosen symbolic values plus timing."""
    syms = ", ".join(f"{k}={v}" for k, v in sorted(compiled.symbol_values.items()))
    return (
        f"{compiled.source_name}: {syms} "
        f"(objective {compiled.solution.objective:.4g}, "
        f"{compiled.stats.total_seconds:.2f}s, "
        f"ILP {compiled.stats.ilp_variables} vars / "
        f"{compiled.stats.ilp_constraints} constrs)"
    )


def stats_report(compiled: CompiledProgram) -> str:
    """Per-phase wall-time table (``p4all compile --stats``).

    Phases served from a :class:`~repro.core.cache.CompileCache` are
    flagged ``(cached)`` — their time is the lookup, not the work."""
    s = compiled.stats
    front = " (cached)" if s.frontend_cached else ""
    bound = " (cached)" if s.bounds_cached else ""
    rows = [
        ("parse + check", s.parse_seconds, front),
        ("IR + dependencies", s.ir_seconds, front),
        ("unroll bounds", s.bounds_seconds, bound),
        ("ILP build", s.ilp_build_seconds, ""),
        ("ILP solve", s.ilp_solve_seconds, ""),
        ("codegen", s.codegen_seconds, ""),
    ]
    width = max(len(name) for name, _, _ in rows)
    lines = [f"Compile phases for {compiled.source_name}:"]
    if s.layout_cached:
        lines[0] += " (served from layout cache; original compile's timings)"
    for name, seconds, note in rows:
        lines.append(f"  {name:<{width}}  {seconds * 1e3:10.3f} ms{note}")
    lines.append(f"  {'total':<{width}}  {s.total_seconds * 1e3:10.3f} ms")
    lines.append(
        f"  ILP size: {s.ilp_variables} variables, "
        f"{s.ilp_constraints} constraints "
        f"({compiled.solution.backend or 'n/a'}"
        + (f", {compiled.solution.nodes_explored} nodes"
           if compiled.solution.nodes_explored else "")
        + (f", incumbent from {compiled.solution.incumbent_source}"
           if compiled.solution.incumbent_source else "")
        + ")"
    )
    return "\n".join(lines)


def layout_report(compiled: CompiledProgram) -> str:
    """Multi-line per-stage report: actions, registers, memory use."""
    target = compiled.target
    lines = [
        f"Layout of {compiled.source_name} on {target.name} "
        f"(S={target.stages}, M={target.memory_bits_per_stage} b/stage)",
        f"  symbolic values: "
        + ", ".join(f"{k}={v}" for k, v in sorted(compiled.symbol_values.items())),
        f"  ILP: {compiled.stats.ilp_variables} variables, "
        f"{compiled.stats.ilp_constraints} constraints, "
        f"solved in {compiled.stats.ilp_solve_seconds:.3f}s "
        f"({compiled.solution.backend})",
    ]
    for stage in range(target.stages):
        units = compiled.units_in_stage(stage)
        regs = compiled.registers_in_stage(stage)
        if not units and not regs:
            continue
        mem = sum(r.size_bits for r in regs)
        pct = 100.0 * mem / target.memory_bits_per_stage
        lines.append(f"  stage {stage}: memory {mem} b ({pct:.1f}%)")
        for unit in units:
            lines.append(f"    action   {unit.label}")
        for reg in regs:
            lines.append(
                f"    register {reg.name}: {reg.cells} x {reg.width} b"
            )
    return "\n".join(lines)
