"""Human-readable layout reports (Figure-7-style stage maps)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.ir import module_of_instance
from .program import CompiledProgram

__all__ = ["layout_report", "stats_report", "summary_line",
           "ModuleAttribution", "module_attribution", "module_report"]


def summary_line(compiled: CompiledProgram) -> str:
    """One line: chosen symbolic values plus timing."""
    syms = ", ".join(f"{k}={v}" for k, v in sorted(compiled.symbol_values.items()))
    return (
        f"{compiled.source_name}: {syms} "
        f"(objective {compiled.solution.objective:.4g}, "
        f"{compiled.stats.total_seconds:.2f}s, "
        f"ILP {compiled.stats.ilp_variables} vars / "
        f"{compiled.stats.ilp_constraints} constrs)"
    )


def stats_report(compiled: CompiledProgram) -> str:
    """Per-phase wall-time table (``p4all compile --stats``).

    Phases served from a :class:`~repro.core.cache.CompileCache` are
    flagged ``(cached)`` — their time is the lookup, not the work."""
    s = compiled.stats
    front = " (cached)" if s.frontend_cached else ""
    bound = " (cached)" if s.bounds_cached else ""
    rows = [
        ("parse + check", s.parse_seconds, front),
        ("IR + dependencies", s.ir_seconds, front),
        ("unroll bounds", s.bounds_seconds, bound),
        ("ILP build", s.ilp_build_seconds, ""),
        ("ILP solve", s.ilp_solve_seconds, ""),
        ("codegen", s.codegen_seconds, ""),
    ]
    width = max(len(name) for name, _, _ in rows)
    lines = [f"Compile phases for {compiled.source_name}:"]
    if s.layout_cached:
        lines[0] += " (served from layout cache; original compile's timings)"
    for name, seconds, note in rows:
        lines.append(f"  {name:<{width}}  {seconds * 1e3:10.3f} ms{note}")
    lines.append(f"  {'total':<{width}}  {s.total_seconds * 1e3:10.3f} ms")
    lines.append(
        f"  ILP size: {s.ilp_variables} variables, "
        f"{s.ilp_constraints} constraints "
        f"({compiled.solution.backend or 'n/a'}"
        + (f", {compiled.solution.nodes_explored} nodes"
           if compiled.solution.nodes_explored else "")
        + (f", incumbent from {compiled.solution.incumbent_source}"
           if compiled.solution.incumbent_source else "")
        + ")"
    )
    return "\n".join(lines)


def layout_report(compiled: CompiledProgram) -> str:
    """Multi-line per-stage report: actions, registers, memory use."""
    target = compiled.target
    lines = [
        f"Layout of {compiled.source_name} on {target.name} "
        f"(S={target.stages}, M={target.memory_bits_per_stage} b/stage)",
        f"  symbolic values: "
        + ", ".join(f"{k}={v}" for k, v in sorted(compiled.symbol_values.items())),
        f"  ILP: {compiled.stats.ilp_variables} variables, "
        f"{compiled.stats.ilp_constraints} constraints, "
        f"solved in {compiled.stats.ilp_solve_seconds:.3f}s "
        f"({compiled.solution.backend})",
    ]
    for stage in range(target.stages):
        units = compiled.units_in_stage(stage)
        regs = compiled.registers_in_stage(stage)
        if not units and not regs:
            continue
        mem = sum(r.size_bits for r in regs)
        pct = 100.0 * mem / target.memory_bits_per_stage
        lines.append(f"  stage {stage}: memory {mem} b ({pct:.1f}%)")
        for unit in units:
            lines.append(f"    action   {unit.label}")
        for reg in regs:
            lines.append(
                f"    register {reg.name}: {reg.cells} x {reg.width} b"
            )
    return "\n".join(lines)


@dataclass
class ModuleAttribution:
    """Resources one linked module consumes in a solved layout."""

    module: str
    units: int = 0
    stages: list[int] = field(default_factory=list)
    memory_bits: int = 0
    register_cells: int = 0
    stateful_alus: int = 0
    stateless_alus: int = 0
    hash_ops: int = 0
    symbols: dict[str, int] = field(default_factory=dict)
    utility: float = 0.0
    utility_share: float = 0.0

    def to_dict(self) -> dict:
        return {
            "units": self.units,
            "stages": list(self.stages),
            "memory_bits": self.memory_bits,
            "register_cells": self.register_cells,
            "stateful_alus": self.stateful_alus,
            "stateless_alus": self.stateless_alus,
            "hash_ops": self.hash_ops,
            "symbols": dict(self.symbols),
            "utility": self.utility,
            "utility_share": self.utility_share,
        }


def module_attribution(
    compiled: CompiledProgram,
) -> dict[str, ModuleAttribution]:
    """Attribute stages, memory, and ALUs of a layout per linked module.

    Returns an empty dict for programs without module identity (plain
    string compiles). Units and registers nothing claims land in the
    ``"(app)"`` bucket, which is omitted when empty.
    """
    namespace = getattr(compiled.info, "namespace", None)
    if namespace is None:
        return {}
    target = compiled.target
    buckets = {
        name: ModuleAttribution(module=name)
        for name in list(namespace.modules) + ["(app)"]
    }
    stage_sets: dict[str, set] = {name: set() for name in buckets}

    def bucket(owner):
        return buckets[owner if owner in buckets else "(app)"]

    for unit in compiled.units:
        owner = module_of_instance(unit.instance, namespace) or "(app)"
        b = bucket(owner)
        b.units += 1
        stage_sets[b.module].add(unit.stage)
        alus = target.alu_breakdown(unit.instance.cost)
        b.stateful_alus += alus["stateful"]
        b.stateless_alus += alus["stateless"]
        b.hash_ops += alus["hash"]
    for reg in compiled.registers:
        b = bucket(namespace.registers.get(reg.family, "(app)"))
        b.memory_bits += reg.size_bits
        b.register_cells += reg.cells
        stage_sets[b.module].add(reg.stage)
    for sym, owner in namespace.symbolics.items():
        if owner in buckets and sym in compiled.symbol_values:
            buckets[owner].symbols[sym] = compiled.symbol_values[sym]

    breakdown = getattr(compiled.solution, "utility_breakdown", {}) or {}
    total = sum(breakdown.values())
    for module, value in breakdown.items():
        if module in buckets:
            buckets[module].utility = value
            buckets[module].utility_share = value / total if total else 0.0
    for name, b in buckets.items():
        b.stages = sorted(stage_sets[name])
    app = buckets["(app)"]
    if not (app.units or app.memory_bits or app.utility):
        del buckets["(app)"]
    return buckets


def module_report(compiled: CompiledProgram) -> str:
    """Per-module attribution table for a linked compile."""
    attribution = module_attribution(compiled)
    if not attribution:
        return f"{compiled.source_name}: no module identity (not linked)"
    lines = [f"Per-module attribution for {compiled.source_name}:"]
    header = (f"  {'module':<12} {'units':>5} {'stages':<10} "
              f"{'memory':>10} {'ALUs F/L':>9} {'utility (share)':>18}")
    lines.append(header)
    for name, b in attribution.items():
        stages = (f"{b.stages[0]}-{b.stages[-1]}" if len(b.stages) > 1
                  else (str(b.stages[0]) if b.stages else "-"))
        syms = ", ".join(f"{k}={v}" for k, v in sorted(b.symbols.items()))
        lines.append(
            f"  {name:<12} {b.units:>5} {stages:<10} "
            f"{b.memory_bits:>8} b {b.stateful_alus:>4}/{b.stateless_alus:<4} "
            f"{b.utility:>10.4g} ({100.0 * b.utility_share:.1f}%)"
            + (f"  [{syms}]" if syms else "")
        )
    return "\n".join(lines)
