"""Structured telemetry for the elastic runtime.

Every control-plane decision — reconfiguration triggers, compile
attempts and fallbacks, migration outcomes, hot swaps, rollbacks — is
emitted as a :class:`TelemetryEvent` on a :class:`TelemetryBus`. Events
are plain data (JSON-serializable dicts), so the same stream feeds the
in-memory assertions the tests make, the ``p4all run`` report, the
runtime eval experiment, and an optional JSON-lines sink on disk.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = ["TelemetryEvent", "TelemetryBus"]


@dataclass
class TelemetryEvent:
    """One structured runtime event.

    ``kind`` is a stable identifier (``reconfig_triggered``,
    ``compile_attempt``, ``ilp_fallback``, ``migration``,
    ``swap_committed``, ``rollback``, ``window``, ...); ``packet_index``
    is the position in the packet stream when the event fired (``None``
    for events outside a run); ``data`` carries kind-specific fields.
    """

    seq: int
    kind: str
    packet_index: int | None = None
    wall_time: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "packet_index": self.packet_index,
            "wall_time": self.wall_time,
            **self.data,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class TelemetryBus:
    """Collects runtime events; optionally streams them to a JSONL file.

    ``subscribe`` registers a callback invoked synchronously on every
    event (the eval harness uses this to narrate progress); subscriber
    exceptions propagate — the bus is for observability, not isolation.
    """

    def __init__(self, sink: str | Path | None = None):
        self.events: list[TelemetryEvent] = []
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []
        self._sink_path = Path(sink) if sink is not None else None
        self._seq = 0

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, kind: str, packet_index: int | None = None,
             **data: Any) -> TelemetryEvent:
        event = TelemetryEvent(
            seq=self._seq,
            kind=kind,
            packet_index=packet_index,
            wall_time=time.time(),
            data=data,
        )
        self._seq += 1
        self.events.append(event)
        if self._sink_path is not None:
            with self._sink_path.open("a") as fh:
                fh.write(event.to_json() + "\n")
        for callback in self._subscribers:
            callback(event)
        return event

    # -- queries ---------------------------------------------------------------
    def events_of(self, kind: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def last_of(self, kind: str) -> TelemetryEvent | None:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def write_jsonl(self, path: str | Path) -> int:
        """Dump every collected event to ``path``; returns the count."""
        path = Path(path)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(event.to_json() + "\n")
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)
