"""Structured telemetry for the elastic runtime.

Every control-plane decision — reconfiguration triggers, compile
attempts and fallbacks, migration outcomes, hot swaps, rollbacks — is
emitted as a :class:`TelemetryEvent` on a :class:`TelemetryBus`. Events
are plain data (JSON-serializable dicts), so the same stream feeds the
in-memory assertions the tests make, the ``p4all run`` report, the
runtime eval experiment, and an optional JSON-lines sink on disk.

The bus also feeds the observability layer:
:func:`repro.obs.bridge.bridge_telemetry` subscribes a mirror that
turns every event into a span-tree instant and a per-kind counter.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TextIO

__all__ = ["TelemetryEvent", "TelemetryBus"]

#: Core field names of :meth:`TelemetryEvent.to_dict`; colliding keys in
#: ``data`` are re-keyed ``data_<key>`` rather than silently shadowing.
_CORE_FIELDS = ("seq", "kind", "packet_index", "wall_time", "perf_time")


@dataclass
class TelemetryEvent:
    """One structured runtime event.

    ``kind`` is a stable identifier (``reconfig_triggered``,
    ``compile_attempt``, ``ilp_fallback``, ``migration``,
    ``swap_committed``, ``rollback``, ``window``, ...); ``packet_index``
    is the position in the packet stream when the event fired (``None``
    for events outside a run); ``data`` carries kind-specific fields.
    ``wall_time`` is ``time.time()`` at emission (for correlating with
    the outside world) and ``perf_time`` is ``time.perf_counter()``
    (monotonic — safe for computing intervals between events even
    across a wall-clock adjustment).
    """

    seq: int
    kind: str
    packet_index: int | None = None
    wall_time: float = 0.0
    perf_time: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "packet_index": self.packet_index,
            "wall_time": self.wall_time,
            "perf_time": self.perf_time,
        }
        for key, value in self.data.items():
            out[f"data_{key}" if key in _CORE_FIELDS else key] = value
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class TelemetryBus:
    """Collects runtime events; optionally streams them to a JSONL file.

    ``subscribe`` registers a callback invoked synchronously on every
    event (the eval harness uses this to narrate progress); subscriber
    exceptions propagate — the bus is for observability, not isolation.

    The sink file is opened lazily on the first emit and the handle is
    held (appending) until :meth:`close` — the bus is usable as a
    context manager. Each event is flushed as written, so a crashed run
    still leaves a complete stream behind.
    """

    def __init__(self, sink: str | Path | None = None):
        self.events: list[TelemetryEvent] = []
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_fh: TextIO | None = None
        self._seq = 0

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, kind: str, packet_index: int | None = None,
             **data: Any) -> TelemetryEvent:
        event = TelemetryEvent(
            seq=self._seq,
            kind=kind,
            packet_index=packet_index,
            wall_time=time.time(),
            perf_time=time.perf_counter(),
            data=data,
        )
        self._seq += 1
        self.events.append(event)
        if self._sink_path is not None:
            if self._sink_fh is None:
                self._sink_fh = self._sink_path.open("a")
            self._sink_fh.write(event.to_json() + "\n")
            self._sink_fh.flush()
        for callback in self._subscribers:
            callback(event)
        return event

    def close(self) -> None:
        """Close the sink file handle, if one was opened. Safe to call
        repeatedly; a later emit reopens the sink (still appending)."""
        if self._sink_fh is not None:
            self._sink_fh.close()
            self._sink_fh = None

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- queries ---------------------------------------------------------------
    def events_of(self, kind: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def last_of(self, kind: str) -> TelemetryEvent | None:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def write_jsonl(self, path: str | Path) -> int:
        """Dump every collected event to ``path``; returns the count."""
        path = Path(path)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(event.to_json() + "\n")
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)
