"""Elastic runtime control plane: monitor → recompile → hot-swap.

The compiler makes P4All programs *elastic at compile time*; this
package makes the deployment elastic *at run time*. It watches a live
(simulated) pipeline under a churning workload, re-invokes the compiler
when conditions change — an operator re-provisioning the target, or the
hit rate drifting away from steady state — migrates register state onto
the new layout, validates, and hot-swaps. Structured telemetry covers
every decision.

Modules:

* :mod:`~repro.runtime.monitor` — sliding-window hit rate / occupancy /
  drift signals;
* :mod:`~repro.runtime.planner` — recompilation with timeout retry,
  backoff, and greedy fallback (never leaves the pipeline unconfigured);
* :mod:`~repro.runtime.migrate` — register-state migration (CMS counter
  folding, heat-ranked KV re-admission);
* :mod:`~repro.runtime.telemetry` — structured JSON event bus;
* :mod:`~repro.runtime.controller` — :class:`ElasticRuntime`, the loop
  tying them together.
"""

from .controller import ElasticRuntime, ReconfigRecord, RunReport, RuntimeConfig
from .migrate import (
    MigrationReport,
    QuiesceError,
    RegisterSnapshot,
    RestoreReport,
    fold_counters,
    migrate_netcache_state,
    readmit_by_heat,
    restore_registers,
    snapshot_registers,
)
from .monitor import TrafficMonitor, WindowSample
from .planner import PlanError, PlanResult, ReconfigPlanner
from .telemetry import TelemetryBus, TelemetryEvent

__all__ = [
    "ElasticRuntime",
    "ReconfigRecord",
    "RunReport",
    "RuntimeConfig",
    "MigrationReport",
    "QuiesceError",
    "RegisterSnapshot",
    "RestoreReport",
    "fold_counters",
    "migrate_netcache_state",
    "readmit_by_heat",
    "restore_registers",
    "snapshot_registers",
    "TrafficMonitor",
    "WindowSample",
    "PlanError",
    "PlanResult",
    "ReconfigPlanner",
    "TelemetryBus",
    "TelemetryEvent",
]
