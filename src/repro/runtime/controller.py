"""The elastic runtime control plane: monitor → recompile → hot-swap.

:class:`ElasticRuntime` closes the loop the paper leaves open: it runs a
compiled NetCache pipeline under a live key stream and *reconfigures it
online*. Two triggers arm a reconfiguration:

* **target change** — the operator re-provisions the data plane (e.g.
  shrinks per-stage register memory M); requested with
  :meth:`set_target` or scheduled mid-run with
  :meth:`schedule_target_change`;
* **drift** — the monitor sees the windowed hit rate fall below the
  steady baseline (the hot set moved faster than the cache followed).

A reconfiguration runs the full cycle: plan (ILP with retry/backoff,
greedy fallback — see :mod:`repro.runtime.planner`), build the new
pipeline, migrate register state onto it
(:mod:`repro.runtime.migrate`), re-validate the populated layout with
:func:`~repro.core.validate.validate_layout` plus a canary packet, and
only then swap. Any failure rolls back to the still-running old
pipeline. Every step lands on the telemetry bus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..apps.netcache import NETCACHE_UTILITY, NetCacheApp, netcache_linked
from ..core import CompileOptions, validate_layout
from ..core.errors import CompileError
from ..obs import bridge_telemetry
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs.slo import SloMonitor
from ..pisa import Packet
from ..pisa.resources import TargetSpec
from .migrate import MigrationReport, migrate_netcache_state
from .monitor import TrafficMonitor
from .planner import PlanError, ReconfigPlanner
from .telemetry import TelemetryBus

__all__ = ["RuntimeConfig", "ReconfigRecord", "RunReport", "ElasticRuntime"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Control-loop knobs."""

    window_packets: int = 1000        # monitoring window size
    drop_threshold: float = 0.25      # relative hit-rate drop that means drift
    baseline_windows: int = 5         # windows forming the steady baseline
    warmup_windows: int = 4           # windows ignored after start/swap
    cooldown_windows: int = 10        # min windows between drift reconfigs
    hot_threshold: int = 4            # NetCache promotion threshold
    migrate_state: bool = True        # run the state migrator on swap
    validate_swap: bool = True        # re-validate + canary before commit
    drift_reconfig: bool = True       # arm the drift trigger at all
    engine: str | None = None         # pipeline engine (None = default)
    race: bool = False                # race ILP vs greedy in the planner
    serve_batch: int | None = None    # 0 = per-packet streaming serve;
                                      # >0 = batched fast path; None =
                                      # REPRO_PISA_SERVE_BATCH, or 0
    workers: int | None = None        # flow-sharded serve processes
                                      # (batched serve only); None =
                                      # REPRO_PISA_WORKERS, or 1
    slo_rules: tuple | None = None    # SLO rules (None = defaults, see
                                      # repro.obs.slo.default_slo_rules)


@dataclass
class ReconfigRecord:
    """One reconfiguration cycle, committed or rolled back."""

    cause: str
    packet_index: int
    committed: bool
    backend: str = ""
    fallback: bool = False
    seconds: float = 0.0
    baseline_rate: float = 0.0
    migration: MigrationReport | None = None
    error: str = ""
    symbol_values: dict[str, int] = field(default_factory=dict)
    #: solver/cache observability from the planner (nodes explored,
    #: incumbent source, cache hit/miss counters)
    solver_stats: dict = field(default_factory=dict)
    #: per-module stage/memory/ALU/utility attribution (module name →
    #: flat dict), populated when the runtime source is a LinkedProgram
    module_attribution: dict = field(default_factory=dict)


@dataclass
class RunReport:
    """Outcome of one :meth:`ElasticRuntime.run` call."""

    packets: int = 0
    hits: int = 0
    timeline: list[float] = field(default_factory=list)   # per-window hit rate
    reconfigs: list[ReconfigRecord] = field(default_factory=list)
    final_symbols: dict[str, int] = field(default_factory=dict)
    #: structured SLO violations raised during the run (see
    #: :mod:`repro.obs.slo`)
    slo_violations: list[dict] = field(default_factory=list)

    @property
    def module_attribution(self) -> dict:
        """Per-module attribution of the last committed reconfiguration
        (empty for string-composed sources)."""
        committed = [r for r in self.reconfigs if r.committed]
        return committed[-1].module_attribution if committed else {}

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0

    def steady_rate(self, windows: int = 5) -> float:
        tail = self.timeline[-windows:]
        return sum(tail) / len(tail) if tail else 0.0

    def recovery_ratio(self, windows: int = 5) -> float:
        """Post-swap steady hit rate relative to the last committed
        reconfiguration's pre-swap baseline (1.0 = full recovery;
        >1.0 = better than before)."""
        committed = [r for r in self.reconfigs if r.committed]
        if not committed or committed[-1].baseline_rate <= 0.0:
            return 1.0
        return self.steady_rate(windows) / committed[-1].baseline_rate

    def format(self) -> str:
        lines = [
            f"processed {self.packets} packets, overall hit rate "
            f"{self.hit_rate:.3f}",
            f"final layout: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.final_symbols.items())),
        ]
        for r in self.reconfigs:
            outcome = "committed" if r.committed else f"ROLLED BACK ({r.error})"
            extra = ""
            if r.migration is not None:
                extra = (f", migrated {r.migration.kv_migrated}/"
                         f"{r.migration.kv_entries_old} cache entries "
                         f"(loss {r.migration.kv_loss_fraction:.2f})")
            lines.append(
                f"  reconfig @pkt {r.packet_index} [{r.cause}] via "
                f"{r.backend or 'none'}"
                f"{' (greedy fallback)' if r.fallback else ''} "
                f"in {r.seconds:.2f}s — {outcome}{extra}"
            )
        committed = [r for r in self.reconfigs if r.committed]
        if committed:
            lines.append(
                f"  pre-swap steady rate {committed[-1].baseline_rate:.3f}, "
                f"post-swap steady rate {self.steady_rate():.3f} "
                f"(recovery {self.recovery_ratio():.2f}x)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "timeline": self.timeline,
            "final_symbols": self.final_symbols,
            "recovery_ratio": self.recovery_ratio(),
            "module_attribution": self.module_attribution,
            "slo_violations": list(self.slo_violations),
            "reconfigs": [
                {
                    "cause": r.cause,
                    "packet_index": r.packet_index,
                    "committed": r.committed,
                    "backend": r.backend,
                    "fallback": r.fallback,
                    "seconds": r.seconds,
                    "baseline_rate": r.baseline_rate,
                    "error": r.error,
                    "symbol_values": r.symbol_values,
                    "solver_stats": r.solver_stats,
                    "module_attribution": r.module_attribution,
                    "migration": (r.migration.to_dict()
                                  if r.migration is not None else None),
                }
                for r in self.reconfigs
            ],
        }


class ElasticRuntime:
    """Live NetCache pipeline with online reconfiguration."""

    def __init__(
        self,
        target: TargetSpec,
        source=None,
        utility: str = NETCACHE_UTILITY,
        options: CompileOptions | None = None,
        config: RuntimeConfig | None = None,
        telemetry: TelemetryBus | None = None,
        planner: ReconfigPlanner | None = None,
    ):
        self.config = config or RuntimeConfig()
        # Explicit None-checks: an empty TelemetryBus is falsy (len 0).
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        # Mirror telemetry events into the active trace/metrics so a
        # traced run interleaves control-plane events with spans.
        bridge_telemetry(self.telemetry)
        # The runtime's control loop needs register-level access to both
        # structures, so it drives the library NetCache composition
        # (routing omitted: the runtime exercises the cache path). The
        # default goes through the module linker so every reconfig
        # carries per-module resource attribution; a plain source string
        # is still accepted.
        self.source = source or netcache_linked(
            utility=utility, with_routing=False
        )
        self.planner = planner if planner is not None else ReconfigPlanner(
            options=options, telemetry=self.telemetry, race=self.config.race
        )
        self.monitor = TrafficMonitor(
            baseline_windows=self.config.baseline_windows,
            drop_threshold=self.config.drop_threshold,
            warmup_windows=self.config.warmup_windows,
        )
        self.target = target
        self.packets_processed = 0
        self.total_hits = 0
        self._pending_target: TargetSpec | None = None
        self._scheduled: list[tuple[int, TargetSpec]] = []
        self._last_reconfig_window = -(10 ** 9)
        #: Per-tenant SLO monitoring. Subjects are the linked modules
        #: ("cms", "kv" for the default NetCache pair) or "app" for
        #: string-composed sources.
        self.slo = SloMonitor(rules=self.config.slo_rules,
                              telemetry=self.telemetry)
        #: test hook: called with the candidate app before commit; raising
        #: aborts the swap (exercises the rollback path).
        self.pre_commit_check: Callable[[NetCacheApp], None] | None = None

        with trace.span("runtime.init", target=target.name) as span:
            plan = self.planner.plan(self.source, target, cause="initial")
            self.app = self._build_app(plan.compiled)
            span.set_attrs(backend=plan.backend, fallback=plan.fallback)
        self.telemetry.emit(
            "configured",
            packet_index=0,
            backend=plan.backend,
            fallback=plan.fallback,
            symbols=dict(plan.compiled.symbol_values),
        )

    # -- construction ----------------------------------------------------------
    @property
    def source_text(self) -> str:
        """The P4All source text regardless of how it was composed."""
        return self.source if isinstance(self.source, str) else self.source.source

    @property
    def tenants(self) -> list[str]:
        """SLO subjects: the linked modules, or ``"app"`` when the
        source is a plain string with no module identity."""
        names = getattr(self.source, "module_names", None)
        return list(names) if names else ["app"]

    def _build_app(self, compiled) -> NetCacheApp:
        return NetCacheApp(
            compiled.target,
            hot_threshold=self.config.hot_threshold,
            source=self.source_text,
            compiled=compiled,
            engine=self.config.engine,
        )

    # -- operator interface ----------------------------------------------------
    def set_target(self, target: TargetSpec) -> None:
        """Request re-provisioning; applied at the next window boundary."""
        self._pending_target = target
        self.telemetry.emit(
            "target_change_requested",
            packet_index=self.packets_processed,
            target=target.name,
            memory_bits_per_stage=target.memory_bits_per_stage,
            stages=target.stages,
        )

    def schedule_target_change(self, at_packet: int, target: TargetSpec) -> None:
        """Arrange for :meth:`set_target` once ``at_packet`` packets have
        been processed (the eval/CLI mid-run memory-cut scenario)."""
        self._scheduled.append((at_packet, target))
        self._scheduled.sort(key=lambda item: item[0])

    # -- reconfiguration cycle -------------------------------------------------
    def reconfigure(self, cause: str) -> ReconfigRecord:
        """Plan → build → migrate → validate → swap (or roll back)."""
        with trace.span("runtime.reconfigure", cause=cause,
                        packet_index=self.packets_processed) as span:
            record = self._reconfigure(cause)
            span.set_attrs(committed=record.committed, backend=record.backend,
                           fallback=record.fallback, error=record.error)
        outcome = ("committed" if record.committed
                   else "plan-failed" if not record.backend
                   else "rolled-back")
        obs_metrics.counter(
            "p4all_reconfigs_total",
            help="Reconfiguration cycles, by trigger cause and outcome.",
            labels=("cause", "outcome"),
        ).inc(cause=cause, outcome=outcome)
        obs_metrics.histogram(
            "p4all_reconfig_seconds",
            help="End-to-end wall time of one reconfiguration cycle.",
        ).observe(record.seconds)
        self.slo.observe("reconfig_seconds", cause, record.seconds,
                         packet_index=self.packets_processed)
        if record.committed and record.module_attribution:
            # Headroom of each tenant's weighted utility over its
            # declared floor: the ILP promised >= 0; tell the SLO
            # monitor what the committed layout actually delivers.
            floors = getattr(self.source, "floors", None) or {}
            for module, attrib in record.module_attribution.items():
                if module == "(app)":
                    continue
                headroom = (attrib.get("utility", 0.0)
                            - floors.get(module, 0.0))
                self.slo.observe("utility_headroom", module, headroom,
                                 packet_index=self.packets_processed)
        return record

    def _reconfigure(self, cause: str) -> ReconfigRecord:
        started = time.perf_counter()
        new_target = self._pending_target or self.target
        baseline = self.monitor.steady_rate()
        record = ReconfigRecord(
            cause=cause,
            packet_index=self.packets_processed,
            committed=False,
            baseline_rate=baseline,
        )
        self.telemetry.emit(
            "reconfig_triggered",
            packet_index=self.packets_processed,
            cause=cause,
            baseline_rate=baseline,
            target=new_target.name,
            memory_bits_per_stage=new_target.memory_bits_per_stage,
        )
        try:
            plan = self.planner.plan(self.source, new_target, cause=cause)
        except PlanError as exc:
            record.error = str(exc)
            record.seconds = time.perf_counter() - started
            self.telemetry.emit(
                "reconfig_failed",
                packet_index=self.packets_processed,
                cause=cause,
                error=str(exc),
            )
            self._pending_target = None
            return record

        record.backend = plan.backend
        record.fallback = plan.fallback
        record.symbol_values = dict(plan.compiled.symbol_values)
        record.solver_stats = dict(plan.solver_stats)
        record.module_attribution = dict(plan.module_attribution)
        new_app = self._build_app(plan.compiled)

        if self.config.migrate_state:
            with trace.span("runtime.migrate") as mspan:
                record.migration = migrate_netcache_state(self.app, new_app)
                mspan.set_attrs(
                    kv_migrated=record.migration.kv_migrated,
                    kv_entries_old=record.migration.kv_entries_old,
                    kv_loss_fraction=record.migration.kv_loss_fraction,
                )
            self.telemetry.emit(
                "migration",
                packet_index=self.packets_processed,
                **record.migration.to_dict(),
            )

        try:
            with trace.span("runtime.validate_swap",
                            validate=self.config.validate_swap):
                if self.config.validate_swap:
                    validate_layout(
                        plan.compiled,
                        hash_unit_limits=self.planner.options.layout.hash_unit_limits,
                        table_memory=self.planner.options.layout.table_memory,
                    )
                    self._canary(new_app)
                if self.pre_commit_check is not None:
                    self.pre_commit_check(new_app)
        except Exception as exc:  # roll back on *any* pre-commit failure
            record.error = str(exc)
            record.seconds = time.perf_counter() - started
            self.telemetry.emit(
                "rollback",
                packet_index=self.packets_processed,
                cause=cause,
                error=str(exc),
            )
            self._pending_target = None
            return record

        self.app = new_app
        self.target = new_target
        self._pending_target = None
        self.monitor.reset_baseline()
        record.committed = True
        record.seconds = time.perf_counter() - started
        stats = plan.compiled.stats
        self.telemetry.emit(
            "swap_committed",
            packet_index=self.packets_processed,
            cause=cause,
            backend=plan.backend,
            fallback=plan.fallback,
            seconds=record.seconds,
            plan_seconds=plan.plan_seconds,
            parse_seconds=stats.parse_seconds,
            analysis_seconds=stats.analysis_seconds,
            ilp_build_seconds=stats.ilp_build_seconds,
            ilp_solve_seconds=stats.ilp_solve_seconds,
            codegen_seconds=stats.codegen_seconds,
            solver_stats=dict(plan.solver_stats),
            symbols=dict(plan.compiled.symbol_values),
            kv_loss=(record.migration.kv_loss_fraction
                     if record.migration is not None else None),
        )
        return record

    def _canary(self, app: NetCacheApp) -> None:
        """One packet through the candidate pipeline before commit: it
        must process cleanly, and a migrated hot key must actually hit.

        The candidate runs the same engine the runtime is configured
        with (default: the compiled plan engine), so the canary also
        exercises the candidate's freshly built execution plan before
        traffic is cut over to it."""
        if app._cached_keys:
            key = next(iter(app._cached_keys))
            result = app.pipeline.process(Packet(fields={"req_key": key}))
            if not result.get("meta.kv_hit"):
                raise CompileError(
                    f"canary failed: migrated key {key} missed in the "
                    "candidate pipeline"
                )
        else:
            app.pipeline.process(Packet(fields={"req_key": 1}))

    # -- the control loop ------------------------------------------------------
    def run(self, stream, packets: int, report: RunReport | None = None) -> RunReport:
        """Drive ``packets`` keys from ``stream`` (anything with a
        ``sample(count)`` method) through the pipeline, reconfiguring as
        triggers fire. Passing an existing ``report`` continues it."""
        report = report or RunReport()
        end = self.packets_processed + packets
        with trace.span("runtime.run", packets=packets) as run_span:
            while self.packets_processed < end:
                # Apply scheduled provisioning changes that have come due.
                while (self._scheduled
                       and self._scheduled[0][0] <= self.packets_processed):
                    _at, target = self._scheduled.pop(0)
                    self.set_target(target)

                window_index = self.monitor.windows_recorded
                if self._pending_target is not None:
                    report.reconfigs.append(self.reconfigure("target-change"))
                    self._last_reconfig_window = window_index
                elif (
                    self.config.drift_reconfig
                    and self.monitor.drift_detected()
                    and window_index - self._last_reconfig_window
                        >= self.config.cooldown_windows
                ):
                    report.reconfigs.append(self.reconfigure("hit-rate-drop"))
                    self._last_reconfig_window = window_index

                n = min(self.config.window_packets, end - self.packets_processed)
                with trace.span("runtime.window") as wspan:
                    keys = stream.sample(n)
                    stats = self.app.run_trace(
                        keys, serve_batch=self.config.serve_batch,
                        workers=self.config.workers)
                    self.packets_processed += n
                    self.total_hits += stats.hits
                    report.packets += n
                    report.hits += stats.hits
                    sample = self.monitor.record(stats.hits, n)
                    report.timeline.append(sample.hit_rate)
                    wspan.set_attrs(window=sample.index, packets=n,
                                    hit_rate=sample.hit_rate)
                obs_metrics.counter(
                    "p4all_windows_total",
                    help="Monitoring windows completed by the control loop.",
                ).inc()
                obs_metrics.gauge(
                    "p4all_window_hit_rate",
                    help="Hit rate of the most recent monitoring window.",
                ).set(sample.hit_rate)
                self.telemetry.emit(
                    "window",
                    packet_index=self.packets_processed,
                    window=sample.index,
                    hit_rate=sample.hit_rate,
                    occupancy=TrafficMonitor.structure_occupancy(self.app),
                )
                for tenant in self.tenants:
                    self.slo.observe("hit_rate", tenant, sample.hit_rate,
                                     packet_index=self.packets_processed)
            run_span.set_attrs(hit_rate=report.hit_rate,
                               reconfigs=len(report.reconfigs))
        report.final_symbols = dict(self.app.compiled.symbol_values)
        report.slo_violations = list(self.slo.violations)
        return report
