"""Reconfiguration planner: compile with retry, backoff, and fallback.

On a reconfiguration trigger the runtime must end up with *some* valid
layout — a pipeline left unconfigured drops every packet, which is worse
than any degraded layout. The planner encodes that policy around the
compile driver:

1. solve the layout ILP under ``CompileOptions.time_limit``;
2. on a structured :class:`~repro.core.errors.LayoutTimeoutError`
   (time limit expired with no incumbent), retry with the limit scaled
   by ``backoff`` — up to ``max_retries`` times;
3. still timing out, degrade to the greedy first-fit layout
   (:func:`~repro.core.driver.compile_source_greedy`) — feasible and
   validated, just not utility-optimal;
4. only a genuinely infeasible program (no layout exists at any size)
   or a greedy failure surfaces as :class:`PlanError`, and the caller
   keeps the old pipeline running.

A timeout *with* an incumbent is accepted as-is when
``accept_incumbent`` (the default): the solver proved feasibility, just
not optimality. Every attempt is emitted on the telemetry bus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core import (
    CompileOptions,
    CompiledProgram,
    LayoutInfeasibleError,
    LayoutTimeoutError,
    compile_source,
    compile_source_greedy,
)
from ..core.errors import CompileError
from ..ilp import SolveStatus
from ..pisa.resources import TargetSpec
from .telemetry import TelemetryBus

__all__ = ["ReconfigPlanner", "PlanResult", "PlanError"]


class PlanError(CompileError):
    """No layout could be produced at all (infeasible program, or the
    greedy fallback itself failed). The caller must keep the old
    configuration. A :class:`CompileError` so CLI-level handling treats
    it like any other compile failure."""


@dataclass
class PlanResult:
    """Outcome of one planning cycle."""

    compiled: CompiledProgram
    backend: str                  # "ilp" or "greedy"
    fallback: bool                # True when the greedy path was used
    attempts: list[dict] = field(default_factory=list)
    plan_seconds: float = 0.0

    @property
    def symbol_values(self) -> dict[str, int]:
        return self.compiled.symbol_values


class ReconfigPlanner:
    """Produces a compiled layout for a target, never less than greedy."""

    def __init__(
        self,
        options: CompileOptions | None = None,
        telemetry: TelemetryBus | None = None,
        max_retries: int = 1,
        backoff: float = 4.0,
        accept_incumbent: bool = True,
    ):
        self.options = options or CompileOptions()
        # Explicit None-check: an empty TelemetryBus is falsy (len 0).
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self.max_retries = max_retries
        self.backoff = backoff
        self.accept_incumbent = accept_incumbent

    def _options_with(self, time_limit: float | None) -> CompileOptions:
        base = self.options
        return CompileOptions(
            entry=base.entry,
            backend=base.backend,
            time_limit=time_limit,
            layout=base.layout,
            unroll=base.unroll,
            verify=base.verify,
        )

    def _usable(self, compiled: CompiledProgram) -> bool:
        """An incumbent that placed nothing is no better than a timeout."""
        return bool(compiled.units)

    def plan(self, source: str, target: TargetSpec,
             cause: str = "unspecified") -> PlanResult:
        """Compile ``source`` for ``target``; see the module docstring
        for the retry/fallback policy. Raises :class:`PlanError` when
        even the greedy path cannot produce a layout."""
        started = time.perf_counter()
        attempts: list[dict] = []
        time_limit = self.options.time_limit
        want_ilp = self.options.backend != "greedy"

        if want_ilp:
            for attempt in range(self.max_retries + 1):
                record = {
                    "backend": self.options.backend,
                    "time_limit": time_limit,
                    "attempt": attempt,
                }
                t0 = time.perf_counter()
                try:
                    compiled = compile_source(
                        source, target, self._options_with(time_limit),
                        source_name="runtime",
                    )
                except LayoutTimeoutError as exc:
                    record.update(outcome="timeout",
                                  seconds=time.perf_counter() - t0,
                                  backend_used=exc.backend)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    if time_limit is not None:
                        time_limit *= self.backoff
                    continue
                except LayoutInfeasibleError as exc:
                    # Infeasible is a property of the program+target, not
                    # of solver effort: greedy cannot succeed either.
                    record.update(outcome="infeasible",
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    raise PlanError(
                        f"program does not fit target {target.name!r}: {exc}"
                    ) from exc

                status = compiled.solution.status
                if not self._usable(compiled) or (
                    status is SolveStatus.TIMEOUT and not self.accept_incumbent
                ):
                    record.update(outcome="degenerate-incumbent"
                                  if not compiled.units else "timeout-incumbent",
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    if time_limit is not None:
                        time_limit *= self.backoff
                    continue

                record.update(outcome="ok", seconds=time.perf_counter() - t0,
                              status=status.value,
                              symbols=dict(compiled.symbol_values))
                attempts.append(record)
                self.telemetry.emit("compile_attempt", cause=cause, **record)
                return PlanResult(
                    compiled=compiled,
                    backend="ilp",
                    fallback=False,
                    attempts=attempts,
                    plan_seconds=time.perf_counter() - started,
                )

            self.telemetry.emit(
                "ilp_fallback", cause=cause,
                attempts=len(attempts),
                final_time_limit=time_limit,
            )

        record = {"backend": "greedy", "time_limit": None,
                  "attempt": len(attempts)}
        t0 = time.perf_counter()
        try:
            compiled = compile_source_greedy(
                source, target, self._options_with(None), source_name="runtime"
            )
        except CompileError as exc:
            record.update(outcome="error", seconds=time.perf_counter() - t0,
                          error=str(exc))
            attempts.append(record)
            self.telemetry.emit("compile_attempt", cause=cause, **record)
            raise PlanError(f"greedy fallback failed: {exc}") from exc
        record.update(outcome="ok", seconds=time.perf_counter() - t0,
                      status=compiled.solution.status.value,
                      symbols=dict(compiled.symbol_values))
        attempts.append(record)
        self.telemetry.emit("compile_attempt", cause=cause, **record)
        return PlanResult(
            compiled=compiled,
            backend="greedy",
            fallback=want_ilp,
            attempts=attempts,
            plan_seconds=time.perf_counter() - started,
        )
