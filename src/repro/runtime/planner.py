"""Reconfiguration planner: compile with retry, backoff, and fallback.

On a reconfiguration trigger the runtime must end up with *some* valid
layout — a pipeline left unconfigured drops every packet, which is worse
than any degraded layout. The planner encodes that policy around the
compile driver:

1. solve the layout ILP under ``CompileOptions.time_limit``;
2. on a structured :class:`~repro.core.errors.LayoutTimeoutError`
   (time limit expired with no incumbent), retry with the limit scaled
   by ``backoff`` — up to ``max_retries`` times;
3. still timing out, degrade to the greedy first-fit layout
   (:func:`~repro.core.driver.compile_source_greedy`) — feasible and
   validated, just not utility-optimal;
4. only a genuinely infeasible program (no layout exists at any size)
   or a greedy failure surfaces as :class:`PlanError`, and the caller
   keeps the old pipeline running.

A timeout *with* an incumbent is accepted as-is when
``accept_incumbent`` (the default): the solver proved feasibility, just
not optimality. Every attempt is emitted on the telemetry bus.

Recompilation speed (this is the control path of an *elastic* system,
so it is on the reconfiguration critical path):

* The planner owns a :class:`~repro.core.cache.CompileCache` shared by
  every compile it issues: front-end artifacts (parse/AST, IR) are
  reused across recompiles of the same source, and a byte-identical
  (source, target, options) recompile returns the previous artifact
  outright. Cache counters are exported on the telemetry bus after each
  cycle as a ``compile_cache`` event.
* The previous cycle's layout is threaded into the next compile as a
  **warm start**: the branch-and-bound backend re-validates it against
  the new target (greedy layout as fallback seed) and uses it as the
  initial incumbent, pruning instead of rediscovering.
* With ``race=True`` the ILP and greedy candidates run **concurrently**
  on a two-worker pool. With a time limit set, the ILP result is
  preferred (it self-terminates at its limit) and a timeout adopts the
  already-finished greedy layout instantly — replacing the sequential
  retry → backoff → fallback ladder, so ``max_retries`` is ignored.
  Without a time limit the first usable result wins, which in practice
  is greedy (the quality-insensitive "give me anything now" mode).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field

from ..core import (
    CompileOptions,
    CompiledProgram,
    LayoutInfeasibleError,
    LayoutTimeoutError,
    compile_linked,
    compile_linked_greedy,
    compile_source,
    compile_source_greedy,
    module_attribution,
)
from ..core.cache import CompileCache
from ..core.errors import CompileError
from ..ilp import SolveStatus
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..pisa.resources import TargetSpec
from .telemetry import TelemetryBus

__all__ = ["ReconfigPlanner", "PlanResult", "PlanError"]


class PlanError(CompileError):
    """No layout could be produced at all (infeasible program, or the
    greedy fallback itself failed). The caller must keep the old
    configuration. A :class:`CompileError` so CLI-level handling treats
    it like any other compile failure."""


@dataclass
class PlanResult:
    """Outcome of one planning cycle."""

    compiled: CompiledProgram
    backend: str                  # "ilp" or "greedy"
    fallback: bool                # True when the greedy path was used
    attempts: list[dict] = field(default_factory=list)
    plan_seconds: float = 0.0
    #: Solver/cache observability for this cycle: ``nodes_explored``,
    #: ``incumbent_source``, per-tier cache hit/miss counters, and
    #: whether any compile phase was served from cache.
    solver_stats: dict = field(default_factory=dict)
    #: Per-module stage/memory/ALU/utility attribution (module name →
    #: flat dict), populated when the planned program was linked.
    module_attribution: dict = field(default_factory=dict)

    @property
    def symbol_values(self) -> dict[str, int]:
        return self.compiled.symbol_values


class ReconfigPlanner:
    """Produces a compiled layout for a target, never less than greedy."""

    def __init__(
        self,
        options: CompileOptions | None = None,
        telemetry: TelemetryBus | None = None,
        max_retries: int = 1,
        backoff: float = 4.0,
        accept_incumbent: bool = True,
        cache: CompileCache | None = None,
        race: bool = False,
        warm_start: bool = True,
    ):
        self.options = options or CompileOptions()
        # Explicit None-check: an empty TelemetryBus is falsy (len 0).
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self.max_retries = max_retries
        self.backoff = backoff
        self.accept_incumbent = accept_incumbent
        #: Shared across every compile this planner issues. Pass
        #: ``CompileCache(max_layouts=0)`` to keep front-end reuse but
        #: force every layout to be re-solved.
        self.cache = cache if cache is not None else CompileCache()
        self.race = race
        self.warm_start = warm_start
        self._last_solution = None    # LayoutSolution of the last plan

    def _options_with(self, time_limit: float | None,
                      **overrides) -> CompileOptions:
        updates = dict(
            time_limit=time_limit,
            cache=self.cache,
            warm_start=self._last_solution if self.warm_start else None,
        )
        updates.update(overrides)
        return self.options.replace(**updates)

    def _usable(self, compiled: CompiledProgram) -> bool:
        """An incumbent that placed nothing is no better than a timeout."""
        return bool(compiled.units)

    # ``source`` may be a P4All source string or a LinkedProgram; the
    # two compile entry points differ, everything downstream is shared.
    @staticmethod
    def _compile(source, target, options, source_name="runtime"):
        if isinstance(source, str):
            return compile_source(source, target, options,
                                  source_name=source_name)
        return compile_linked(source, target, options)

    @staticmethod
    def _compile_greedy(source, target, options, source_name="runtime"):
        if isinstance(source, str):
            return compile_source_greedy(source, target, options,
                                         source_name=source_name)
        return compile_linked_greedy(source, target, options)

    def _solver_stats(self, compiled: CompiledProgram) -> dict:
        sol = compiled.solution
        stats = {
            "nodes_explored": sol.nodes_explored,
            "incumbent_source": sol.incumbent_source,
            "frontend_cached": compiled.stats.frontend_cached,
            "bounds_cached": compiled.stats.bounds_cached,
            "layout_cached": compiled.stats.layout_cached,
        }
        stats.update(self.cache.snapshot())
        return stats

    def plan(self, source, target: TargetSpec,
             cause: str = "unspecified") -> PlanResult:
        """Compile ``source`` for ``target``; see the module docstring
        for the retry/fallback policy. ``source`` is a P4All source
        string or a :class:`~repro.link.LinkedProgram` (per-module
        attribution rides along on the result for the latter). Raises
        :class:`PlanError` when even the greedy path cannot produce a
        layout."""
        started = time.perf_counter()
        racing = self.race and self.options.backend != "greedy"
        mode = "race" if racing else "sequential"
        with trace.span("plan", cause=cause, target=target.name,
                        mode=mode) as span:
            if racing:
                result = self._plan_race(source, target, cause, started)
            else:
                result = self._plan_sequential(source, target, cause, started)
            span.set_attrs(backend=result.backend, fallback=result.fallback,
                           plan_seconds=result.plan_seconds)
        obs_metrics.histogram(
            "p4all_plan_seconds",
            help="Wall time of one planning cycle (compile + fallbacks).",
            labels=("mode",),
        ).observe(result.plan_seconds, mode=mode)
        self._last_solution = result.compiled.solution
        result.solver_stats = self._solver_stats(result.compiled)
        attribution = module_attribution(result.compiled)
        if attribution:
            result.module_attribution = {
                name: a.to_dict() for name, a in attribution.items()
            }
            self.telemetry.emit("module_attribution", cause=cause,
                                modules=result.module_attribution)
        self.cache.emit(self.telemetry, cause=cause)
        return result

    def reweight(self, linked, weights: dict, target: TargetSpec,
                 floors: dict | None = None,
                 cause: str = "reweight") -> tuple:
        """Re-weight one tenant's utility and re-plan.

        Re-links ``linked`` with the new per-module ``weights`` (and
        optional ``floors``) through this planner's shared cache — only
        the objective changes, so every module's frontend artifacts are
        reused and no other tenant's module is re-parsed — then plans
        the relinked program. Returns ``(relinked, PlanResult)``.
        """
        relinked = linked.reweight(weights, floors=floors, cache=self.cache)
        return relinked, self.plan(relinked, target, cause=cause)

    # ---------------------------------------------------------------- sequential --
    def _plan_sequential(self, source, target: TargetSpec,
                         cause: str, started: float) -> PlanResult:
        attempts: list[dict] = []
        time_limit = self.options.time_limit
        want_ilp = self.options.backend != "greedy"

        if want_ilp:
            for attempt in range(self.max_retries + 1):
                record = {
                    "backend": self.options.backend,
                    "time_limit": time_limit,
                    "attempt": attempt,
                }
                t0 = time.perf_counter()
                try:
                    compiled = self._compile(
                        source, target, self._options_with(time_limit),
                    )
                except LayoutTimeoutError as exc:
                    record.update(outcome="timeout",
                                  seconds=time.perf_counter() - t0,
                                  backend_used=exc.backend)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    if time_limit is not None:
                        time_limit *= self.backoff
                    continue
                except LayoutInfeasibleError as exc:
                    # Infeasible is a property of the program+target, not
                    # of solver effort: greedy cannot succeed either.
                    record.update(outcome="infeasible",
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    raise PlanError(
                        f"program does not fit target {target.name!r}: {exc}"
                    ) from exc

                status = compiled.solution.status
                if not self._usable(compiled) or (
                    status is SolveStatus.TIMEOUT and not self.accept_incumbent
                ):
                    record.update(outcome="degenerate-incumbent"
                                  if not compiled.units else "timeout-incumbent",
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    self.telemetry.emit("compile_attempt", cause=cause, **record)
                    if time_limit is not None:
                        time_limit *= self.backoff
                    continue

                record.update(outcome="ok", seconds=time.perf_counter() - t0,
                              status=status.value,
                              symbols=dict(compiled.symbol_values),
                              nodes_explored=compiled.solution.nodes_explored,
                              incumbent_source=compiled.solution.incumbent_source,
                              layout_cached=compiled.stats.layout_cached)
                attempts.append(record)
                self.telemetry.emit("compile_attempt", cause=cause, **record)
                return PlanResult(
                    compiled=compiled,
                    backend="ilp",
                    fallback=False,
                    attempts=attempts,
                    plan_seconds=time.perf_counter() - started,
                )

            self.telemetry.emit(
                "ilp_fallback", cause=cause,
                attempts=len(attempts),
                final_time_limit=time_limit,
            )

        record = {"backend": "greedy", "time_limit": None,
                  "attempt": len(attempts)}
        t0 = time.perf_counter()
        try:
            compiled = self._compile_greedy(
                source, target, self._options_with(None)
            )
        except CompileError as exc:
            record.update(outcome="error", seconds=time.perf_counter() - t0,
                          error=str(exc))
            attempts.append(record)
            self.telemetry.emit("compile_attempt", cause=cause, **record)
            raise PlanError(f"greedy fallback failed: {exc}") from exc
        record.update(outcome="ok", seconds=time.perf_counter() - t0,
                      status=compiled.solution.status.value,
                      symbols=dict(compiled.symbol_values))
        attempts.append(record)
        self.telemetry.emit("compile_attempt", cause=cause, **record)
        return PlanResult(
            compiled=compiled,
            backend="greedy",
            fallback=want_ilp,
            attempts=attempts,
            plan_seconds=time.perf_counter() - started,
        )

    # --------------------------------------------------------------------- race --
    def _plan_race(self, source, target: TargetSpec,
                   cause: str, started: float) -> PlanResult:
        """Run ILP and greedy candidates concurrently; see module docs.

        Both compiles share the planner's cache (it is thread-safe), so
        whichever thread gets to the front end first populates it for
        the other. The losing future is cancelled best-effort — a
        compile already executing runs to completion in the background,
        but nobody waits on it."""
        attempts: list[dict] = []
        time_limit = self.options.time_limit
        pool = ThreadPoolExecutor(max_workers=2, thread_name_prefix="plan-race")
        t0 = time.perf_counter()
        ilp_future = pool.submit(
            self._compile, source, target,
            self._options_with(time_limit), "runtime",
        )
        greedy_future = pool.submit(
            self._compile_greedy, source, target,
            self._options_with(None, backend="greedy", warm_start=None),
            "runtime",
        )
        backend_of = {ilp_future: self.options.backend,
                      greedy_future: "greedy"}

        def record_for(future, outcome, **extra) -> dict:
            rec = {
                "backend": backend_of[future],
                "time_limit": time_limit if future is ilp_future else None,
                "attempt": len(attempts),
                "race": True,
                "outcome": outcome,
                "seconds": time.perf_counter() - t0,
            }
            rec.update(extra)
            attempts.append(rec)
            self.telemetry.emit("compile_attempt", cause=cause, **rec)
            return rec

        def harvest(future) -> CompiledProgram | None:
            """Resolve one candidate; None when unusable."""
            try:
                compiled = future.result()
            except LayoutTimeoutError as exc:
                record_for(future, "timeout", backend_used=exc.backend)
                return None
            except LayoutInfeasibleError as exc:
                record_for(future, "infeasible")
                raise PlanError(
                    f"program does not fit target {target.name!r}: {exc}"
                ) from exc
            except CompileError as exc:
                record_for(future, "error", error=str(exc))
                return None
            status = compiled.solution.status
            if not self._usable(compiled) or (
                status is SolveStatus.TIMEOUT and not self.accept_incumbent
            ):
                record_for(future, "degenerate-incumbent"
                           if not compiled.units else "timeout-incumbent")
                return None
            record_for(future, "ok", status=status.value,
                       symbols=dict(compiled.symbol_values),
                       nodes_explored=compiled.solution.nodes_explored,
                       incumbent_source=compiled.solution.incumbent_source,
                       layout_cached=compiled.stats.layout_cached)
            return compiled

        winner: CompiledProgram | None = None
        winner_future = None
        try:
            if time_limit is not None:
                # The ILP self-terminates at its limit; prefer its quality.
                # On timeout the greedy candidate has been solving in
                # parallel the whole time — adopt it with no extra wait.
                winner = harvest(ilp_future)
                winner_future = ilp_future
                if winner is None:
                    winner = harvest(greedy_future)
                    winner_future = greedy_future
            else:
                # No limit: latency wins. First usable result is taken
                # (greedy in practice; the ILP would run unbounded).
                pending = {ilp_future, greedy_future}
                while pending and winner is None:
                    done, pending_set = futures_wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    pending = set(pending_set)
                    for future in done:
                        winner = harvest(future)
                        winner_future = future
                        if winner is not None:
                            break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if winner is None:
            raise PlanError(
                f"no candidate produced a usable layout for {target.name!r}"
            )
        won_ilp = winner_future is ilp_future
        if not won_ilp:
            self.telemetry.emit(
                "ilp_fallback", cause=cause,
                attempts=len(attempts), final_time_limit=time_limit,
                race=True,
            )
        self.telemetry.emit(
            "race_result", cause=cause,
            winner="ilp" if won_ilp else "greedy",
            seconds=time.perf_counter() - started,
        )
        return PlanResult(
            compiled=winner,
            backend="ilp" if won_ilp else "greedy",
            fallback=not won_ilp,
            attempts=attempts,
            plan_seconds=time.perf_counter() - started,
        )
