"""Register-state migration between compiled layouts.

A hot swap (single switch) or a live app migration (fabric) replaces
the serving pipeline mid-stream; without migration the new structures
start cold and quality collapses until they re-learn. This module is
the structure-generic machinery both paths share:

* :func:`snapshot_registers` captures a pipeline's register arrays at a
  quiesce point (see :meth:`~repro.pisa.pipeline.Pipeline.quiesce`) as
  a :class:`RegisterSnapshot` — plain numpy arrays plus geometry, cheap
  to hold, pickle, or ship between fabric switches;
* :func:`restore_registers` maps a snapshot onto another pipeline's
  arrays. Same-geometry instances load directly; counter-style arrays
  whose cell count changed are **folded**: keys index a row by
  ``h(key) mod cols``, so when the column count shrinks from ``C_old``
  to ``C_new`` every old cell ``j`` contributes to new cell
  ``j mod C_new``. Summing contributions preserves the count-min
  overestimate invariant exactly when ``C_new`` divides ``C_old`` (each
  key's new cell aggregates precisely the old cells that could have
  counted it) and remains a safe overestimate otherwise. With
  ``accumulate=True`` the restored values are *added* onto the target's
  existing contents (a fabric switch absorbing a drained peer's sketch
  on top of its own);
* :func:`readmit_by_heat` re-admits exported entries *by heat*: every
  ``(key, value)`` pair is ranked by a caller-supplied estimate and
  re-installed hottest-first. Entries whose candidate slots are all
  taken are dropped — the structure shrank, and the coldest entries are
  the ones to lose.

:func:`migrate_netcache_state` — the single-switch hot-swap entry the
elastic runtime has used since PR 1 — is now a thin wrapper composing
the three: snapshot the CMS family, fold-restore it, heat-readmit the
cached KV entries.

The caller (runtime controller or fleet controller) validates the
populated layout and rolls back if anything fails — the source app is
never mutated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "MigrationReport",
    "QuiesceError",
    "RegisterSnapshot",
    "RestoreReport",
    "snapshot_registers",
    "restore_registers",
    "readmit_by_heat",
    "migrate_netcache_state",
    "fold_counters",
]


class QuiesceError(RuntimeError):
    """A bulk register operation was attempted mid-batch.

    Snapshots taken between arbitrary packets of a running batch can
    observe torn state (e.g. a controller's paired key/value writes
    half-applied). Request the operation through
    :meth:`~repro.pisa.pipeline.Pipeline.quiesce` instead.
    """


@dataclass
class MigrationReport:
    """What a migration moved and what it lost."""

    kv_entries_old: int = 0
    kv_migrated: int = 0
    kv_dropped: int = 0
    cms_rows_migrated: int = 0
    cms_rows_dropped: int = 0
    cms_exact_fold: bool = True
    cms_mass_old: int = 0
    cms_mass_new: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def kv_loss_fraction(self) -> float:
        if self.kv_entries_old == 0:
            return 0.0
        return self.kv_dropped / self.kv_entries_old

    def to_dict(self) -> dict:
        return {
            "kv_entries_old": self.kv_entries_old,
            "kv_migrated": self.kv_migrated,
            "kv_dropped": self.kv_dropped,
            "kv_loss_fraction": self.kv_loss_fraction,
            "cms_rows_migrated": self.cms_rows_migrated,
            "cms_rows_dropped": self.cms_rows_dropped,
            "cms_exact_fold": self.cms_exact_fold,
            "cms_mass_old": self.cms_mass_old,
            "cms_mass_new": self.cms_mass_new,
        }


def fold_counters(old: np.ndarray, new_cells: int, mask: int) -> tuple[np.ndarray, bool]:
    """Fold a counter row onto ``new_cells`` cells (see module docstring).

    Returns ``(folded, exact)`` where ``exact`` is True when the fold is
    an exact re-aggregation (same size, or the old size is a multiple of
    the new one).
    """
    old_cells = len(old)
    if new_cells == old_cells:
        return old.copy(), True
    src = old.astype(np.uint64)
    folded = np.zeros(new_cells, dtype=np.uint64)
    np.add.at(folded, np.arange(old_cells) % new_cells, src)
    exact = old_cells % new_cells == 0 if new_cells < old_cells else False
    return folded & np.uint64(mask), exact


# -- structure-generic snapshot / restore ---------------------------------------
@dataclass
class RegisterSnapshot:
    """A pipeline's register image at one quiesce point.

    ``arrays`` maps concrete instance names (``family[index]``) to
    copies of their cell values; ``widths`` carries each instance's cell
    width so a restore onto a narrower target can re-mask. The snapshot
    is plain data — picklable, so fabric workers can ship it between
    processes.
    """

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    widths: dict[str, int] = field(default_factory=dict)
    packets_processed: int = 0

    def families(self) -> list[str]:
        """Distinct register families in the snapshot, sorted."""
        return sorted({name.partition("[")[0] for name in self.arrays})

    @property
    def total_cells(self) -> int:
        return sum(len(a) for a in self.arrays.values())

    def mass(self, family: str | None = None) -> int:
        """Sum of all cell values (optionally one family's) — the
        conservation check counter folds are audited against."""
        total = 0
        for name, values in self.arrays.items():
            if family is None or name.partition("[")[0] == family:
                total += int(values.astype(np.uint64).sum())
        return total


@dataclass
class RestoreReport:
    """Outcome of mapping one snapshot onto one pipeline."""

    loaded: int = 0                 #: instances restored 1:1 (same cells)
    folded: int = 0                 #: instances re-aggregated onto new cells
    dropped: int = 0                #: snapshot instances with no target array
    exact: bool = True              #: every fold was an exact re-aggregation
    mass_in: int = 0                #: total cell mass read from the snapshot
    mass_out: int = 0               #: total cell mass written to the target
    instances: list[str] = field(default_factory=list)

    @property
    def migrated(self) -> int:
        return self.loaded + self.folded

    def to_dict(self) -> dict:
        return {
            "loaded": self.loaded,
            "folded": self.folded,
            "dropped": self.dropped,
            "exact": self.exact,
            "mass_in": self.mass_in,
            "mass_out": self.mass_out,
        }


def _family_of(name: str) -> str:
    return name.partition("[")[0]


def snapshot_registers(pipeline, families: Iterable[str] | None = None,
                       ) -> RegisterSnapshot:
    """Capture ``pipeline``'s register arrays (optionally a subset of
    families) as a :class:`RegisterSnapshot`.

    Must be called at a quiesce point: raises :class:`QuiesceError` if a
    :meth:`~repro.pisa.pipeline.Pipeline.process_many` batch is in
    flight. From a batch callback, defer through
    ``pipeline.quiesce(lambda: snapshot_registers(pipeline))`` — the
    snapshot then runs at the next inter-packet drain boundary.
    """
    if getattr(pipeline, "in_batch", False):
        raise QuiesceError(
            "snapshot_registers called mid-batch; request it via "
            "Pipeline.quiesce() so it runs at a drain point"
        )
    wanted = set(families) if families is not None else None
    snap = RegisterSnapshot(
        packets_processed=getattr(pipeline, "packets_processed", 0)
    )
    for name in pipeline.registers.names():
        if wanted is not None and _family_of(name) not in wanted:
            continue
        array = pipeline.registers.get(name)
        snap.arrays[name] = array.dump()
        snap.widths[name] = array.width
    return snap


def restore_registers(snapshot: RegisterSnapshot, pipeline,
                      families: Iterable[str] | None = None,
                      fold: bool = True,
                      accumulate: bool = False) -> RestoreReport:
    """Map ``snapshot`` onto ``pipeline``'s registers.

    Same-cell-count instances load directly; with ``fold=True`` a
    cell-count mismatch is folded via :func:`fold_counters` (counter
    semantics — safe overestimate), otherwise it is dropped. With
    ``accumulate=True`` restored values are added onto the target's
    existing contents instead of replacing them (masked to the target
    width). Snapshot instances with no same-named target array are
    counted as ``dropped``. Subject to the same quiesce discipline as
    :func:`snapshot_registers`.
    """
    if getattr(pipeline, "in_batch", False):
        raise QuiesceError(
            "restore_registers called mid-batch; request it via "
            "Pipeline.quiesce() so it runs at a drain point"
        )
    wanted = set(families) if families is not None else None
    report = RestoreReport()
    for name, values in snapshot.arrays.items():
        if wanted is not None and _family_of(name) not in wanted:
            continue
        if name not in pipeline.registers:
            report.dropped += 1
            continue
        dst = pipeline.registers.get(name)
        report.mass_in += int(values.astype(np.uint64).sum())
        if len(values) == dst.cells:
            incoming = values.astype(np.uint64) & np.uint64(dst.mask)
            report.loaded += 1
        else:
            if not fold:
                report.dropped += 1
                continue
            incoming, exact = fold_counters(values, dst.cells, dst.mask)
            report.exact = report.exact and exact
            report.folded += 1
        if accumulate:
            incoming = (incoming + dst.dump()) & np.uint64(dst.mask)
        dst.load(incoming)
        report.mass_out += int(incoming.sum())
        report.instances.append(name)
    return report


def readmit_by_heat(
    entries: Iterable[tuple[int, int]],
    heat: Callable[[int], int],
    install: Callable[[int, int], bool],
) -> tuple[int, int]:
    """Re-admit ``(key, value)`` entries hottest-first through ``install``.

    ``heat(key)`` ranks the entries (e.g. the *source* sketch's
    estimate — the destination hasn't seen the traffic yet);
    ``install(key, value)`` returns False when no candidate slot is
    free, and that entry is dropped. Duplicate keys are installed once.
    Returns ``(migrated, dropped)``.
    """
    ranked = sorted(((heat(key), key, value) for key, value in entries),
                    reverse=True)
    migrated = dropped = 0
    seen: set[int] = set()
    for _heat, key, value in ranked:
        if key in seen:
            continue
        seen.add(key)
        if install(key, value):
            migrated += 1
        else:
            dropped += 1
    return migrated, dropped


# -- the NetCache hot-swap entry (thin wrapper over the generic API) ------------
def migrate_netcache_state(old_app, new_app,
                           accumulate: bool = False) -> MigrationReport:
    """Populate ``new_app``'s registers from ``old_app``'s state.

    Both arguments are :class:`~repro.apps.netcache.NetCacheApp`-shaped:
    a ``pipeline`` with ``cms_sketch[r]`` / ``kv_keys[r]`` / ``kv_val0[r]``
    register families plus ``cms_rows``/``kv_rows`` counts. ``old_app``
    is only read. With ``accumulate=True`` the sketch is added onto
    ``new_app``'s existing counts (fabric absorb-migration) instead of
    replacing them.
    """
    report = MigrationReport()

    # -- CMS fold (generic snapshot → fold-restore) ----------------------------
    snap = snapshot_registers(old_app.pipeline, families=("cms_sketch",))
    restored = restore_registers(snap, new_app.pipeline,
                                 families=("cms_sketch",),
                                 fold=True, accumulate=accumulate)
    report.cms_rows_migrated = restored.migrated
    report.cms_rows_dropped = restored.dropped
    report.cms_exact_fold = restored.exact
    report.cms_mass_old = restored.mass_in
    report.cms_mass_new = restored.mass_out
    if report.cms_rows_dropped:
        report.notes.append(
            f"{report.cms_rows_dropped} sketch rows dropped (fewer rows "
            "in the new layout)"
        )

    # -- KV re-admission by heat ------------------------------------------------
    entries = old_app.cached_entries()
    report.kv_entries_old = len(entries)
    report.kv_migrated, report.kv_dropped = readmit_by_heat(
        ((key, value) for _row, key, value in entries),
        heat=old_app._cms_estimate,
        install=new_app.install,
    )
    if report.kv_dropped:
        report.notes.append(
            f"{report.kv_dropped} cache entries dropped (no free candidate "
            "slot in the new layout)"
        )
    return report
