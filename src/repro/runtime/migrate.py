"""State migration between two compiled NetCache layouts.

A hot swap replaces the pipeline mid-stream; without migration the new
cache starts cold and the hit rate collapses until the sketch re-learns
the hot set. The migrator maps the old layout's register contents onto
the new one:

* **CMS counters** are folded row-by-row. Keys index a row by
  ``h(key) mod cols``, so when the column count shrinks from ``C_old``
  to ``C_new`` every old cell ``j`` contributes to new cell
  ``j mod C_new``. Summing contributions preserves the count-min
  overestimate invariant exactly when ``C_new`` divides ``C_old`` (each
  key's new cell aggregates precisely the old cells that could have
  counted it) and remains a safe overestimate otherwise.
* **KV entries** are re-admitted *by heat*: every cached ``(key, value)``
  read from the old data plane is ranked by the old sketch's estimate
  and re-installed hottest-first at the slot the new layout's hashes
  select. Entries whose candidate slots are all taken are dropped —
  the cache shrank, and the coldest entries are the ones to lose.

The caller (the runtime controller) validates the populated layout and
rolls back to the old pipeline if anything fails — the old app is never
mutated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MigrationReport", "migrate_netcache_state", "fold_counters"]


@dataclass
class MigrationReport:
    """What a migration moved and what it lost."""

    kv_entries_old: int = 0
    kv_migrated: int = 0
    kv_dropped: int = 0
    cms_rows_migrated: int = 0
    cms_rows_dropped: int = 0
    cms_exact_fold: bool = True
    cms_mass_old: int = 0
    cms_mass_new: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def kv_loss_fraction(self) -> float:
        if self.kv_entries_old == 0:
            return 0.0
        return self.kv_dropped / self.kv_entries_old

    def to_dict(self) -> dict:
        return {
            "kv_entries_old": self.kv_entries_old,
            "kv_migrated": self.kv_migrated,
            "kv_dropped": self.kv_dropped,
            "kv_loss_fraction": self.kv_loss_fraction,
            "cms_rows_migrated": self.cms_rows_migrated,
            "cms_rows_dropped": self.cms_rows_dropped,
            "cms_exact_fold": self.cms_exact_fold,
            "cms_mass_old": self.cms_mass_old,
            "cms_mass_new": self.cms_mass_new,
        }


def fold_counters(old: np.ndarray, new_cells: int, mask: int) -> tuple[np.ndarray, bool]:
    """Fold a counter row onto ``new_cells`` cells (see module docstring).

    Returns ``(folded, exact)`` where ``exact`` is True when the fold is
    an exact re-aggregation (same size, or the old size is a multiple of
    the new one).
    """
    old_cells = len(old)
    if new_cells == old_cells:
        return old.copy(), True
    src = old.astype(np.uint64)
    folded = np.zeros(new_cells, dtype=np.uint64)
    np.add.at(folded, np.arange(old_cells) % new_cells, src)
    exact = old_cells % new_cells == 0 if new_cells < old_cells else False
    return folded & np.uint64(mask), exact


def migrate_netcache_state(old_app, new_app) -> MigrationReport:
    """Populate ``new_app``'s registers from ``old_app``'s state.

    Both arguments are :class:`~repro.apps.netcache.NetCacheApp`-shaped:
    a ``pipeline`` with ``cms_sketch[r]`` / ``kv_keys[r]`` / ``kv_val0[r]``
    register families plus ``cms_rows``/``kv_rows`` counts. ``old_app``
    is only read.
    """
    report = MigrationReport()

    # -- CMS fold --------------------------------------------------------------
    common_rows = min(old_app.cms_rows, new_app.cms_rows)
    for row in range(common_rows):
        src = old_app.pipeline.registers.get(f"cms_sketch[{row}]")
        dst = new_app.pipeline.registers.get(f"cms_sketch[{row}]")
        folded, exact = fold_counters(src.dump(), dst.cells, dst.mask)
        dst.load(folded)
        report.cms_rows_migrated += 1
        report.cms_exact_fold = report.cms_exact_fold and exact
        report.cms_mass_old += int(src.dump().sum())
        report.cms_mass_new += int(folded.sum())
    report.cms_rows_dropped = max(old_app.cms_rows - common_rows, 0)
    if report.cms_rows_dropped:
        report.notes.append(
            f"{report.cms_rows_dropped} sketch rows dropped (fewer rows "
            "in the new layout)"
        )

    # -- KV re-admission by heat ------------------------------------------------
    entries = old_app.cached_entries()
    report.kv_entries_old = len(entries)
    ranked = sorted(
        ((old_app._cms_estimate(key), key, value)
         for _row, key, value in entries),
        reverse=True,
    )
    seen: set[int] = set()
    for heat, key, value in ranked:
        if key in seen:
            continue
        seen.add(key)
        if new_app.install(key, value):
            report.kv_migrated += 1
        else:
            report.kv_dropped += 1
    if report.kv_dropped:
        report.notes.append(
            f"{report.kv_dropped} cache entries dropped (no free candidate "
            "slot in the new layout)"
        )
    return report
