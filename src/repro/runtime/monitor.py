"""Traffic monitor: sliding-window hit rate, occupancy, and drift.

The monitor is the runtime's sensor. The packet loop reports each
processed window (``record``); the monitor keeps a bounded history of
per-window hit rates, an occupancy snapshot per structure, and a drift
signal: the current window's hit rate falling a configured fraction
below the steady baseline. A drift detection is what arms the
reconfiguration planner when no explicit target change is pending —
NetCache's "the hot set moved and the cache stopped following it".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["WindowSample", "TrafficMonitor"]


@dataclass(frozen=True)
class WindowSample:
    """Aggregated statistics of one monitoring window."""

    index: int
    packets: int
    hits: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.packets if self.packets else 0.0


class TrafficMonitor:
    """Sliding-window statistics over the packet stream.

    ``baseline_windows`` windows form the steady-state reference (the
    mean of the most recent full windows *before* the current one);
    drift is declared when the newest window's hit rate drops more than
    ``drop_threshold`` (relative) below that baseline. The first
    ``warmup_windows`` windows never signal drift — a cold cache always
    starts near 0% and must be allowed to fill.
    """

    def __init__(
        self,
        baseline_windows: int = 5,
        drop_threshold: float = 0.2,
        warmup_windows: int = 4,
        history: int = 4096,
    ):
        if not 0.0 < drop_threshold < 1.0:
            raise ValueError("drop_threshold must be within (0, 1)")
        self.baseline_windows = baseline_windows
        self.drop_threshold = drop_threshold
        self.warmup_windows = warmup_windows
        self.samples: deque[WindowSample] = deque(maxlen=history)
        self.windows_recorded = 0
        self._windows_since_reset = 0

    # -- recording -------------------------------------------------------------
    def record(self, hits: int, packets: int) -> WindowSample:
        sample = WindowSample(
            index=self.windows_recorded, packets=packets, hits=hits
        )
        self.samples.append(sample)
        self.windows_recorded += 1
        self._windows_since_reset += 1
        return sample

    def reset_baseline(self) -> None:
        """Restart warmup — called right after a hot swap so the
        rebuilding cache is not immediately re-flagged as drifting."""
        self._windows_since_reset = 0

    # -- signals ---------------------------------------------------------------
    @property
    def timeline(self) -> list[float]:
        """Per-window hit rates, oldest first (bounded by ``history``)."""
        return [s.hit_rate for s in self.samples]

    def current_rate(self) -> float:
        return self.samples[-1].hit_rate if self.samples else 0.0

    def steady_rate(self, windows: int | None = None) -> float:
        """Mean hit rate over the last ``windows`` full windows
        (excluding none — this *includes* the newest)."""
        windows = windows or self.baseline_windows
        recent = list(self.samples)[-windows:]
        if not recent:
            return 0.0
        return sum(s.hit_rate for s in recent) / len(recent)

    def baseline_rate(self) -> float:
        """Steady reference: mean of the ``baseline_windows`` windows
        preceding the current one."""
        prior = list(self.samples)[:-1][-self.baseline_windows:]
        if not prior:
            return 0.0
        return sum(s.hit_rate for s in prior) / len(prior)

    def drift_detected(self) -> bool:
        """True when the newest window sits ``drop_threshold`` below the
        baseline (and warmup has passed since the last reset/swap)."""
        if self._windows_since_reset <= max(self.warmup_windows,
                                            self.baseline_windows):
            return False
        baseline = self.baseline_rate()
        if baseline <= 0.0:
            return False
        return self.current_rate() < baseline * (1.0 - self.drop_threshold)

    # -- occupancy -------------------------------------------------------------
    @staticmethod
    def structure_occupancy(app) -> dict[str, float]:
        """Per-structure occupancy of a NetCache-style app: fraction of
        cache slots filled and of sketch counters touched."""
        out = {"kv": app.kv_occupancy()}
        cells = touched = 0
        for row in range(app.cms_rows):
            array = app.pipeline.registers.get(f"cms_sketch[{row}]")
            cells += array.cells
            touched += array.nonzero_cells()
        out["cms"] = touched / cells if cells else 0.0
        return out
