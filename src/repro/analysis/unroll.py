"""Upper bounds for loop unrolling (paper §4.2).

For each symbolic value ``v`` that bounds loops, the compiler unrolls
those loops K = 1, 2, ... times, builds the dependency graph G_v over the
unrolled instances, and stops when the program provably cannot fit:

1. the longest simple path in G_v exceeds the stage count S, or
2. the total ALU demand exceeds the pipeline budget (F + L) · S.

Following Figure 9 (where K = 3 makes the path too long "hence the loop
is unrolled twice"), the returned bound is the largest K at which neither
criterion fires.

Two further refinements — both conservative in the safe direction and
individually switchable — tighten bounds the ILP could never use anyway:

3. PHV: K iterations of elastic metadata cannot exceed ``P − P_fixed``;
4. memory: K iterations each need at least one cell of every register
   family they instantiate, within the pipeline's total memory.

Numeric caps from ``assume`` clauses (§3.2.1) short-circuit the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..lang.symbols import ProgramInfo, eval_static
from ..lang.errors import SemanticError
from ..lang import ast
from ..pisa.resources import TargetSpec
from .assumes import extract_numeric_bounds
from .dependencies import build_dependency_graph
from .ir import ProgramIR, instantiate

__all__ = ["BoundResult", "UnrollBounds", "compute_upper_bounds", "UnrollOptions"]

# Safety cap when no criterion ever fires (degenerate loop bodies).
_HARD_CAP = 256


@dataclass(frozen=True)
class UnrollOptions:
    """Switches for the bound computation (ablation hooks)."""

    use_phv_criterion: bool = True
    use_memory_criterion: bool = True
    exclusion_as_precedence: bool = False
    hard_cap: int = _HARD_CAP


@dataclass
class BoundResult:
    """Outcome for one symbolic value."""

    symbolic: str
    bound: int
    criterion: str           # which test fired ('stages', 'alus', 'phv', 'memory', 'assume', 'cap')
    tested_k: int = 0        # the K at which the test fired (bound + 1 usually)
    path_lengths: list[int] = field(default_factory=list)  # per-K longest path


@dataclass
class UnrollBounds:
    """Bounds for all loop symbolics of a program."""

    results: dict[str, BoundResult]

    def bound(self, symbolic: str) -> int:
        return self.results[symbolic].bound

    def as_counts(self) -> dict[str, int]:
        return {sym: res.bound for sym, res in self.results.items()}


def _elastic_metadata_bits_per_iteration(info: ProgramInfo, symbolic: str) -> int:
    """PHV bits one iteration of ``symbolic`` adds (elastic arrays sized by it)."""
    bits = 0
    for fd in info.metadata.values():
        if fd.array_size is None:
            continue
        names = {
            n.ident for n in ast.walk(fd.array_size) if isinstance(n, ast.Name)
        }
        if symbolic in names:
            bits += fd.width
    return bits


def _min_register_bits_per_iteration(info: ProgramInfo, symbolic: str) -> int:
    """Minimum register bits one iteration needs (≥ 1 cell per family)."""
    bits = 0
    for reg in info.registers.values():
        count = reg.decl.count
        if count is None:
            continue
        names = {n.ident for n in ast.walk(count) if isinstance(n, ast.Name)}
        if symbolic in names:
            bits += reg.cell_bits
    return bits


def _upper_bound_for(
    ir: ProgramIR,
    symbolic: str,
    target: TargetSpec,
    options: UnrollOptions,
    assume_cap: int | None,
) -> BoundResult:
    info = ir.info
    meta_bits = _elastic_metadata_bits_per_iteration(info, symbolic)
    reg_bits = _min_register_bits_per_iteration(info, symbolic)
    phv_budget = target.phv_bits - info.metadata_fixed_bits()
    cap = options.hard_cap if assume_cap is None else min(assume_cap, options.hard_cap)
    path_lengths: list[int] = []

    k = 0
    while k < cap:
        k_next = k + 1
        # Fast arithmetic criteria first (no graph needed).
        if options.use_phv_criterion and meta_bits > 0 \
                and k_next * meta_bits > phv_budget:
            return BoundResult(symbolic, k, "phv", k_next, path_lengths)
        if options.use_memory_criterion and reg_bits > 0 \
                and k_next * reg_bits > target.total_memory_bits:
            return BoundResult(symbolic, k, "memory", k_next, path_lengths)

        counts = {symbolic: k_next}
        instances = [
            inst
            for inst in instantiate(ir, counts)
            if inst.symbolic == symbolic
        ]
        if not instances:
            return BoundResult(symbolic, 0, "no-loops", 0, [])
        graph = build_dependency_graph(
            instances, exclusion_as_precedence=options.exclusion_as_precedence
        )
        path = graph.longest_simple_path(cutoff=target.stages)
        path_lengths.append(path)
        if path > target.stages:
            return BoundResult(symbolic, max(k, 1), "stages", k_next, path_lengths)
        alus = sum(target.hf(i.cost) + target.hl(i.cost) for i in instances)
        if alus > target.total_alus:
            return BoundResult(symbolic, max(k, 1), "alus", k_next, path_lengths)
        k = k_next

    criterion = "assume" if assume_cap is not None and cap == assume_cap else "cap"
    return BoundResult(symbolic, k, criterion, k, path_lengths)


def compute_upper_bounds(
    ir: ProgramIR,
    target: TargetSpec,
    options: UnrollOptions | None = None,
) -> UnrollBounds:
    """Compute unroll bounds for every loop symbolic in the program.

    Nested-loop note: elaboration forbids directly nested for-loops, so
    each symbolic is analyzed with every *other* symbolic held at one
    iteration — the paper's "most conservative assumption about the other
    loops".
    """
    options = options or UnrollOptions()
    numeric = extract_numeric_bounds(ir.info)
    results: dict[str, BoundResult] = {}
    for symbolic in ir.loop_symbolics:
        cap = None
        if symbolic in numeric and numeric[symbolic].upper is not None:
            cap = max(numeric[symbolic].upper, 1)
        results[symbolic] = _upper_bound_for(ir, symbolic, target, options, cap)
    return UnrollBounds(results=results)
