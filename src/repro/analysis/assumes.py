"""Extracting numeric bounds on symbolic values from ``assume`` clauses.

The ILP receives every assume as a linear constraint
(:mod:`repro.core.layout`), but the loop-unrolling phase benefits from
plain numeric caps: ``assume rows >= 1 && rows < 4`` caps the unroll
bound for ``rows`` at 3 before any graph is built (§3.2.1's
diminishing-returns example does exactly this).

Only simple shapes contribute here — conjunctions of comparisons between
one symbolic and a constant. Everything else is left to the ILP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..lang import ast
from ..lang.symbols import ProgramInfo, eval_static
from ..lang.errors import SemanticError

__all__ = ["NumericBounds", "extract_numeric_bounds"]


@dataclass
class NumericBounds:
    """Closed interval of allowed values for one symbolic."""

    lower: int = 0
    upper: int | None = None  # None = unbounded above

    def tighten_lower(self, value: int) -> None:
        self.lower = max(self.lower, value)

    def tighten_upper(self, value: int) -> None:
        self.upper = value if self.upper is None else min(self.upper, value)


def _try_const(expr: ast.Expr, consts: dict[str, int]) -> int | None:
    try:
        value = eval_static(expr, consts)
    except SemanticError:
        return None
    return int(value) if isinstance(value, (int, float)) and value == int(value) else None


def _apply_comparison(
    bounds: dict[str, NumericBounds],
    sym: str,
    op: str,
    const: int,
    sym_on_left: bool,
) -> None:
    """Record ``sym OP const`` (or ``const OP sym`` when not sym_on_left)."""
    if not sym_on_left:
        flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "=="}
        op = flip[op]
    entry = bounds.setdefault(sym, NumericBounds())
    if op == "<":
        entry.tighten_upper(const - 1)
    elif op == "<=":
        entry.tighten_upper(const)
    elif op == ">":
        entry.tighten_lower(const + 1)
    elif op == ">=":
        entry.tighten_lower(const)
    elif op == "==":
        entry.tighten_lower(const)
        entry.tighten_upper(const)


def _walk_condition(
    cond: ast.Expr,
    symbolics: set[str],
    consts: dict[str, int],
    bounds: dict[str, NumericBounds],
) -> None:
    if isinstance(cond, ast.BinaryOp):
        if cond.op == "&&":
            _walk_condition(cond.left, symbolics, consts, bounds)
            _walk_condition(cond.right, symbolics, consts, bounds)
            return
        if cond.op in ("<", "<=", ">", ">=", "=="):
            left, right = cond.left, cond.right
            if isinstance(left, ast.Name) and left.ident in symbolics:
                const = _try_const(right, consts)
                if const is not None:
                    _apply_comparison(bounds, left.ident, cond.op, const, True)
                return
            if isinstance(right, ast.Name) and right.ident in symbolics:
                const = _try_const(left, consts)
                if const is not None:
                    _apply_comparison(bounds, right.ident, cond.op, const, False)
                return
    # Disjunctions, affine combinations, products: handled by the ILP only.


def extract_numeric_bounds(info: ProgramInfo) -> dict[str, NumericBounds]:
    """Per-symbolic numeric intervals implied by the program's assumes."""
    bounds: dict[str, NumericBounds] = {}
    symbolics = set(info.symbolics)
    for assume in info.program.assumes():
        _walk_condition(assume.condition, symbolics, info.consts, bounds)
    for entry in bounds.values():
        if entry.upper is not None and entry.upper < entry.lower:
            raise SemanticError(
                "assume clauses are contradictory "
                f"(lower {entry.lower} > upper {entry.upper})"
            )
    return bounds
