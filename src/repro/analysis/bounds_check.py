"""Static bounds checking of elastic-array indices (§7 future work).

The paper's verification outlook: "we hope to verify that all indices
used with symbolic arrays are in bounds." After elaboration every index
into an elastic metadata array or register family is a constant (the
loop variable substituted per iteration), so the property is decidable
by a walk over the unrolled program:

* metadata array ``meta.f[i]`` — the folded index must lie in
  ``[0, extent)`` where the extent is the array's symbolic bound (checked
  against the iteration count in force);
* register instance ``r[i]`` — the folded index must lie in
  ``[0, count)``;
* a non-constant index (anything the fold cannot reduce) is reported:
  data-dependent indexing of elastic arrays is not implementable on
  PISA metadata.

``check_index_bounds`` raises :class:`IndexBoundsError` on the first
violation; ``collect_index_diagnostics`` returns all of them (used by the
compiler driver for error reporting and by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.symbols import ProgramInfo, eval_static
from .ir import ActionInstance, ProgramIR, instantiate

__all__ = [
    "IndexBoundsError",
    "IndexDiagnostic",
    "collect_index_diagnostics",
    "check_index_bounds",
]


class IndexBoundsError(SemanticError):
    """An elastic-array index is provably out of bounds (or non-static)."""


@dataclass(frozen=True)
class IndexDiagnostic:
    """One out-of-bounds (or unprovable) index occurrence."""

    unit: str          # action-instance label
    array: str         # array/register name
    index: int | None  # folded value (None = not a constant)
    extent: int        # allowed extent
    message: str

    def __str__(self) -> str:
        return self.message


def _elastic_extents(info: ProgramInfo, counts: dict[str, int]) -> dict[str, int]:
    """Extent per elastic metadata array, at the given iteration counts."""
    env = dict(info.consts)
    env.update(counts)
    extents: dict[str, int] = {}
    for fd in info.metadata.values():
        if fd.array_size is None:
            continue
        try:
            extents[fd.name] = int(eval_static(fd.array_size, env))
        except SemanticError:
            continue  # depends on a symbolic without a count: skip
    return extents


def _register_counts(info: ProgramInfo, counts: dict[str, int]) -> dict[str, int]:
    env = dict(info.consts)
    env.update(counts)
    out: dict[str, int] = {}
    for name, reg in info.registers.items():
        if reg.decl.count is None:
            out[name] = 1
            continue
        try:
            out[name] = int(eval_static(reg.decl.count, env))
        except SemanticError:
            continue
    return out


def _fold(expr: ast.Expr, consts: dict[str, int]) -> int | None:
    try:
        return int(eval_static(expr, consts))
    except SemanticError:
        return None


def _scan_instance(
    inst: ActionInstance,
    info: ProgramInfo,
    meta_extents: dict[str, int],
    reg_counts: dict[str, int],
) -> list[IndexDiagnostic]:
    diagnostics: list[IndexDiagnostic] = []

    def visit(node: ast.Node) -> None:
        if isinstance(node, ast.Index):
            base = node.base
            # meta.field[idx]
            if isinstance(base, ast.Member) and base.name in meta_extents:
                extent = meta_extents[base.name]
                idx = _fold(node.index, info.consts)
                if idx is None:
                    diagnostics.append(IndexDiagnostic(
                        inst.label, base.name, None, extent,
                        f"{inst.label}: index into elastic array "
                        f"'{base.name}' is not a compile-time constant",
                    ))
                elif not 0 <= idx < extent:
                    diagnostics.append(IndexDiagnostic(
                        inst.label, base.name, idx, extent,
                        f"{inst.label}: index {idx} out of bounds for "
                        f"elastic array '{base.name}' (extent {extent})",
                    ))
            # register[idx] — instance selection
            if isinstance(base, ast.Name) and base.ident in reg_counts:
                count = reg_counts[base.ident]
                idx = _fold(node.index, info.consts)
                if idx is None:
                    diagnostics.append(IndexDiagnostic(
                        inst.label, base.ident, None, count,
                        f"{inst.label}: register instance selector for "
                        f"'{base.ident}' is not a compile-time constant",
                    ))
                elif not 0 <= idx < count:
                    diagnostics.append(IndexDiagnostic(
                        inst.label, base.ident, idx, count,
                        f"{inst.label}: register instance {idx} out of "
                        f"bounds for '{base.ident}' ({count} instances)",
                    ))
        for child in node.children():
            visit(child)

    for stmt in inst.body:
        visit(stmt)
    if inst.guard is not None:
        visit(inst.guard)
    return diagnostics


def collect_index_diagnostics(
    ir: ProgramIR, counts: dict[str, int]
) -> list[IndexDiagnostic]:
    """All index violations of the program unrolled at ``counts``."""
    info = ir.info
    meta_extents = _elastic_extents(info, counts)
    reg_counts = _register_counts(info, counts)
    out: list[IndexDiagnostic] = []
    for inst in instantiate(ir, counts):
        out.extend(_scan_instance(inst, info, meta_extents, reg_counts))
    return out


def check_index_bounds(ir: ProgramIR, counts: dict[str, int]) -> None:
    """Raise :class:`IndexBoundsError` on the first violation."""
    diagnostics = collect_index_diagnostics(ir, counts)
    if diagnostics:
        raise IndexBoundsError(str(diagnostics[0]))
