"""Dependency graphs over action instances (paper §4.2).

Nodes group actions that access the same register instance (they must be
placed in the same stage). Two edge types connect nodes:

* **precedence** (directed): a data/control dependency forces the source
  node into a strictly earlier stage;
* **exclusion** (undirected): commutative but conflicting actions must be
  in different stages, in either order (e.g. the ``min_i`` updates of the
  count-min sketch).

The unrolling bound needs the *longest simple path*, where a simple path
may traverse precedence edges forward and exclusion edges in either
direction, visiting each node at most once (Figure 9's path
``incr_1, min_1, min_2, min_3`` has length 4). Longest simple path is
NP-hard in general; :meth:`DependencyGraph.longest_simple_path` is exact
with two optimizations that exploit the symmetry of unrolled loops:

* early exit once a path longer than the requested cutoff is found;
* symmetry pruning — among unvisited, mutually symmetric nodes (same
  template, same neighborhood shape) only the lowest-numbered one extends
  a path, collapsing the factorial blowup of exclusion cliques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import ActionInstance

__all__ = ["DepNode", "DependencyGraph"]


@dataclass
class DepNode:
    """A set of action instances that must share one stage."""

    node_id: int
    instances: list[ActionInstance] = field(default_factory=list)

    @property
    def label(self) -> str:
        return "+".join(inst.label for inst in self.instances)

    @property
    def template_key(self) -> tuple:
        """Symmetry class key: the multiset of member action templates."""
        return tuple(sorted(inst.name for inst in self.instances))

    def __hash__(self):
        return self.node_id

    def __repr__(self) -> str:
        return f"DepNode({self.label})"


class DependencyGraph:
    """Mixed precedence/exclusion graph over same-stage node groups."""

    def __init__(self):
        self.nodes: list[DepNode] = []
        self._node_of_instance: dict[int, DepNode] = {}
        # Adjacency: node_id -> set of node_ids.
        self.precedence_out: dict[int, set[int]] = {}
        self.precedence_in: dict[int, set[int]] = {}
        self.exclusion: dict[int, set[int]] = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, instances: list[ActionInstance]) -> DepNode:
        node = DepNode(node_id=len(self.nodes), instances=list(instances))
        self.nodes.append(node)
        for inst in instances:
            self._node_of_instance[inst.uid] = node
        self.precedence_out[node.node_id] = set()
        self.precedence_in[node.node_id] = set()
        self.exclusion[node.node_id] = set()
        return node

    def node_of(self, instance: ActionInstance) -> DepNode:
        return self._node_of_instance[instance.uid]

    def add_precedence(self, src: DepNode, dst: DepNode) -> None:
        """src must be placed strictly before dst."""
        if src.node_id == dst.node_id:
            return
        self.precedence_out[src.node_id].add(dst.node_id)
        self.precedence_in[dst.node_id].add(src.node_id)

    def add_exclusion(self, a: DepNode, b: DepNode) -> None:
        """a and b must be in different stages, in either order."""
        if a.node_id == b.node_id:
            return
        # A precedence edge already implies separation; keep it dominant.
        if b.node_id in self.precedence_out[a.node_id] or \
                a.node_id in self.precedence_out[b.node_id]:
            return
        self.exclusion[a.node_id].add(b.node_id)
        self.exclusion[b.node_id].add(a.node_id)

    # -- queries ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def precedence_edges(self) -> list[tuple[DepNode, DepNode]]:
        return [
            (self.nodes[src], self.nodes[dst])
            for src, dsts in self.precedence_out.items()
            for dst in dsts
        ]

    def exclusion_edges(self) -> list[tuple[DepNode, DepNode]]:
        seen = set()
        out = []
        for a, others in self.exclusion.items():
            for b in others:
                if (b, a) not in seen:
                    seen.add((a, b))
                    out.append((self.nodes[a], self.nodes[b]))
        return out

    def neighbors(self, node_id: int) -> set[int]:
        """Nodes reachable in one step of a simple path from ``node_id``."""
        return self.precedence_out[node_id] | self.exclusion[node_id]

    def has_cycle(self) -> bool:
        """True if the precedence relation alone is cyclic (unschedulable)."""
        color = {n.node_id: 0 for n in self.nodes}

        def dfs(u: int) -> bool:
            color[u] = 1
            for v in self.precedence_out[u]:
                if color[v] == 1:
                    return True
                if color[v] == 0 and dfs(v):
                    return True
            color[u] = 2
            return False

        return any(color[n.node_id] == 0 and dfs(n.node_id) for n in self.nodes)

    # -- longest simple path -----------------------------------------------------
    def longest_simple_path(self, cutoff: int | None = None) -> int:
        """Length (node count) of the longest simple path.

        A simple path follows precedence edges forward and exclusion edges
        in either direction without revisiting nodes. With ``cutoff`` set,
        the search stops early and returns ``cutoff + 1`` as soon as any
        path exceeds it (that is all the unrolling bound needs).
        """
        if not self.nodes:
            return 0
        limit = cutoff + 1 if cutoff is not None else self.num_nodes

        # Symmetry classes: nodes with identical template and neighbor-shape.
        class_key: dict[int, tuple] = {}
        for node in self.nodes:
            nid = node.node_id
            shape = (
                node.template_key,
                tuple(sorted(self.nodes[v].template_key for v in self.precedence_out[nid])),
                tuple(sorted(self.nodes[v].template_key for v in self.precedence_in[nid])),
                tuple(sorted(self.nodes[v].template_key for v in self.exclusion[nid])),
            )
            class_key[nid] = shape

        visited: set[int] = set()
        best = 0

        def allowed(candidates: set[int]) -> list[int]:
            """Symmetry pruning: keep only the lowest-id unvisited node of
            each class whose unvisited class members are interchangeable."""
            chosen: dict[tuple, int] = {}
            singles: list[int] = []
            for v in sorted(candidates):
                key = class_key[v]
                if key not in chosen:
                    chosen[key] = v
                    singles.append(v)
                else:
                    # Another member of the same class is already a candidate;
                    # only expand the lowest id — the rest are symmetric.
                    pass
            return singles

        def dfs(u: int, depth: int) -> None:
            nonlocal best
            best = max(best, depth)
            if best >= limit:
                return
            visited.add(u)
            for v in allowed(self.neighbors(u) - visited):
                dfs(v, depth + 1)
                if best >= limit:
                    break
            visited.remove(u)

        for start in allowed(set(n.node_id for n in self.nodes)):
            dfs(start, 1)
            if best >= limit:
                break
        return best

    def __repr__(self) -> str:
        return (
            f"DependencyGraph(nodes={self.num_nodes}, "
            f"prec={len(self.precedence_edges())}, "
            f"excl={len(self.exclusion_edges())})"
        )
