"""PHV liveness analysis (§4.4 "PHV reuse" — the paper's future work).

The layout ILP charges every elastic metadata field against the PHV for
the whole pipeline. In hardware, a PHV container can be recycled once
its field is dead (written later or never read again). This module
computes, for a *compiled* layout, each metadata field's live interval
across stages and the peak concurrent PHV demand — quantifying how many
bits field recycling would save (reported by the
``ablations/bench_phv_reuse`` benchmark).

A field is **live** at stage boundaries between its first definition and
its last use:

* def sites: stages of units writing the field;
* use sites: stages of units reading it (guards included);
* packet-input fields (never written before first read) are live from
  stage 0;
* a field read after its last write in the same stage it was written
  consumes no inter-stage PHV slot on its own.

The analysis is conservative the same way hardware is: a field occupies
its container from (first def stage) through (last use stage), inclusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid analysis -> core -> analysis import cycle
    from ..core.program import CompiledProgram

__all__ = ["FieldLiveness", "LivenessReport", "analyze_phv_liveness"]


@dataclass
class FieldLiveness:
    """Live interval of one PHV field across the pipeline."""

    name: str
    width: int
    first_def: int | None
    last_use: int | None

    @property
    def live_range(self) -> tuple[int, int] | None:
        """(first, last) stage the field's container is occupied."""
        if self.first_def is None and self.last_use is None:
            return None  # declared but never touched
        start = 0 if self.first_def is None else self.first_def
        end = self.last_use if self.last_use is not None else self.first_def
        return (min(start, end), max(start, end))

    def live_at(self, stage: int) -> bool:
        interval = self.live_range
        return interval is not None and interval[0] <= stage <= interval[1]


@dataclass
class LivenessReport:
    """Whole-program PHV liveness summary."""

    fields: dict[str, FieldLiveness] = field(default_factory=dict)
    stages: int = 0
    allocated_bits: int = 0

    def live_bits_at(self, stage: int) -> int:
        return sum(f.width for f in self.fields.values() if f.live_at(stage))

    @property
    def peak_bits(self) -> int:
        """Max concurrent live PHV bits over all stage boundaries."""
        if self.stages == 0:
            return 0
        return max(self.live_bits_at(s) for s in range(self.stages))

    @property
    def reuse_savings_bits(self) -> int:
        """PHV bits a recycling allocator would save vs whole-pipeline
        allocation (what the ILP currently charges)."""
        return max(self.allocated_bits - self.peak_bits, 0)

    @property
    def reuse_savings_fraction(self) -> float:
        if self.allocated_bits == 0:
            return 0.0
        return self.reuse_savings_bits / self.allocated_bits

    def format(self) -> str:
        lines = [
            f"PHV liveness: {self.allocated_bits} bits allocated, "
            f"peak concurrent {self.peak_bits} bits "
            f"(reuse would save {self.reuse_savings_bits} bits, "
            f"{self.reuse_savings_fraction:.0%})",
        ]
        for name in sorted(self.fields):
            fl = self.fields[name]
            interval = fl.live_range
            span = "never used" if interval is None else \
                f"stages {interval[0]}..{interval[1]}"
            lines.append(f"  {name:30s} {fl.width:4d} b  {span}")
        return "\n".join(lines)


def _collect_field_widths(compiled: "CompiledProgram") -> dict[str, int]:
    from ..lang.symbols import eval_static

    info = compiled.info
    env = dict(info.consts)
    env.update(compiled.symbol_values)
    widths: dict[str, int] = {}
    for fd in info.metadata.values():
        base = f"meta.{fd.name}"
        if fd.array_size is None:
            widths[base] = fd.width
        else:
            for i in range(int(eval_static(fd.array_size, env))):
                widths[f"{base}[{i}]"] = fd.width
    return widths


def analyze_phv_liveness(compiled: "CompiledProgram") -> LivenessReport:
    """Compute live intervals for every metadata PHV field of a layout."""
    widths = _collect_field_widths(compiled)
    report = LivenessReport(
        stages=compiled.target.stages,
        allocated_bits=sum(widths.values()),
    )
    for name, width in widths.items():
        report.fields[name] = FieldLiveness(
            name=name, width=width, first_def=None, last_use=None
        )

    for unit in compiled.units:
        inst = unit.instance
        for key in inst.writes:
            fl = report.fields.get(key)
            if fl is not None and (fl.first_def is None or unit.stage < fl.first_def):
                fl.first_def = unit.stage
        for key in inst.reads:
            fl = report.fields.get(key)
            if fl is not None and (fl.last_use is None or unit.stage > fl.last_use):
                fl.last_use = unit.stage
    return report
