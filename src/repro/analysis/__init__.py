"""Program analysis: elaboration, dependencies, and unroll bounds.

Pipeline (paper §4.2):

1. :func:`build_ir` flattens the ingress control into ordered segments;
2. :func:`instantiate` expands elastic segments at chosen iteration counts;
3. :func:`build_dependency_graph` groups same-register actions and adds
   precedence/exclusion edges;
4. :func:`compute_upper_bounds` finds, per symbolic value, the largest
   unroll count that could possibly fit on the target.
"""

from .assumes import NumericBounds, extract_numeric_bounds
from .bounds_check import (
    IndexBoundsError,
    IndexDiagnostic,
    check_index_bounds,
    collect_index_diagnostics,
)
from .depgraph import DependencyGraph, DepNode
from .dot import flow_to_dot, graph_to_dot, witness_edges
from .liveness import FieldLiveness, LivenessReport, analyze_phv_liveness
from .dependencies import AnalysisError, build_dependency_graph, classify_pair
from .ir import (
    ActionInstance,
    ElasticSegment,
    InelasticSegment,
    ProgramIR,
    UnitTemplate,
    UpdateKind,
    build_ir,
    field_key,
    instantiate,
    module_of_instance,
    substitute,
)
from .taint import (
    FlowDiagnostic,
    TaintResult,
    cross_module_flows,
    field_owner,
    propagate_taint,
    taint_program,
)
from .unroll import (
    BoundResult,
    UnrollBounds,
    UnrollOptions,
    compute_upper_bounds,
)

__all__ = [
    "NumericBounds",
    "IndexBoundsError",
    "IndexDiagnostic",
    "check_index_bounds",
    "collect_index_diagnostics",
    "extract_numeric_bounds",
    "DependencyGraph",
    "DepNode",
    "flow_to_dot",
    "graph_to_dot",
    "witness_edges",
    "FieldLiveness",
    "LivenessReport",
    "analyze_phv_liveness",
    "AnalysisError",
    "build_dependency_graph",
    "classify_pair",
    "ActionInstance",
    "ElasticSegment",
    "InelasticSegment",
    "ProgramIR",
    "UnitTemplate",
    "UpdateKind",
    "build_ir",
    "field_key",
    "instantiate",
    "module_of_instance",
    "substitute",
    "FlowDiagnostic",
    "TaintResult",
    "cross_module_flows",
    "field_owner",
    "propagate_taint",
    "taint_program",
    "BoundResult",
    "UnrollBounds",
    "UnrollOptions",
    "compute_upper_bounds",
]
