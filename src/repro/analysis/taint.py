"""Module-ownership taint analysis over the elaborated dependency IR.

The linker's original isolation check was *syntactic*: a module touching
a register **name** owned by another module raised ``IsolationError``,
but nothing stopped tenant A's state from influencing tenant B's output
through a chain of metadata writes, hash seeds, or table actions. This
module implements the semantic check in the style of P4BID-like
information-flow systems:

* **Labels** are sets of module names — the lattice is the powerset of
  modules ordered by inclusion, with join = union. A label on a field or
  register reads "these modules' code/state influenced this value".
* **Sources**: every register family owned by module *M* starts tainted
  ``{M}`` (persistent state is what the isolation property protects);
  packet-header and metadata fields start untainted (they are the
  per-packet input, owned by whoever the packet came from).
* **Propagation** is a forward may-analysis over the same
  :class:`~repro.analysis.ir.ActionInstance` effect sets the dependency
  graph (:mod:`repro.analysis.dependencies`) is built from: an instance
  of module *m* joins the labels of everything it reads (fields, hash
  inputs, guards, touched registers), adds ``{m}``, and writes the
  result into everything it writes. Register families are both sources
  and sinks, which closes the loop across packets.
* **Declassification**: instances owned by the application glue
  (:data:`APP_MODULE`) propagate *nothing* — the app explicitly
  composing module results (e.g. routing on a sketch's minimum) is the
  sanctioned way to combine tenants, exactly like a ``declassify`` in
  IFC systems.

The fixpoint is computed by chaotic iteration, which for a monotone
system over a finite lattice converges to the least fixpoint regardless
of instance order — the property the driver's plan-level cross-check
(:func:`repro.pisa.plan.plan_taint`) relies on: both passes solve the
same equations over different IRs, so any disagreement is a lowering
bug, not an ordering artifact.

A **violation** is a sink (field or register family) owned by module *B*
whose label contains some other module *A*: tenant A's state/code
influences tenant B's output. Each violation is reported as a
:class:`FlowDiagnostic` carrying a witness path through the dataflow
graph, reconstructed from per-label origin bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import ActionInstance, instantiate, module_of_instance

__all__ = [
    "APP_MODULE",
    "FlowDiagnostic",
    "TaintResult",
    "propagate_taint",
    "cross_module_flows",
    "taint_program",
    "field_owner",
]

#: Owner label of application glue (mirrors ``repro.link.APP_MODULE``;
#: re-declared here so ``analysis`` never imports ``link``).
APP_MODULE = "(app)"

_EMPTY: frozenset[str] = frozenset()


@dataclass(frozen=True)
class FlowDiagnostic:
    """A witnessed cross-module information flow.

    ``source`` state influenced a sink owned by ``sink_module``; the
    ``witness`` tuple is the node path (register families and PHV field
    keys) from a source of the label to the sink, and ``via`` the action
    instances that carried it between consecutive nodes.
    """

    source: str
    sink_module: str
    sink_kind: str  # "field" | "register"
    sink: str       # PHV field key or register family name
    witness: tuple[str, ...] = ()
    via: tuple[str, ...] = ()

    def witness_text(self) -> str:
        """``ctr_reg -[spy_read[0]]-> meta.spy_val`` style path."""
        if not self.witness:
            return self.sink
        parts = [self.witness[0]]
        for i, node in enumerate(self.witness[1:]):
            step = self.via[i] if i < len(self.via) else "?"
            parts.append(f"-[{step}]-> {node}")
        return " ".join(parts)

    def render(self) -> str:
        kind = "register" if self.sink_kind == "register" else "field"
        return (
            f"cross-module flow: state of module '{self.source}' reaches "
            f"{kind} '{self.sink}' owned by module '{self.sink_module}' "
            f"(witness: {self.witness_text()})"
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


# Dataflow nodes: ("field", phv_field_key) | ("reg", register_family).
_Node = tuple[str, str]


def _node_name(node: _Node) -> str:
    return node[1]


@dataclass
class TaintResult:
    """Fixpoint labels plus the origin bookkeeping for witnesses."""

    field_taint: dict[str, frozenset[str]] = field(default_factory=dict)
    register_taint: dict[str, frozenset[str]] = field(default_factory=dict)
    #: (node, label) -> (predecessor node or None, carrying instance label)
    origin: dict[tuple[_Node, str], tuple[_Node | None, str | None]] = (
        field(default_factory=dict))

    def taint_of(self, node: _Node) -> frozenset[str]:
        kind, name = node
        store = self.register_taint if kind == "reg" else self.field_taint
        return store.get(name, _EMPTY)

    def witness(self, sink_kind: str, sink: str,
                label: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Node path and carrying instances from a source of ``label``
        to the sink, walking the origin chain backwards."""
        node: _Node = ("reg" if sink_kind == "register" else "field", sink)
        nodes = [_node_name(node)]
        vias: list[str] = []
        seen = {node}
        while True:
            entry = self.origin.get((node, label))
            if entry is None:
                break
            prev, via = entry
            if via is not None:
                vias.insert(0, via)
            if prev is None or prev in seen:
                if prev is not None:
                    nodes.insert(0, _node_name(prev))
                break
            seen.add(prev)
            nodes.insert(0, _node_name(prev))
            node = prev
        return tuple(nodes), tuple(vias)

    def normalized(self) -> tuple[dict[str, frozenset[str]],
                                  dict[str, frozenset[str]]]:
        """Non-empty label maps only — the shape the driver cross-checks
        against the plan-level pass."""
        return (
            {k: v for k, v in self.field_taint.items() if v},
            {k: v for k, v in self.register_taint.items() if v},
        )


def field_owner(key: str, namespace) -> str | None:
    """Owning module of a PHV field key like ``meta.cms_count[1]``."""
    base = key.split("[", 1)[0]
    if base.startswith("meta."):
        base = base[len("meta."):]
    return namespace.fields.get(base)


def _instance_nodes(inst: ActionInstance) -> tuple[
        list[_Node], list[_Node]]:
    """(inputs, outputs) dataflow nodes of one instance.

    Register families appear on both sides: the effect collector folds
    read-modify-write accesses into one ``registers`` set, and a
    may-analysis must treat any touched family as both source and sink.
    """
    families = sorted({family for family, _ in inst.registers})
    inputs: list[_Node] = [("field", k) for k in sorted(inst.reads)]
    inputs += [("reg", f) for f in families]
    outputs: list[_Node] = [("field", k) for k in sorted(inst.writes)]
    outputs += [("reg", f) for f in families]
    return inputs, outputs


def propagate_taint(
    instances: list[ActionInstance],
    namespace,
    app_module: str = APP_MODULE,
) -> TaintResult:
    """Forward taint fixpoint over elaborated action instances.

    ``namespace`` is a :class:`~repro.lang.symbols.ModuleNamespace`
    (register/field/action ownership). Instances that resolve to the
    application glue — or to no module at all — act as declassifiers.
    """
    result = TaintResult()
    # Seed: persistent state carries its owner's label.
    for family, owner in namespace.registers.items():
        if owner != app_module:
            result.register_taint[family] = frozenset((owner,))
            result.origin[(("reg", family), owner)] = (None, None)

    modules = [module_of_instance(inst, namespace) for inst in instances]
    changed = True
    while changed:
        changed = False
        for inst, module in zip(instances, modules):
            inputs, outputs = _instance_nodes(inst)
            if module is None or module == app_module:
                # Declassified: the app combining module outputs is the
                # sanctioned composition point.
                continue
            carried: set[str] = {module}
            for node in inputs:
                carried |= result.taint_of(node)
            for out in outputs:
                kind, name = out
                store = (result.register_taint if kind == "reg"
                         else result.field_taint)
                have = store.get(name, _EMPTY)
                new = carried - have
                if not new:
                    continue
                store[name] = have | new
                changed = True
                for label in sorted(new):
                    if (out, label) in result.origin:
                        continue
                    prev = next(
                        (n for n in inputs
                         if label in result.taint_of(n) and n != out),
                        None,
                    )
                    result.origin[(out, label)] = (prev, inst.label)
    return result


def cross_module_flows(result: TaintResult, namespace,
                       app_module: str = APP_MODULE) -> list[FlowDiagnostic]:
    """All sinks owned by one module but influenced by another."""
    flows: list[FlowDiagnostic] = []
    for key in sorted(result.field_taint):
        owner = field_owner(key, namespace)
        if owner is None or owner == app_module:
            continue
        for label in sorted(result.field_taint[key]):
            if label == owner or label == app_module:
                continue
            nodes, vias = result.witness("field", key, label)
            flows.append(FlowDiagnostic(
                source=label, sink_module=owner, sink_kind="field",
                sink=key, witness=nodes, via=vias,
            ))
    for family in sorted(result.register_taint):
        owner = namespace.registers.get(family)
        if owner is None or owner == app_module:
            continue
        for label in sorted(result.register_taint[family]):
            if label == owner or label == app_module:
                continue
            nodes, vias = result.witness("register", family, label)
            flows.append(FlowDiagnostic(
                source=label, sink_module=owner, sink_kind="register",
                sink=family, witness=nodes, via=vias,
            ))
    flows.sort(key=lambda f: (f.source, f.sink_module, f.sink_kind, f.sink))
    return flows


def taint_program(ir, counts: dict[str, int], namespace,
                  app_module: str = APP_MODULE) -> TaintResult:
    """Instantiate ``ir`` at ``counts`` and run the taint fixpoint."""
    return propagate_taint(instantiate(ir, counts), namespace, app_module)
