"""Building the dependency graph from action instances (paper §4.2).

Rules, in order of dominance:

1. **Same-stage grouping** — instances that access the same register
   instance are merged into one node (a register lives in exactly one
   stage, and its accessors must be there with it).
2. **Precedence** — for instances ``a`` before ``b`` in program order, a
   read-after-write, write-after-read, or (non-commutative)
   write-after-write conflict on any PHV field makes ``a``'s node precede
   ``b``'s.
3. **Exclusion** — if the only conflicts between ``a`` and ``b`` are
   same-kind commutative updates (both increment, both min-update, ...)
   of shared fields, their nodes get an exclusion edge: separate stages,
   either order.

The paper's prototype (§5) only had precedence information available from
the Tofino toolchain and treated every edge as precedence;
``exclusion_as_precedence=True`` reproduces that degraded mode for the
ablation benchmark.
"""

from __future__ import annotations

from .depgraph import DependencyGraph, DepNode
from .ir import ActionInstance, UpdateKind

__all__ = ["build_dependency_graph", "AnalysisError", "classify_pair"]


class AnalysisError(Exception):
    """Contradictory dependencies (e.g. ordering within one stage group)."""


def _commutative_fields(a: ActionInstance, b: ActionInstance) -> set[str]:
    """Shared written fields updated commutatively with the same kind."""
    shared = set(a.writes) & set(b.writes)
    out = set()
    for field in shared:
        ka = a.commutative.get(field, UpdateKind.PLAIN)
        kb = b.commutative.get(field, UpdateKind.PLAIN)
        if ka == kb and ka != UpdateKind.PLAIN:
            out.add(field)
    return out


def classify_pair(a: ActionInstance, b: ActionInstance) -> str | None:
    """Classify the dependency from ``a`` (earlier) to ``b`` (later).

    Returns ``"precedence"``, ``"exclusion"``, or ``None`` (independent).
    """
    comm = _commutative_fields(a, b)

    def conflict(fields_a, fields_b) -> bool:
        return bool((set(fields_a) & set(fields_b)) - comm)

    if conflict(a.writes, b.reads) or conflict(a.reads, b.writes) \
            or conflict(a.writes, b.writes):
        return "precedence"
    if comm:
        return "exclusion"
    return None


def build_dependency_graph(
    instances: list[ActionInstance],
    exclusion_as_precedence: bool = False,
) -> DependencyGraph:
    """Group instances into nodes and add precedence/exclusion edges.

    ``instances`` must be in program order. With
    ``exclusion_as_precedence`` set, commutative conflicts produce
    precedence edges in program order instead (the prototype limitation
    described in §5).
    """
    graph = DependencyGraph()

    # -- same-stage grouping (union-find over shared register instances) -----
    parent = {inst.uid: inst.uid for inst in instances}

    def find(u: int) -> int:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        return u

    def union(u: int, v: int) -> None:
        parent[find(u)] = find(v)

    by_register: dict[tuple, list[ActionInstance]] = {}
    for inst in instances:
        for reg in inst.registers:
            by_register.setdefault(reg, []).append(inst)
    for members in by_register.values():
        for other in members[1:]:
            union(members[0].uid, other.uid)

    groups: dict[int, list[ActionInstance]] = {}
    for inst in instances:
        groups.setdefault(find(inst.uid), []).append(inst)
    # Preserve program order of groups (by earliest member).
    ordered_groups = sorted(groups.values(), key=lambda g: g[0].source_order)
    nodes: list[DepNode] = [graph.add_node(group) for group in ordered_groups]

    # -- intra-node sanity: ordering inside one stage is impossible ------------
    for node in nodes:
        members = sorted(node.instances, key=lambda m: m.source_order)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if classify_pair(a, b) == "precedence":
                    raise AnalysisError(
                        f"actions {a.label} and {b.label} must share a stage "
                        f"(common register) but also have an ordering dependency"
                    )

    # -- inter-node edges ---------------------------------------------------------
    for i, node_a in enumerate(nodes):
        for node_b in nodes[i + 1:]:
            kind = _classify_nodes(node_a, node_b)
            if kind is None:
                continue
            first, second = _order_nodes(node_a, node_b)
            if kind == "precedence":
                graph.add_precedence(first, second)
            elif exclusion_as_precedence:
                graph.add_precedence(first, second)
            else:
                graph.add_exclusion(node_a, node_b)
    return graph


def _order_nodes(a: DepNode, b: DepNode) -> tuple[DepNode, DepNode]:
    """Program order of two nodes (by earliest member instance)."""
    a_first = min(m.source_order for m in a.instances)
    b_first = min(m.source_order for m in b.instances)
    return (a, b) if a_first <= b_first else (b, a)


def _classify_nodes(node_a: DepNode, node_b: DepNode) -> str | None:
    """Strongest dependency between any member pair of two nodes."""
    found_exclusion = False
    for a in node_a.instances:
        for b in node_b.instances:
            early, late = (a, b) if a.source_order <= b.source_order else (b, a)
            kind = classify_pair(early, late)
            if kind == "precedence":
                return "precedence"
            if kind == "exclusion":
                found_exclusion = True
    return "exclusion" if found_exclusion else None
