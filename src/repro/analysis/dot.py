"""Graphviz (DOT) export of dependency graphs.

Figure 9's pictures are dependency graphs; ``p4all graph`` renders the
same for any program: precedence edges solid and directed, exclusion
edges dashed and undirected, same-stage groups merged into single nodes.
"""

from __future__ import annotations

from .depgraph import DependencyGraph

__all__ = ["graph_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def graph_to_dot(graph: DependencyGraph, title: str = "dependencies") -> str:
    """Render a dependency graph in DOT format."""
    lines = [
        f"digraph {_quote(title)} {{",
        "    rankdir=LR;",
        '    node [shape=box, fontname="monospace"];',
    ]
    for node in graph.nodes:
        lines.append(f"    n{node.node_id} [label={_quote(node.label)}];")
    for src, dst in graph.precedence_edges():
        lines.append(f"    n{src.node_id} -> n{dst.node_id};")
    for a, b in graph.exclusion_edges():
        lines.append(
            f"    n{a.node_id} -> n{b.node_id} [dir=none, style=dashed];"
        )
    lines.append("}")
    return "\n".join(lines)
