"""Graphviz (DOT) export of dependency graphs.

Figure 9's pictures are dependency graphs; ``p4all graph`` renders the
same for any program: precedence edges solid and directed, exclusion
edges dashed and undirected, same-stage groups merged into single nodes.

The taint verifier's findings render onto the same picture:
``graph_to_dot`` optionally colors nodes by owning module and paints
cross-module flow edges red, and ``flow_to_dot`` renders one
:class:`~repro.analysis.taint.FlowDiagnostic` witness path as its own
graph (registers as cylinders, PHV fields as ellipses, carrying
instances as edge labels).
"""

from __future__ import annotations

from .depgraph import DependencyGraph

__all__ = ["graph_to_dot", "flow_to_dot", "witness_edges"]

#: Stable fill palette for per-module node coloring (cycled).
_PALETTE = (
    "#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
)


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def _node_module(node, modules: dict) -> str | None:
    for inst in node.instances:
        module = modules.get(inst.label)
        if module is not None:
            return module
    return None


def witness_edges(flows) -> set:
    """``(carrier_a, carrier_b)`` instance-label pairs of consecutive
    witness steps, for highlighting via ``graph_to_dot(flow_edges=...)``."""
    edges: set = set()
    for flow in flows:
        for a, b in zip(flow.via, flow.via[1:]):
            edges.add((a, b))
    return edges


def graph_to_dot(
    graph: DependencyGraph,
    title: str = "dependencies",
    modules: dict | None = None,
    flow_edges=None,
) -> str:
    """Render a dependency graph in DOT format.

    ``modules`` (instance label → owning module) fills each node with a
    per-module color; ``flow_edges`` (pairs of instance labels, e.g.
    from :func:`witness_edges`) paints matching precedence edges red.
    Both default to off, leaving the classic rendering untouched.
    """
    lines = [
        f"digraph {_quote(title)} {{",
        "    rankdir=LR;",
        '    node [shape=box, fontname="monospace"];',
    ]
    colors: dict[str, str] = {}
    if modules:
        for i, module in enumerate(sorted(set(modules.values()))):
            colors[module] = _PALETTE[i % len(_PALETTE)]
    for node in graph.nodes:
        attrs = f"label={_quote(node.label)}"
        module = _node_module(node, modules) if modules else None
        if module is not None:
            attrs += (f", style=filled, "
                      f"fillcolor={_quote(colors[module])}")
        lines.append(f"    n{node.node_id} [{attrs}];")
    hot = {tuple(edge) for edge in (flow_edges or ())}
    for src, dst in graph.precedence_edges():
        style = ""
        if hot:
            src_labels = {i.label for i in src.instances}
            dst_labels = {i.label for i in dst.instances}
            if any((a, b) in hot
                   for a in src_labels for b in dst_labels):
                style = " [color=red, penwidth=2.0]"
        lines.append(f"    n{src.node_id} -> n{dst.node_id}{style};")
    for a, b in graph.exclusion_edges():
        lines.append(
            f"    n{a.node_id} -> n{b.node_id} [dir=none, style=dashed];"
        )
    lines.append("}")
    return "\n".join(lines)


def flow_to_dot(flow, title: str | None = None) -> str:
    """Render one cross-module flow's witness path in DOT format.

    Register-family nodes draw as cylinders, PHV fields as ellipses;
    each hop is labeled with the action instance that carried the
    taint. The sink is outlined red.
    """
    name = title or f"flow {flow.source} -> {flow.sink_module}"
    lines = [
        f"digraph {_quote(name)} {{",
        "    rankdir=LR;",
        '    node [fontname="monospace"];',
    ]
    nodes = flow.witness or (flow.sink,)
    for i, node in enumerate(nodes):
        shape = "ellipse" if "." in node else "cylinder"
        attrs = f"label={_quote(node)}, shape={shape}"
        if i == len(nodes) - 1:
            attrs += ", color=red, penwidth=2.0"
        lines.append(f"    w{i} [{attrs}];")
    for i in range(len(nodes) - 1):
        step = flow.via[i] if i < len(flow.via) else "?"
        lines.append(
            f"    w{i} -> w{i + 1} [label={_quote(step)}, color=red];"
        )
    lines.append("}")
    return "\n".join(lines)
