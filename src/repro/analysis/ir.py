"""Mid-level IR: elaborating a checked P4All program into placement units.

The compiler places *atomic actions* into pipeline stages. This module
flattens a program's ingress control (inlining nested control ``apply``
calls and action bodies) into an ordered list of **segments**:

* :class:`InelasticSegment` — a single placement unit that always exists
  (constraint #17's ``a_ne`` actions);
* :class:`ElasticSegment` — a loop body governed by a symbolic value,
  expanded by :func:`instantiate` into per-iteration
  :class:`ActionInstance` units.

Each :class:`ActionInstance` carries everything the dependency analysis,
the ILP, the code generator, and the pipeline interpreter need: the
substituted body statements, the guard (conjunction of enclosing ``if``
conditions), read/write field sets, accessed register instances, and the
:class:`~repro.pisa.resources.ActionCost` summary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Optional

from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.pretty import pretty_expr
from ..lang.symbols import ProgramInfo, eval_static
from ..pisa.resources import ActionCost

__all__ = [
    "ActionInstance",
    "UnitTemplate",
    "InelasticSegment",
    "ElasticSegment",
    "ProgramIR",
    "build_ir",
    "instantiate",
    "module_of_instance",
    "substitute",
    "field_key",
    "UpdateKind",
]


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def substitute(node: ast.Node, bindings: dict[str, ast.Expr]) -> ast.Node:
    """Deep-copy ``node`` with ``Name`` leaves replaced per ``bindings``."""
    if isinstance(node, ast.Name):
        repl = bindings.get(node.ident)
        return copy.deepcopy(repl) if repl is not None else ast.Name(node.ident, loc=node.loc)
    clone = copy.copy(node)
    for attr, value in vars(node).items():
        if isinstance(value, ast.Node):
            setattr(clone, attr, substitute(value, bindings))
        elif isinstance(value, list):
            setattr(
                clone,
                attr,
                [substitute(v, bindings) if isinstance(v, ast.Node) else v for v in value],
            )
    return clone


def _fold(expr: ast.Expr, consts: dict[str, int]) -> ast.Expr:
    """Constant-fold an expression as far as possible (for indices)."""
    try:
        return ast.IntLit(value=eval_static(expr, consts))
    except SemanticError:
        return expr


def field_key(expr: ast.Expr, consts: dict[str, int] | None = None) -> str:
    """Canonical PHV key for an lvalue expression.

    ``meta.count[2]`` → ``"meta.count[2]"``; indices are constant-folded
    first so that all layers agree on names.
    """
    if isinstance(expr, ast.Index):
        base = field_key(expr.base, consts)
        idx = _fold(expr.index, consts or {})
        return f"{base}[{pretty_expr(idx)}]"
    return pretty_expr(expr)


# ---------------------------------------------------------------------------
# Update-kind classification (for exclusion edges)
# ---------------------------------------------------------------------------


class UpdateKind:
    """Kinds of commutative writes (two same-kind updates commute)."""

    ADD = "add"
    MIN = "min"
    MAX = "max"
    OR = "or"
    AND = "and"
    PLAIN = "plain"  # non-commutative overwrite


def _classify_assign(target_key: str, value: ast.Expr, guard: ast.Expr | None,
                     consts: dict[str, int]) -> str:
    """Classify the write ``target = value`` (under ``guard``) for commutativity.

    Recognized commutative shapes:

    * ``f = f + e`` / ``f = e + f``                      → ADD
    * ``f = f | e`` / ``f = f & e``                      → OR / AND
    * ``f = min(f, e)`` / ``f = max(f, e)``              → MIN / MAX
    * ``if (e < f) f = e`` (guarded minimum)             → MIN
    * ``if (e > f) f = e`` (guarded maximum)             → MAX
    """
    def is_target(e: ast.Expr) -> bool:
        try:
            return field_key(e, consts) == target_key
        except Exception:
            return False

    if isinstance(value, ast.BinaryOp) and value.op in ("+", "|", "&"):
        kind = {"+": UpdateKind.ADD, "|": UpdateKind.OR, "&": UpdateKind.AND}[value.op]
        if is_target(value.left) or is_target(value.right):
            return kind
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.ident in ("min", "max") and len(value.args) == 2:
        if is_target(value.args[0]) or is_target(value.args[1]):
            return UpdateKind.MIN if value.func.ident == "min" else UpdateKind.MAX
    if guard is not None and isinstance(guard, ast.BinaryOp):
        # Guarded min/max: if (candidate < f) f = candidate;
        cand_key = None
        try:
            cand_key = field_key(value, consts)
        except Exception:
            pass
        if cand_key is not None:
            left, right, op = guard.left, guard.right, guard.op
            def keys_match(a, b):
                try:
                    return field_key(a, consts) == cand_key and field_key(b, consts) == target_key
                except Exception:
                    return False
            if op in ("<", "<=") and keys_match(left, right):
                return UpdateKind.MIN
            if op in (">", ">=") and keys_match(left, right):
                return UpdateKind.MAX
            if op in ("<", "<=") and keys_match(right, left):
                return UpdateKind.MAX
            if op in (">", ">=") and keys_match(right, left):
                return UpdateKind.MIN
    return UpdateKind.PLAIN


# ---------------------------------------------------------------------------
# Placement units
# ---------------------------------------------------------------------------


@dataclass
class ActionInstance:
    """One atomic placement unit after unrolling.

    ``symbolic``/``iteration`` identify the elastic loop iteration this
    unit came from (both ``None`` for inelastic units). ``guard`` is the
    conjunction of enclosing ``if`` conditions, already specialized to the
    iteration. ``commutative`` maps written fields to their update kind.
    ``registers`` holds ``(family, index)`` pairs of accessed register
    instances.
    """

    uid: int
    name: str
    body: list[ast.Stmt]
    symbolic: Optional[str] = None
    iteration: Optional[int] = None
    guard: Optional[ast.Expr] = None
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    registers: frozenset = frozenset()
    cost: ActionCost = ActionCost()
    commutative: dict = dc_field(default_factory=dict)
    source_order: int = 0
    table: Optional[str] = None  # set when this unit is a table apply

    @property
    def is_elastic(self) -> bool:
        return self.symbolic is not None

    @property
    def label(self) -> str:
        """Display name: ``incr[2]`` for iteration 2 of action ``incr``."""
        if self.iteration is None:
            return self.name
        return f"{self.name}[{self.iteration}]"

    def commutes_with(self, other: "ActionInstance") -> bool:
        """True when every shared written field is a same-kind commutative
        update in both instances (paper §4.2: exclusion-edge condition)."""
        shared = set(self.writes) & set(other.writes)
        if not shared:
            return True
        for key in shared:
            mine = self.commutative.get(key, UpdateKind.PLAIN)
            theirs = other.commutative.get(key, UpdateKind.PLAIN)
            if mine == UpdateKind.PLAIN or mine != theirs:
                return False
        return True

    def __repr__(self) -> str:
        return f"ActionInstance({self.label})"


@dataclass
class UnitTemplate:
    """Pre-instantiation form of a placement unit inside a loop body."""

    name: str
    body: list[ast.Stmt]          # loop variable still symbolic
    guard: Optional[ast.Expr]
    loop_var: Optional[str]
    table: Optional[str] = None


@dataclass
class InelasticSegment:
    template: UnitTemplate


@dataclass
class ElasticSegment:
    symbolic: str
    templates: list[UnitTemplate]


@dataclass
class ProgramIR:
    """Elaborated program: ordered segments plus the symbol summary."""

    info: ProgramInfo
    segments: list  # InelasticSegment | ElasticSegment
    entry: str      # name of the ingress control that was elaborated

    @property
    def loop_symbolics(self) -> list[str]:
        seen: list[str] = []
        for seg in self.segments:
            if isinstance(seg, ElasticSegment) and seg.symbolic not in seen:
                seen.append(seg.symbolic)
        return seen

    def segments_for(self, symbolic: str) -> list[ElasticSegment]:
        return [
            seg
            for seg in self.segments
            if isinstance(seg, ElasticSegment) and seg.symbolic == symbolic
        ]


# ---------------------------------------------------------------------------
# Elaboration: Program AST → ProgramIR
# ---------------------------------------------------------------------------


class _Elaborator:
    def __init__(self, info: ProgramInfo, entry: str):
        self.info = info
        self.entry = entry
        self.segments: list = []
        self._anon_counter = 0

    def run(self) -> ProgramIR:
        try:
            control = self.info.controls[self.entry]
        except KeyError:
            raise SemanticError(
                f"no control named {self.entry!r} to use as the pipeline entry"
            ) from None
        self._elaborate_block(control.apply, guard=None, loop=None)
        return ProgramIR(info=self.info, segments=self.segments, entry=self.entry)

    # ``loop`` is (symbolic_name, loop_var) when inside a for.
    def _elaborate_block(self, block: ast.Block, guard, loop) -> None:
        for stmt in block.stmts:
            self._elaborate_stmt(stmt, guard, loop)

    def _conj(self, guard, cond):
        if guard is None:
            return cond
        return ast.BinaryOp(op="&&", left=copy.deepcopy(guard), right=cond)

    def _elaborate_stmt(self, stmt: ast.Stmt, guard, loop) -> None:
        if isinstance(stmt, ast.Block):
            self._elaborate_block(stmt, guard, loop)
            return
        if isinstance(stmt, ast.ForStmt):
            if loop is not None:
                raise SemanticError(
                    "nested elastic loops inside one control body are elaborated "
                    "per control; hoist the inner loop into its own control",
                    stmt.loc,
                    self.info.program.source or None,
                )
            bound = stmt.bound
            # Constant-bounded loops unroll statically: each iteration is a
            # separate inelastic unit (used for fixed-depth structures such
            # as SketchLearn's per-bit levels).
            static_count = None
            if isinstance(bound, ast.IntLit):
                static_count = bound.value
            elif isinstance(bound, ast.Name) and bound.ident in self.info.consts:
                static_count = self.info.consts[bound.ident]
            if static_count is not None:
                for i in range(static_count):
                    binding = {stmt.var: ast.IntLit(value=i)}
                    for inner in stmt.body.stmts:
                        self._elaborate_stmt(substitute(inner, binding), guard, None)
                return
            if not isinstance(bound, ast.Name) or \
                    bound.ident not in self.info.symbolics:
                raise SemanticError(
                    "loop bound must be a symbolic value or a constant",
                    stmt.loc,
                    self.info.program.source or None,
                )
            segment = ElasticSegment(symbolic=bound.ident, templates=[])
            self.segments.append(segment)
            self._elaborate_loop_block(stmt.body, guard, (bound.ident, stmt.var), segment)
            return
        if isinstance(stmt, ast.IfStmt):
            self._elaborate_block(stmt.then_block, self._conj(guard, stmt.cond), loop)
            if stmt.else_block is not None:
                negated = ast.UnaryOp(op="!", operand=copy.deepcopy(stmt.cond))
                self._elaborate_block(stmt.else_block, self._conj(guard, negated), loop)
            return
        if isinstance(stmt, ast.CallStmt):
            self._elaborate_call(stmt.call, guard, loop)
            return
        if isinstance(stmt, ast.Assign):
            self._emit_synthetic([stmt], guard, loop)
            return
        raise SemanticError(
            f"unsupported statement in apply block: {type(stmt).__name__}",
            getattr(stmt, "loc", None),
            self.info.program.source or None,
        )

    def _elaborate_loop_block(self, block: ast.Block, guard, loop, segment) -> None:
        """Elaborate statements inside a for body into loop templates."""
        for stmt in block.stmts:
            if isinstance(stmt, ast.IfStmt):
                self._elaborate_loop_block(
                    stmt.then_block, self._conj(guard, stmt.cond), loop, segment
                )
                if stmt.else_block is not None:
                    negated = ast.UnaryOp(op="!", operand=copy.deepcopy(stmt.cond))
                    self._elaborate_loop_block(stmt.else_block, negated, loop, segment)
            elif isinstance(stmt, ast.Block):
                self._elaborate_loop_block(stmt, guard, loop, segment)
            elif isinstance(stmt, ast.CallStmt):
                template = self._call_template(stmt.call, guard, loop)
                segment.templates.append(template)
            elif isinstance(stmt, ast.Assign):
                segment.templates.append(
                    UnitTemplate(
                        name=self._anon_name(),
                        body=[copy.deepcopy(stmt)],
                        guard=copy.deepcopy(guard),
                        loop_var=loop[1],
                    )
                )
            elif isinstance(stmt, ast.ForStmt):
                raise SemanticError(
                    "directly nested for-loops are not supported; "
                    "wrap the inner loop in its own control block",
                    stmt.loc,
                    self.info.program.source or None,
                )
            else:
                raise SemanticError(
                    f"unsupported statement in loop body: {type(stmt).__name__}",
                    getattr(stmt, "loc", None),
                    self.info.program.source or None,
                )

    def _anon_name(self) -> str:
        self._anon_counter += 1
        return f"op{self._anon_counter}"

    def _elaborate_call(self, call: ast.Call, guard, loop) -> None:
        func = call.func
        # Nested control application: inline its apply block.
        if isinstance(func, ast.Member) and func.name == "apply" \
                and isinstance(func.base, ast.Name) \
                and func.base.ident in self.info.controls:
            inner = self.info.controls[func.base.ident]
            self._elaborate_block(inner.apply, guard, loop)
            return
        template = self._call_template(call, guard, loop)
        if loop is None:
            self.segments.append(InelasticSegment(template=template))
        else:  # pragma: no cover - loop calls go through _elaborate_loop_block
            raise AssertionError("loop calls are handled by _elaborate_loop_block")

    def _call_template(self, call: ast.Call, guard, loop) -> UnitTemplate:
        func = call.func
        loop_var = loop[1] if loop else None
        # table.apply()
        if isinstance(func, ast.Member) and func.name == "apply" \
                and isinstance(func.base, ast.Name) \
                and func.base.ident in self.info.tables:
            table = self.info.tables[func.base.ident]
            return UnitTemplate(
                name=f"tbl_{table.name}",
                body=[ast.CallStmt(call=copy.deepcopy(call))],
                guard=copy.deepcopy(guard),
                loop_var=loop_var,
                table=table.name,
            )
        # nested control inside a loop
        if isinstance(func, ast.Member) and func.name == "apply" \
                and isinstance(func.base, ast.Name) \
                and func.base.ident in self.info.controls:
            raise SemanticError(
                "control.apply() inside a for-loop is not supported; "
                "call the loop inside that control instead",
                call.loc,
                self.info.program.source or None,
            )
        # register method directly in an apply block → synthetic unit
        if isinstance(func, ast.Member) and func.name in (
            "read", "write", "add", "add_read", "max_update", "min_update"
        ):
            return UnitTemplate(
                name=self._anon_name(),
                body=[ast.CallStmt(call=copy.deepcopy(call))],
                guard=copy.deepcopy(guard),
                loop_var=loop_var,
            )
        # action invocation — inline the body with parameters bound
        if isinstance(func, ast.Name) and func.ident in self.info.actions:
            action = self.info.actions[func.ident]
            bindings: dict[str, ast.Expr] = {
                p.name: arg for p, arg in zip(action.params, call.args)
            }
            if action.iter_param is not None:
                if call.iter_index is None:
                    raise SemanticError(
                        f"action '{action.name}' requires an iteration index",
                        call.loc,
                        self.info.program.source or None,
                    )
                bindings[action.iter_param] = call.iter_index
            body = [substitute(s, bindings) for s in action.body.stmts]
            name = action.name
            # Statically-unrolled invocations (constant-bounded loops) get a
            # distinct specialized name per concrete index.
            if loop_var is None and isinstance(call.iter_index, ast.IntLit):
                name = f"{action.name}_{call.iter_index.value}"
            return UnitTemplate(
                name=name,
                body=body,
                guard=copy.deepcopy(guard),
                loop_var=loop_var,
            )
        raise SemanticError(
            f"cannot elaborate call '{pretty_expr(call)}'",
            call.loc,
            self.info.program.source or None,
        )

    def _emit_synthetic(self, stmts: list[ast.Stmt], guard, loop) -> None:
        template = UnitTemplate(
            name=self._anon_name(),
            body=[copy.deepcopy(s) for s in stmts],
            guard=copy.deepcopy(guard),
            loop_var=loop[1] if loop else None,
        )
        if loop is None:
            self.segments.append(InelasticSegment(template=template))


def build_ir(info: ProgramInfo, entry: str = "Ingress") -> ProgramIR:
    """Elaborate the ``entry`` control of a checked program into IR."""
    return _Elaborator(info, entry).run()


# ---------------------------------------------------------------------------
# Instantiation: templates → ActionInstances at concrete iteration counts
# ---------------------------------------------------------------------------


class _EffectCollector:
    """Extracts read/write/register sets and ALU costs from a unit body."""

    def __init__(self, info: ProgramInfo):
        self.info = info
        self.consts = info.consts
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.registers: set[tuple[str, int]] = set()
        self.commutative: dict[str, str] = {}
        self.stateful = 0
        self.stateless = 0
        self.hashes = 0

    # -- expression reads ---------------------------------------------------
    def read_expr(self, expr: ast.Expr) -> None:
        """Add every PHV field read by ``expr`` (recursing into calls)."""
        if isinstance(expr, (ast.Member, ast.Index)):
            root = expr
            while isinstance(root, (ast.Member, ast.Index)):
                root = root.base
            if isinstance(root, ast.Name) and root.ident in self.info.registers:
                return  # a register reference, not a PHV read
            self.reads.add(field_key(expr, self.consts))
            if isinstance(expr, ast.Index):
                self.read_expr(expr.index)
            return
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.ident == "hash":
                self.hashes += 1
            for arg in expr.args:
                self.read_expr(arg)
            return
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self.read_expr(child)

    def write_field(self, target: ast.Expr, kind: str) -> None:
        key = field_key(target, self.consts)
        self.writes.add(key)
        # Keep the weakest classification if written twice.
        prior = self.commutative.get(key)
        self.commutative[key] = kind if prior in (None, kind) else UpdateKind.PLAIN
        if isinstance(target, ast.Index):
            self.read_expr(target.index)

    def register_target(self, expr: ast.Expr) -> tuple[str, int] | None:
        """Resolve ``cms[2]`` / ``bloom`` into a register instance key."""
        if isinstance(expr, ast.Name) and expr.ident in self.info.registers:
            return (expr.ident, 0)
        if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Name) \
                and expr.base.ident in self.info.registers:
            return (expr.base.ident, int(eval_static(expr.index, self.consts)))
        return None

    # -- statements -----------------------------------------------------------
    def visit_stmt(self, stmt: ast.Stmt, guard: ast.Expr | None) -> None:
        if isinstance(stmt, ast.Assign):
            key = field_key(stmt.target, self.consts)
            kind = _classify_assign(key, stmt.value, guard, self.consts)
            self.write_field(stmt.target, kind)
            self.read_expr(stmt.value)
            self.stateless += 1
            return
        if isinstance(stmt, ast.CallStmt):
            self.visit_call(stmt.call)
            return
        raise SemanticError(
            f"unsupported statement in action body: {type(stmt).__name__}",
            getattr(stmt, "loc", None),
            self.info.program.source or None,
        )

    def visit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Member):
            reg = self.register_target(func.base)
            if reg is not None:
                self.registers.add(reg)
                self.stateful += 1
                if func.name in ("read", "add_read", "swap", "cond_add_read"):
                    self.write_field(call.args[0], UpdateKind.PLAIN)
                    for arg in call.args[1:]:
                        self.read_expr(arg)
                else:
                    for arg in call.args:
                        self.read_expr(arg)
                return
            if func.name == "apply":
                self.stateless += 1  # match/gateway work
                return
        raise SemanticError(
            f"cannot analyze call '{pretty_expr(call)}'",
            call.loc,
            self.info.program.source or None,
        )

    def visit_table(self, table_name: str) -> None:
        """A table apply reads its keys and may run any of its actions."""
        table = self.info.tables[table_name]
        for key in table.keys:
            self.read_expr(key.expr)
        for action_name in table.actions:
            action = self.info.actions.get(action_name)
            if action is None:
                continue
            for stmt in action.body.stmts:
                if isinstance(stmt, ast.Assign):
                    self.write_field(stmt.target, UpdateKind.PLAIN)
                    self.read_expr(stmt.value)
                    self.stateless += 1


def _effects(instance: ActionInstance, info: ProgramInfo) -> ActionInstance:
    """Fill in read/write/register sets, cost, and commutativity."""
    collector = _EffectCollector(info)
    if instance.guard is not None:
        collector.read_expr(instance.guard)
    if instance.table is not None:
        collector.visit_table(instance.table)
    else:
        for stmt in instance.body:
            collector.visit_stmt(stmt, instance.guard)

    instance.reads = frozenset(collector.reads)
    instance.writes = frozenset(collector.writes)
    instance.registers = frozenset(collector.registers)
    instance.commutative = collector.commutative
    instance.cost = ActionCost(
        stateful_ops=collector.stateful,
        stateless_ops=collector.stateless,
        hash_ops=collector.hashes,
    )
    return instance


def instantiate(ir: ProgramIR, counts: dict[str, int]) -> list[ActionInstance]:
    """Expand all segments at the given per-symbolic iteration counts.

    Returns instances in program order. Symbolics missing from ``counts``
    default to 1 iteration (the conservative assumption of §4.2 for
    analyzing one loop at a time).
    """
    out: list[ActionInstance] = []
    uid = 0
    order = 0
    for seg in ir.segments:
        if isinstance(seg, InelasticSegment):
            tpl = seg.template
            inst = ActionInstance(
                uid=uid,
                name=tpl.name,
                body=[copy.deepcopy(s) for s in tpl.body],
                guard=copy.deepcopy(tpl.guard),
                source_order=order,
                table=tpl.table,
            )
            out.append(_effects(inst, ir.info))
            uid += 1
            order += 1
            continue
        k = counts.get(seg.symbolic, 1)
        for i in range(k):
            for tpl in seg.templates:
                bindings = {tpl.loop_var: ast.IntLit(value=i)} if tpl.loop_var else {}
                body = [substitute(s, bindings) for s in tpl.body]
                guard = substitute(tpl.guard, bindings) if tpl.guard is not None else None
                inst = ActionInstance(
                    uid=uid,
                    name=tpl.name,
                    body=body,
                    symbolic=seg.symbolic,
                    iteration=i,
                    guard=guard,
                    source_order=order,
                    table=tpl.table,
                )
                out.append(_effects(inst, ir.info))
                uid += 1
                order += 1
    return out


def module_of_instance(inst: ActionInstance, namespace) -> "str | None":
    """Attribute one placement unit to the linked module that owns it.

    Resolution order: the owning table, the action name (exact, then
    with a static-unroll ``_<i>`` specialization suffix stripped), the
    accessed register families, and finally the metadata fields it
    touches — taking an owner only when it is unambiguous. Returns
    ``None`` for units nothing claims (callers bucket those as app
    glue).
    """
    if namespace is None:
        return None
    if inst.table is not None and inst.table in namespace.tables:
        return namespace.tables[inst.table]
    owner = namespace.actions.get(inst.name)
    if owner is not None:
        return owner
    base, _, suffix = inst.name.rpartition("_")
    if base and suffix.isdigit():
        owner = namespace.actions.get(base)
        if owner is not None:
            return owner
    reg_owners = {
        namespace.registers[family]
        for family, _index in inst.registers
        if family in namespace.registers
    }
    if len(reg_owners) == 1:
        return reg_owners.pop()
    field_owners = set()
    for key in set(inst.reads) | set(inst.writes):
        name = key.split(".", 1)[1] if key.startswith("meta.") else key
        name = name.split("[", 1)[0]
        owner = namespace.fields.get(name)
        if owner is not None:
            field_owners.add(owner)
    if len(field_owners) == 1:
        return field_owners.pop()
    return None
