"""Figure 4 — NetCache quality across resource splits.

The paper's Figure 4 shows the application's quality (cache hit rate)
for different combinations of key-value-store and count-min-sketch
resources, with the compiler's utility-optimal configuration achieving
the highest quality. This harness:

1. enumerates configurations that split a fixed memory budget between
   the sketch and the store (at several CMS row counts),
2. runs the NetCache control loop on a Zipf key trace for each,
3. reports the hit-rate surface and the configuration the P4All compiler
   actually picks for the corresponding target, so the two can be
   compared (the compiler's pick should sit at/near the optimum).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.netcache import simulate_netcache
from ..workloads.zipf import ZipfGenerator
from .tables import render_table

__all__ = ["QualityPoint", "QualitySweep", "run_quality_sweep"]

_KV_ITEM_BITS = 32 + 64 * 2  # key + two 64-bit value slices
_CMS_ITEM_BITS = 32


@dataclass
class QualityPoint:
    """One configuration's outcome."""

    cms_rows: int
    cms_cols: int
    kv_rows: int
    kv_cols: int
    hit_rate: float
    insertions: int

    @property
    def kv_items(self) -> int:
        return self.kv_rows * self.kv_cols

    @property
    def cms_cells(self) -> int:
        return self.cms_rows * self.cms_cols


@dataclass
class QualitySweep:
    """All sweep points plus the best and the workload's oracle bound."""

    points: list[QualityPoint] = field(default_factory=list)
    oracle_hit_rate: float = 0.0

    @property
    def best(self) -> QualityPoint:
        return max(self.points, key=lambda p: p.hit_rate)

    def nearest(self, kv_items: int) -> QualityPoint:
        """Sweep point closest to a given cache size (for comparing the
        compiler's chosen configuration against the surface)."""
        return min(self.points, key=lambda p: abs(p.kv_items - kv_items))

    def format(self) -> str:
        rows = [
            [p.cms_rows, p.cms_cols, p.kv_rows, p.kv_cols,
             p.kv_items, f"{p.hit_rate:.4f}"]
            for p in sorted(self.points, key=lambda p: (p.cms_rows, p.kv_items))
        ]
        table = render_table(
            ["cms_rows", "cms_cols", "kv_rows", "kv_cols", "kv_items", "hit_rate"],
            rows,
            title="Figure 4 — NetCache quality across KVS/CMS resource splits",
        )
        best = self.best
        return (
            f"{table}\n"
            f"best: cms {best.cms_rows}x{best.cms_cols}, "
            f"kv {best.kv_rows}x{best.kv_cols} -> hit rate {best.hit_rate:.4f} "
            f"(oracle {self.oracle_hit_rate:.4f})"
        )


def run_quality_sweep(
    memory_budget_bits: int = 4 * (1 << 20),
    cms_row_options: tuple[int, ...] = (1, 2, 4),
    kv_fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 0.99),
    packets: int = 60_000,
    universe: int = 100_000,
    alpha: float = 1.0,
    hot_threshold: int = 2,
    kv_rows: int = 4,
    seed: int = 42,
) -> QualitySweep:
    """Sweep memory splits between the sketch and the store.

    Each point gives fraction ``f`` of the budget to the KV store (items
    of ``_KV_ITEM_BITS`` bits across ``kv_rows`` rows) and the rest to a
    ``rows``-row CMS. Degenerate points (no cache at all / no sketch at
    all) are included deliberately — the paper's Figure 4 shows quality
    collapsing at the extremes.
    """
    gen = ZipfGenerator(universe, alpha=alpha, seed=seed)
    keys = gen.sample(packets)
    sweep = QualitySweep()
    for rows in cms_row_options:
        for fraction in kv_fractions:
            kv_bits = int(memory_budget_bits * fraction)
            cms_bits = memory_budget_bits - kv_bits
            kv_cols = max(kv_bits // (_KV_ITEM_BITS * kv_rows), 0)
            cms_cols = max(cms_bits // (_CMS_ITEM_BITS * rows), 0)
            stats = simulate_netcache(
                cms_rows=rows,
                cms_cols=cms_cols,
                kv_rows=kv_rows,
                kv_cols=kv_cols,
                keys=keys,
                hot_threshold=hot_threshold,
            )
            sweep.points.append(
                QualityPoint(
                    cms_rows=rows,
                    cms_cols=cms_cols,
                    kv_rows=kv_rows if kv_cols else 0,
                    kv_cols=kv_cols,
                    hit_rate=stats.hit_rate,
                    insertions=stats.insertions,
                )
            )
    sweep.oracle_hit_rate = gen.optimal_hit_rate(
        memory_budget_bits // _KV_ITEM_BITS
    )
    return sweep
