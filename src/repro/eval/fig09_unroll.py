"""Figure 9 — loop-unrolling upper bounds on the worked example.

The paper's Figure 9: a three-stage target; unrolling the CMS loops three
times produces a simple path of length four (``incr_1, min_1, min_2,
min_3``) which cannot fit, so the bound is two. This harness reproduces
the exact dependency graph and the per-K path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import (
    build_dependency_graph,
    build_ir,
    compute_upper_bounds,
    instantiate,
)
from ..lang import check_program, parse_program
from ..pisa.resources import TargetSpec, toy_three_stage
from ..structures import CMS_SOURCE

__all__ = ["UnrollFacts", "run_unroll_example"]


@dataclass
class UnrollFacts:
    """Per-K path lengths plus the resulting bound."""

    target_stages: int
    bound: int
    criterion: str
    path_lengths: list[int] = field(default_factory=list)
    k3_precedence: list[tuple[str, str]] = field(default_factory=list)
    k3_exclusion: list[tuple[str, str]] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            "Figure 9 — loop unrolling on the 3-stage example",
            f"per-K longest simple paths: {self.path_lengths}",
            f"bound for 'cms_rows': {self.bound} (criterion: {self.criterion})",
            "dependency graph at K=3:",
        ]
        lines += [f"  {a} -> {b} (precedence)" for a, b in self.k3_precedence]
        lines += [f"  {a} <-> {b} (exclusion)" for a, b in self.k3_exclusion]
        return "\n".join(lines)


def run_unroll_example(target: TargetSpec | None = None) -> UnrollFacts:
    """Run the §4.2 worked example on the toy three-stage target."""
    target = target or toy_three_stage()
    info = check_program(parse_program(CMS_SOURCE, "cms.p4all"))
    ir = build_ir(info, "Ingress")
    bounds = compute_upper_bounds(ir, target)
    result = bounds.results["cms_rows"]

    k3 = [i for i in instantiate(ir, {"cms_rows": 3}) if i.symbolic == "cms_rows"]
    graph = build_dependency_graph(k3)
    return UnrollFacts(
        target_stages=target.stages,
        bound=result.bound,
        criterion=result.criterion,
        path_lengths=result.path_lengths,
        k3_precedence=[(a.label, b.label) for a, b in graph.precedence_edges()],
        k3_exclusion=[(a.label, b.label) for a, b in graph.exclusion_edges()],
    )
