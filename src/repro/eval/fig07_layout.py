"""Figure 7 — the optimal NetCache layout.

The paper: with utility ``0.4*(rows*cols) + 0.6*(kv_items)`` on a
ten-stage target, "the CMS will have two rows in the first stage, while
the NetCache key-value store fills the following nine stages". The shape
to reproduce: the sketch is small and placed early, the key-value store
takes the bulk of the stages/memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.netcache import NETCACHE_UTILITY, netcache_source
from ..core import CompiledProgram, compile_source, layout_report
from ..pisa.resources import tofino

__all__ = ["LayoutFacts", "run_layout", "NETCACHE_KV_FLOOR_BITS"]

#: NetCache's recommended ≥ 8 Mb for the key-value store (§6.2).
NETCACHE_KV_FLOOR_BITS = 8 * (1 << 20)


@dataclass
class LayoutFacts:
    """Shape facts extracted from the compiled layout."""

    compiled: CompiledProgram
    cms_rows: int
    cms_cols: int
    kv_rows: int
    kv_cols: int
    cms_stages: list[int]
    kv_stages: list[int]
    cms_bits: int
    kv_bits: int

    @property
    def kv_items(self) -> int:
        return self.kv_rows * self.kv_cols

    @property
    def kv_memory_share(self) -> float:
        total = self.cms_bits + self.kv_bits
        return self.kv_bits / total if total else 0.0

    def format(self) -> str:
        return (
            "Figure 7 — NetCache layout\n"
            f"{layout_report(self.compiled)}\n"
            f"CMS:  {self.cms_rows} rows x {self.cms_cols} cols "
            f"in stages {self.cms_stages} ({self.cms_bits} bits)\n"
            f"KVS:  {self.kv_rows} rows x {self.kv_cols} cols "
            f"({self.kv_items} items) in stages {self.kv_stages} "
            f"({self.kv_bits} bits, {self.kv_memory_share:.1%} of structure memory)"
        )


def run_layout(
    utility: str = NETCACHE_UTILITY,
    kv_min_total_bits: int | None = NETCACHE_KV_FLOOR_BITS,
    max_cms_cols: int = 16384,
    target=None,
    backend: str = "auto",
) -> LayoutFacts:
    """Compile NetCache and extract the Figure-7 facts.

    ``max_cms_cols`` caps the sketch's columns (diminishing returns: the
    CMS error is already ≈ e/16384 of traffic at that width) — the §5
    practice of constraining register memory with assumes.
    """
    target = target or tofino()
    source = netcache_source(
        utility=utility,
        kv_min_total_bits=kv_min_total_bits,
        max_cols=65536,
    ).replace("assume cms_cols <= 65536;", f"assume cms_cols <= {max_cms_cols};")
    from ..core import CompileOptions

    compiled = compile_source(
        source, target, options=CompileOptions(backend=backend),
        source_name="netcache",
    )
    syms = compiled.symbol_values
    cms_stages = sorted({
        r.stage for r in compiled.registers if r.family == "cms_sketch"
    })
    kv_stages = sorted({
        r.stage for r in compiled.registers if r.family.startswith("kv_")
    })
    cms_bits = sum(
        r.size_bits for r in compiled.registers if r.family == "cms_sketch"
    )
    kv_bits = sum(
        r.size_bits for r in compiled.registers if r.family.startswith("kv_")
    )
    return LayoutFacts(
        compiled=compiled,
        cms_rows=syms.get("cms_rows", 0),
        cms_cols=syms.get("cms_cols", 0),
        kv_rows=syms.get("kv_rows", 0),
        kv_cols=syms.get("kv_cols", 0),
        cms_stages=cms_stages,
        kv_stages=kv_stages,
        cms_bits=cms_bits,
        kv_bits=kv_bits,
    )
