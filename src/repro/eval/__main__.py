"""Regenerate every paper experiment from the command line.

Usage::

    python -m repro.eval                 # everything, printed
    python -m repro.eval fig09 fig11     # selected experiments
    python -m repro.eval --out results/  # also write one .txt per figure
    python -m repro.eval runtime --profile --out results/
                                         # + cProfile stats per experiment
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def _fig01():
    from .fig01_library import run_library_demo

    return run_library_demo().format()


def _fig04():
    from .fig04_quality import run_quality_sweep

    return run_quality_sweep().format()


def _fig07():
    from .fig07_layout import run_layout

    return run_layout().format()


def _fig09():
    from .fig09_unroll import run_unroll_example

    return run_unroll_example().format()


def _fig11():
    from .fig11_apps import run_app_benchmark

    return run_app_benchmark().format()


def _fig12():
    from .fig12_elastic import run_memory_sweep

    return run_memory_sweep().format()


def _fig13():
    from .fig13_utility import run_utility_comparison

    return run_utility_comparison().format()


def _runtime():
    from .runtime_elastic import run_elastic_runtime

    return run_elastic_runtime().format()


def _fleet():
    from .fleet import run_fleet

    return run_fleet().format()


def _ablations():
    from ..apps import netcache_source
    from ..pisa.resources import small_target, tofino
    from ..structures import CMS_SOURCE
    from .ablations import (
        compare_exclusion_handling,
        compare_greedy_vs_ilp,
        compare_solvers,
        measure_bound_tightness,
    )

    target = small_target(stages=6, memory_kb=32)
    parts = [
        compare_greedy_vs_ilp(CMS_SOURCE, target, name="cms").format(),
        compare_greedy_vs_ilp(netcache_source(), tofino(), name="netcache").format(),
        compare_exclusion_handling(CMS_SOURCE, target, name="cms").format(),
        measure_bound_tightness(netcache_source(), tofino(), name="netcache").format(),
        compare_solvers(CMS_SOURCE, small_target(stages=4, memory_kb=8),
                        name="cms").format(),
    ]
    return "\n\n".join(parts)


EXPERIMENTS = {
    "fig01": ("Figure 1 — library elasticity", _fig01),
    "fig04": ("Figure 4 — NetCache quality sweep", _fig04),
    "fig07": ("Figure 7 — NetCache layout", _fig07),
    "fig09": ("Figure 9 — unroll bounds", _fig09),
    "fig11": ("Figure 11 — application table", _fig11),
    "fig12": ("Figure 12 — memory elasticity", _fig12),
    "fig13": ("Figure 13 — utility choice", _fig13),
    "runtime": ("Elastic runtime — online memory-cut recovery", _runtime),
    "fleet": ("Fabric fleet — multi-switch scaling and live migration",
              _fleet),
    "ablations": ("Design-choice ablations", _ablations),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=list(EXPERIMENTS),
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for per-experiment .txt outputs")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each experiment in cProfile and write "
                             "sorted cumulative stats next to its output "
                             "(<name>_profile.txt in --out, or the cwd)")
    parser.add_argument("--engine", default=None,
                        choices=["compiled", "vector", "interp"],
                        help="pipeline engine for every experiment "
                             "(sets REPRO_PISA_ENGINE)")
    parser.add_argument("--serve-batch", type=int, default=None, metavar="N",
                        help="serve traces through the batched fast path "
                             "in sub-batches of N packets "
                             "(sets REPRO_PISA_SERVE_BATCH)")
    parser.add_argument("--workers", type=int, default=None,
                        help="flow-sharded worker processes for batched "
                             "serving (sets REPRO_PISA_WORKERS)")
    parser.add_argument("--shard-mode", default=None,
                        choices=["auto", "pool", "fork", "inline"],
                        help="multiprocess strategy when workers > 1 "
                             "(sets REPRO_PISA_SHARD_MODE)")
    args = parser.parse_args(argv)

    import os

    if args.engine is not None:
        os.environ["REPRO_PISA_ENGINE"] = args.engine
    if args.serve_batch is not None:
        os.environ["REPRO_PISA_SERVE_BATCH"] = str(args.serve_batch)
    if args.workers is not None:
        os.environ["REPRO_PISA_WORKERS"] = str(args.workers)
    if args.shard_mode is not None:
        os.environ["REPRO_PISA_SHARD_MODE"] = args.shard_mode

    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    from ..profiling import profiled

    for name in args.experiments:
        title, runner = EXPERIMENTS[name]
        profile_path = None
        if args.profile:
            report_dir = args.out or Path(".")
            profile_path = report_dir / f"{name}_profile.txt"
        started = time.perf_counter()
        with profiled(profile_path):
            text = runner()
        elapsed = time.perf_counter() - started
        banner = f"=== {title} ({elapsed:.1f}s) ==="
        print(banner)
        print(text)
        if profile_path is not None:
            print(f"profile: {profile_path}", file=sys.stderr)
        print()
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
