"""Figure 11 — the application benchmark table.

For each of the four applications: lines of (plain, unrolled) P4 versus
lines of elastic P4All, the compile time, and the layout ILP's size.

The paper compared against the authors' hand-written P4 programs; those
are unavailable, so the "P4 LoC" column counts the *concrete P4 the
compiler itself generates* at the chosen configuration — i.e. the code a
programmer without elastic loops would have had to write and maintain by
hand (see DESIGN.md §2). The shape to reproduce: P4All is shorter
everywhere, dramatically so for loop-heavy programs (NetCache,
SketchLearn); compile time is seconds at worst and dominated by the ILP
solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps import (
    conquest_source,
    netcache_source,
    precision_source,
    sketchlearn_source,
)
from ..core import CompileOptions, compile_source
from ..pisa.resources import TargetSpec, tofino
from .tables import render_table

__all__ = ["AppRow", "AppBenchmark", "run_app_benchmark", "count_loc"]


def count_loc(source: str) -> int:
    """Non-blank, non-comment lines (the usual LoC measure)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


@dataclass
class AppRow:
    name: str
    p4_loc: int
    p4all_loc: int
    compile_seconds: float
    solve_seconds: float
    ilp_variables: int
    ilp_constraints: int
    symbol_values: dict[str, int] = field(default_factory=dict)

    @property
    def loc_ratio(self) -> float:
        return self.p4_loc / self.p4all_loc if self.p4all_loc else 0.0


@dataclass
class AppBenchmark:
    rows: list[AppRow] = field(default_factory=list)

    def row(self, name: str) -> AppRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        table_rows = [
            [
                r.name,
                r.p4_loc,
                r.p4all_loc,
                f"{r.compile_seconds:.2f}",
                f"({r.ilp_variables}, {r.ilp_constraints})",
            ]
            for r in self.rows
        ]
        return render_table(
            ["application", "P4 code", "P4All code", "compile time (s)",
             "ILP (var, constr)"],
            table_rows,
            title="Figure 11 — P4All applications",
        )


def run_app_benchmark(
    target: TargetSpec | None = None,
    backend: str = "auto",
) -> AppBenchmark:
    """Compile all four applications and collect the Figure-11 columns."""
    target = target or tofino()
    sources = {
        "NetCache": netcache_source(),
        "SketchLearn": sketchlearn_source(),
        "Precision": precision_source(),
        "ConQuest": conquest_source(),
    }
    bench = AppBenchmark()
    for name, source in sources.items():
        compiled = compile_source(
            source, target, options=CompileOptions(backend=backend),
            source_name=name.lower(),
        )
        bench.rows.append(
            AppRow(
                name=name,
                p4_loc=count_loc(compiled.p4_source),
                p4all_loc=count_loc(source),
                compile_seconds=compiled.stats.total_seconds,
                solve_seconds=compiled.stats.ilp_solve_seconds,
                ilp_variables=compiled.stats.ilp_variables,
                ilp_constraints=compiled.stats.ilp_constraints,
                symbol_values=dict(compiled.symbol_values),
            )
        )
    return bench
