"""Figure 13 — the utility function decides the split.

At M = 1.75 Mb per stage, the paper compares two utilities — one
weighted toward the sketch, one toward the key-value store — with an
assume guaranteeing at least 8 Mb for the store. Shape to reproduce:
flipping the weights flips which structure receives more memory, and
both configurations use (nearly) all available resources.

Normalization note (documented in EXPERIMENTS.md): the paper writes the
weights over item *counts* (``rows*cols`` and ``kv_items``). Under our
cost model a CMS counter (32 b) is so much cheaper than a KV item
(160 b) that the count-weighted flip never changes the per-bit ranking
— both weightings fill the sketch to its caps first. We therefore weight
item counts scaled by their item sizes (equivalently: weight *memory
bits*), which is the same programmer knob ("rewrite the utility to shift
resources", §3.2.4) expressed in units where the flip is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.netcache import netcache_source
from ..core import CompileOptions, compile_source
from ..pisa.resources import tofino
from .fig07_layout import NETCACHE_KV_FLOOR_BITS
from .tables import render_table

__all__ = [
    "UtilityOutcome",
    "UtilityComparison",
    "run_utility_comparison",
    "UTILITY_KV_WEIGHTED",
    "UTILITY_CMS_WEIGHTED",
]

#: Per-bit weighting toward the key-value store (the paper's second case).
UTILITY_KV_WEIGHTED = (
    "0.4 * (cms_rows * cms_cols * 32) + 0.6 * (kv_rows * kv_cols * 160)"
)
#: Per-bit weighting toward the count-min sketch (the paper's first case).
UTILITY_CMS_WEIGHTED = (
    "0.6 * (cms_rows * cms_cols * 32) + 0.4 * (kv_rows * kv_cols * 160)"
)


@dataclass
class UtilityOutcome:
    label: str
    utility: str
    cms_rows: int
    cms_cols: int
    kv_rows: int
    kv_cols: int
    cms_bits: int
    kv_bits: int
    total_capacity_bits: int

    @property
    def kv_items(self) -> int:
        return self.kv_rows * self.kv_cols

    @property
    def cms_cells(self) -> int:
        return self.cms_rows * self.cms_cols

    @property
    def memory_utilization(self) -> float:
        return (self.cms_bits + self.kv_bits) / self.total_capacity_bits


@dataclass
class UtilityComparison:
    outcomes: list[UtilityOutcome] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            [
                o.label,
                f"{o.cms_rows}x{o.cms_cols}",
                o.cms_bits,
                f"{o.kv_rows}x{o.kv_cols}",
                o.kv_bits,
                f"{o.memory_utilization:.1%}",
            ]
            for o in self.outcomes
        ]
        return render_table(
            ["utility", "CMS shape", "CMS bits", "KVS shape", "KVS bits",
             "mem util"],
            rows,
            title="Figure 13 — utility choice decides the resource split "
                  "(M = 1.75 Mb/stage, KVS floor 8 Mb)",
        )


def run_utility_comparison(
    kv_min_total_bits: int = NETCACHE_KV_FLOOR_BITS,
    max_cms_cols: int = 16384,
    backend: str = "auto",
) -> UtilityComparison:
    """Compile NetCache under both Figure-13 utilities."""
    target = tofino()  # M = 1.75 Mb/stage by default
    comparison = UtilityComparison()
    for label, utility in (
        ("0.6*CMS + 0.4*KVS", UTILITY_CMS_WEIGHTED),
        ("0.4*CMS + 0.6*KVS", UTILITY_KV_WEIGHTED),
    ):
        source = netcache_source(
            utility=utility, kv_min_total_bits=kv_min_total_bits
        ).replace("assume cms_cols <= 65536;", f"assume cms_cols <= {max_cms_cols};")
        compiled = compile_source(
            source, target, options=CompileOptions(backend=backend),
            source_name="netcache",
        )
        syms = compiled.symbol_values
        cms_bits = sum(
            r.size_bits for r in compiled.registers if r.family == "cms_sketch"
        )
        kv_bits = sum(
            r.size_bits for r in compiled.registers if r.family.startswith("kv_")
        )
        comparison.outcomes.append(
            UtilityOutcome(
                label=label,
                utility=utility,
                cms_rows=syms.get("cms_rows", 0),
                cms_cols=syms.get("cms_cols", 0),
                kv_rows=syms.get("kv_rows", 0),
                kv_cols=syms.get("kv_cols", 0),
                cms_bits=cms_bits,
                kv_bits=kv_bits,
                total_capacity_bits=target.total_memory_bits,
            )
        )
    return comparison
