"""Fleet elasticity — multi-switch scaling and live migration.

The single-switch runtime experiment closes the elasticity loop on one
box; this one spreads the same NetCache program over a fabric of PISA
switches and measures the two fleet-level claims:

* **scaling** — aggregate served throughput as the fleet grows from 1
  to ``max(fleet_sizes)`` switches, under one consistent-hash ring.
  Aggregate rates are *makespan-modeled*: a window's wall time is its
  slowest switch, because real switches are independent hardware even
  though the simulator executes them serially on one core (see
  docs/FABRIC.md). ``serial`` rates — total busy time — are reported
  alongside so the modeling is auditable. With a mild Zipf skew the
  4-switch fleet clears 3x the single switch; perfect 4x is impossible
  because the hottest shard bounds the makespan;
* **migration** — mid-run, the hottest switch live-migrates to a warm
  standby: state snapshot, fold-restore, ring shift, canary. The
  headline numbers are logical key loss (must be zero), downtime in
  buffered packets, and the post-migration steady hit rate relative to
  pre-migration.

Every fleet install shares one compile cache, so the experiment also
reports layout-cache hits — the marginal switch compiles for free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..pisa.resources import TargetSpec, tofino
from ..workloads.zipf import ZipfGenerator
from .tables import render_table

__all__ = ["FleetScenario", "ScalePoint", "FleetOutcome", "run_fleet"]


@dataclass(frozen=True)
class FleetScenario:
    """One fleet experiment: scale out, then migrate under load."""

    fleet_sizes: tuple[int, ...] = (1, 2, 4)
    stages: int = 6
    memory_bits_per_stage: int = 64 * 1024
    packets: int = 12_000
    window_packets: int = 2_000
    universe: int = 10_000
    alpha: float = 0.9
    vnodes: int = 64
    seed: int = 17
    migrate_at: int = 6_000

    def target(self) -> TargetSpec:
        return dataclasses.replace(
            tofino(), stages=self.stages,
            memory_bits_per_stage=self.memory_bits_per_stage,
        )

    def stream(self) -> ZipfGenerator:
        return ZipfGenerator(self.universe, alpha=self.alpha,
                             seed=self.seed)


@dataclass
class ScalePoint:
    """Throughput of one fleet size."""

    switches: int
    aggregate_pkts_per_sec: float
    serial_pkts_per_sec: float
    hit_rate: float
    speedup: float = 1.0
    layout_cache_hits: int = 0


@dataclass
class FleetOutcome:
    """Everything the fleet experiment measured."""

    scenario: FleetScenario
    scale: list[ScalePoint] = field(default_factory=list)
    migration: dict = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            [p.switches,
             f"{p.aggregate_pkts_per_sec:,.0f}",
             f"{p.serial_pkts_per_sec:,.0f}",
             f"{p.speedup:.2f}x",
             f"{p.hit_rate:.3f}",
             p.layout_cache_hits]
            for p in self.scale
        ]
        parts = [render_table(
            ["switches", "aggregate pkt/s", "serial pkt/s", "speedup",
             "hit rate", "layout hits"],
            rows,
            title="Fleet scaling (aggregate = makespan-modeled; "
                  "speedup vs 1 switch)",
        )]
        m = self.migration
        if m:
            parts.append(
                "Live migration ({src} -> {dst} @pkt {at}): {outcome}, "
                "{migrated}/{entries} entries, {downtime} pkts downtime, "
                "hit rate {pre:.3f} -> {post:.3f}".format(
                    src=m["src"], dst=m["dst"], at=m["packet_index"],
                    outcome="committed" if m["committed"] else "ROLLED BACK",
                    migrated=m["kv_migrated"], entries=m["kv_entries_old"],
                    downtime=m["downtime_packets"],
                    pre=m["pre_rate"], post=m["post_rate"],
                )
            )
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "scale": [dataclasses.asdict(p) for p in self.scale],
            "migration": dict(self.migration),
        }


def _measure_fleet(scenario: FleetScenario, n: int) -> ScalePoint:
    from ..core.cache import CompileCache
    from ..fabric import FabricTopology, FleetConfig, FleetController
    from ..runtime import TelemetryBus

    cache = CompileCache()
    fabric = FabricTopology.flat(n, scenario.target())
    controller = FleetController(
        fabric,
        config=FleetConfig(window_packets=scenario.window_packets,
                           vnodes=scenario.vnodes),
        telemetry=TelemetryBus(),
        cache=cache,
    )
    report = controller.run(scenario.stream(), scenario.packets)
    return ScalePoint(
        switches=n,
        aggregate_pkts_per_sec=report.aggregate_pkts_per_sec,
        serial_pkts_per_sec=report.serial_pkts_per_sec,
        hit_rate=report.hit_rate,
        layout_cache_hits=cache.snapshot()["layout_hits"],
    )


def _measure_migration(scenario: FleetScenario) -> dict:
    from ..fabric import FabricTopology, FleetConfig, FleetController
    from ..runtime import TelemetryBus

    n = max(scenario.fleet_sizes)
    fabric = FabricTopology.flat(n, scenario.target(), standby=1)
    controller = FleetController(
        fabric,
        config=FleetConfig(window_packets=scenario.window_packets,
                           vnodes=scenario.vnodes),
        telemetry=TelemetryBus(),
    )
    controller.schedule_migration(scenario.migrate_at, "hottest",
                                  fabric.standby()[0])
    report = controller.run(scenario.stream(), scenario.packets)
    mig = report.migrations[0]
    migration_window = scenario.migrate_at // scenario.window_packets
    return {
        **mig.to_dict(),
        "pre_rate": report.steady_rate(last=2, before=migration_window),
        "post_rate": report.steady_rate(last=2),
        "dropped_packets": report.dropped_packets,
    }


def run_fleet(scenario: FleetScenario | None = None) -> FleetOutcome:
    scenario = scenario or FleetScenario()
    outcome = FleetOutcome(scenario=scenario)
    for n in scenario.fleet_sizes:
        outcome.scale.append(_measure_fleet(scenario, n))
    base = outcome.scale[0].aggregate_pkts_per_sec
    for point in outcome.scale:
        point.speedup = (point.aggregate_pkts_per_sec / base
                         if base > 0 else 0.0)
    outcome.migration = _measure_migration(scenario)
    return outcome
