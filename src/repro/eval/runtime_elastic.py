"""Elastic runtime — online reconfiguration under churn (new subsystem).

The paper's elasticity story is compile-time: the ILP restretches the
program when the target changes. This experiment closes the loop at
*run time*: a NetCache pipeline serves a churning Zipf stream, the
operator cuts per-stage memory mid-run, and the
:class:`~repro.runtime.ElasticRuntime` detects the change, recompiles,
migrates register state onto the shrunken layout, validates, and
hot-swaps — without ever leaving the pipeline unconfigured.

The experiment runs the identical scenario twice — once with state
migration, once with a cold swap — and reports the post-swap recovery
of the cache hit rate in each case. The headline numbers:

* ``recovery`` — post-swap steady hit rate / pre-cut steady baseline
  (the acceptance bar is >= 0.9 with migration: the smaller cache
  holds a bit less of the hot set, so ~1.0 is not expected);
* ``first-window`` — the hit rate in the first window *after* the
  swap, where migration vs cold start differ most;
* ``reconfig time`` — wall-clock of the full plan→migrate→validate→swap
  cycle, and the migration's entry loss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..pisa.resources import TargetSpec, tofino
from ..workloads.churn import ChurningZipf
from .tables import render_table

__all__ = ["RuntimeScenario", "ScenarioOutcome", "RuntimeComparison",
           "run_elastic_runtime"]


@dataclass(frozen=True)
class RuntimeScenario:
    """One run-time elasticity scenario: serve, cut memory, recover."""

    stages: int = 6
    memory_bits_per_stage: int = 64 * 1024
    cut_memory_bits: int = 32 * 1024
    packets: int = 12_000
    cut_at: int = 6_000
    window_packets: int = 500
    universe: int = 2_000
    alpha: float = 1.3
    churn: float = 0.2
    phase_packets: int = 4_000
    hot_ranks: int = 200
    seed: int = 11

    def target(self) -> TargetSpec:
        return dataclasses.replace(
            tofino(), stages=self.stages,
            memory_bits_per_stage=self.memory_bits_per_stage,
        )

    def cut_target(self) -> TargetSpec:
        return dataclasses.replace(
            self.target(), memory_bits_per_stage=self.cut_memory_bits,
        )

    def stream(self) -> ChurningZipf:
        return ChurningZipf(
            self.universe, alpha=self.alpha,
            phase_packets=self.phase_packets, churn=self.churn,
            hot_ranks=self.hot_ranks, seed=self.seed,
        )


@dataclass
class ScenarioOutcome:
    """Measured results of one runtime run."""

    label: str
    hit_rate: float
    baseline_rate: float
    post_swap_first_window: float
    post_swap_steady: float
    recovery: float
    reconfig_seconds: float
    backend: str
    kv_migrated: int
    kv_entries_old: int
    kv_loss: float
    symbols_before: dict[str, int] = field(default_factory=dict)
    symbols_after: dict[str, int] = field(default_factory=dict)
    #: planner solver statistics for the committed reconfiguration
    #: (nodes explored, incumbent source, cache hit counters).
    solver_stats: dict = field(default_factory=dict)
    #: per-module stage/memory/ALU/utility attribution of the committed
    #: reconfiguration (module name → flat dict; linked sources only).
    module_attribution: dict = field(default_factory=dict)


@dataclass
class RuntimeComparison:
    scenario: RuntimeScenario
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    def format(self) -> str:
        s = self.scenario
        rows = [
            [
                o.label,
                f"{o.baseline_rate:.3f}",
                f"{o.post_swap_first_window:.3f}",
                f"{o.post_swap_steady:.3f}",
                f"{o.recovery:.2f}x",
                f"{o.reconfig_seconds:.2f}s",
                f"{o.kv_migrated}/{o.kv_entries_old}",
            ]
            for o in self.outcomes
        ]
        table = render_table(
            ["swap", "pre-cut rate", "first window", "post steady",
             "recovery", "reconfig", "entries kept"],
            rows,
            title=(
                "Elastic runtime — NetCache hit-rate recovery after a "
                f"mid-run memory cut ({s.memory_bits_per_stage // 1024}KB"
                f" -> {s.cut_memory_bits // 1024}KB per stage)"
            ),
        )
        lines = [table, ""]
        if self.outcomes:
            o = self.outcomes[0]
            before = ", ".join(f"{k}={v}" for k, v in sorted(o.symbols_before.items()))
            after = ", ".join(f"{k}={v}" for k, v in sorted(o.symbols_after.items()))
            lines.append(f"layout before cut: {before}")
            lines.append(f"layout after cut:  {after}")
        lines.append(
            f"workload: ChurningZipf(universe={s.universe}, alpha={s.alpha}, "
            f"churn={s.churn}, phase={s.phase_packets}), "
            f"{s.packets} packets, cut at {s.cut_at}"
        )
        return "\n".join(lines)


def _run_once(scenario: RuntimeScenario, migrate: bool,
              label: str) -> ScenarioOutcome:
    from ..runtime import ElasticRuntime, RuntimeConfig

    config = RuntimeConfig(
        window_packets=scenario.window_packets,
        migrate_state=migrate,
        drift_reconfig=False,   # isolate the target-change trigger
    )
    runtime = ElasticRuntime(scenario.target(), config=config)
    symbols_before = dict(runtime.app.compiled.symbol_values)
    runtime.schedule_target_change(scenario.cut_at, scenario.cut_target())
    report = runtime.run(scenario.stream(), packets=scenario.packets)

    committed = [r for r in report.reconfigs if r.committed]
    rec = committed[-1] if committed else None
    swap_window = scenario.cut_at // scenario.window_packets
    first_after = (report.timeline[swap_window]
                   if swap_window < len(report.timeline) else 0.0)
    migration = rec.migration if rec is not None else None
    return ScenarioOutcome(
        label=label,
        hit_rate=report.hit_rate,
        baseline_rate=rec.baseline_rate if rec is not None else 0.0,
        post_swap_first_window=first_after,
        post_swap_steady=report.steady_rate(),
        recovery=report.recovery_ratio(),
        reconfig_seconds=rec.seconds if rec is not None else 0.0,
        backend=rec.backend if rec is not None else "",
        kv_migrated=migration.kv_migrated if migration is not None else 0,
        kv_entries_old=migration.kv_entries_old if migration is not None else 0,
        kv_loss=migration.kv_loss_fraction if migration is not None else 1.0,
        symbols_before=symbols_before,
        symbols_after=dict(report.final_symbols),
        solver_stats=dict(rec.solver_stats) if rec is not None else {},
        module_attribution=(dict(rec.module_attribution)
                            if rec is not None else {}),
    )


def run_elastic_runtime(
    scenario: RuntimeScenario | None = None,
) -> RuntimeComparison:
    """Run the memory-cut scenario with and without state migration."""
    scenario = scenario or RuntimeScenario()
    comparison = RuntimeComparison(scenario=scenario)
    comparison.outcomes.append(_run_once(scenario, migrate=True,
                                         label="migrated"))
    comparison.outcomes.append(_run_once(scenario, migrate=False,
                                         label="cold"))
    return comparison
