"""Small ASCII table renderer for experiment output."""

from __future__ import annotations

__all__ = ["render_table"]


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)
