"""Figure 1 — the reusable structure library, demonstrated elastic.

The paper's Figure 1 catalogues the data structures that recur across
PISA applications. This harness compiles every library module against
two targets (small and large) and reports the sizes each stretches to —
the elasticity property that makes the modules reusable as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import CompileOptions, compile_source
from ..pisa.resources import TargetSpec, small_target, tofino
from ..structures import LIBRARY_SOURCES
from .tables import render_table

__all__ = ["LibraryRow", "LibraryDemo", "run_library_demo"]


@dataclass
class LibraryRow:
    module: str
    small_symbols: dict[str, int]
    large_symbols: dict[str, int]
    small_bits: int
    large_bits: int

    @property
    def stretch_factor(self) -> float:
        return self.large_bits / self.small_bits if self.small_bits else 0.0


@dataclass
class LibraryDemo:
    rows: list[LibraryRow] = field(default_factory=list)

    def row(self, module: str) -> LibraryRow:
        for row in self.rows:
            if row.module == module:
                return row
        raise KeyError(module)

    def format(self) -> str:
        def fmt(symbols):
            return ", ".join(f"{k}={v}" for k, v in sorted(symbols.items()))

        table_rows = [
            [r.module, fmt(r.small_symbols), fmt(r.large_symbols),
             f"{r.stretch_factor:.0f}x"]
            for r in self.rows
        ]
        return render_table(
            ["module", "small target", "large target", "memory stretch"],
            table_rows,
            title="Figure 1 — the elastic module library stretches per target",
        )


def run_library_demo(
    small: TargetSpec | None = None,
    large: TargetSpec | None = None,
    backend: str = "auto",
) -> LibraryDemo:
    """Compile each library module on a small and a large target."""
    # 6 stages: the 9-level hierarchical sketch needs ceil(9/F) = 5
    # stages of stateful ALUs even at minimum size.
    small = small or small_target(stages=6, memory_kb=16)
    large = large or tofino()
    demo = LibraryDemo()
    for name, source in LIBRARY_SOURCES.items():
        compiled_small = compile_source(
            source, small, options=CompileOptions(backend=backend),
            source_name=name,
        )
        compiled_large = compile_source(
            source, large, options=CompileOptions(backend=backend),
            source_name=name,
        )
        demo.rows.append(
            LibraryRow(
                module=name,
                small_symbols=dict(compiled_small.symbol_values),
                large_symbols=dict(compiled_large.symbol_values),
                small_bits=compiled_small.total_register_bits(),
                large_bits=compiled_large.total_register_bits(),
            )
        )
    return demo
