"""Ablations of the compiler's design choices (DESIGN.md §5).

* **ILP vs greedy first-fit** — the related-work contrast: greedy
  placement commits memory in program order and cannot trade early
  structures against later, higher-utility ones.
* **Exclusion edges vs all-precedence** — the paper's prototype (§5) had
  only precedence information; treating commutative conflicts as ordered
  inflates path lengths and shrinks what fits.
* **Bound tightness** — how often the ILP uses fewer iterations than the
  unroll bound offered (§4.2's "coarse approximation" vs the "finer
  analysis via ILP").
* **Solver backends** — HiGHS vs the built-in branch and bound on the
  same models (objective must agree; time may not).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis import build_ir, compute_upper_bounds
from ..analysis.unroll import UnrollOptions
from ..core import CompileOptions, LayoutOptions, compile_source, greedy_layout
from ..core.layout import LayoutBuilder
from ..lang import check_program, parse_program
from ..lang.symbols import eval_static
from ..pisa.resources import TargetSpec
from .tables import render_table

__all__ = [
    "GreedyVsIlp",
    "compare_greedy_vs_ilp",
    "ExclusionAblation",
    "compare_exclusion_handling",
    "BoundTightness",
    "measure_bound_tightness",
    "SolverComparison",
    "compare_solvers",
]


# ---------------------------------------------------------------------------
# Greedy vs ILP
# ---------------------------------------------------------------------------


@dataclass
class GreedyVsIlp:
    name: str
    ilp_utility: float
    greedy_utility: float
    ilp_seconds: float
    greedy_seconds: float
    ilp_symbols: dict[str, int]
    greedy_symbols: dict[str, int]

    @property
    def utility_gain(self) -> float:
        """ILP utility relative to greedy (≥ 1 means ILP at least as good)."""
        if self.greedy_utility == 0:
            return float("inf") if self.ilp_utility > 0 else 1.0
        return self.ilp_utility / self.greedy_utility

    def format(self) -> str:
        return (
            f"{self.name}: ILP utility {self.ilp_utility:.0f} "
            f"({self.ilp_seconds:.2f}s) vs greedy {self.greedy_utility:.0f} "
            f"({self.greedy_seconds:.4f}s) -> gain {self.utility_gain:.2f}x"
        )


def _utility_at(source_info, symbol_values: dict[str, int]) -> float:
    """Evaluate a program's utility expression at concrete symbol values."""
    opt = source_info.program.optimize()
    if opt is None:
        return 0.0
    env: dict[str, float] = dict(source_info.consts)
    env.update(symbol_values)
    return float(eval_static(opt.utility, env))


def compare_greedy_vs_ilp(
    source: str,
    target: TargetSpec,
    name: str = "program",
    backend: str = "auto",
) -> GreedyVsIlp:
    """Run both allocators on one program and compare achieved utility."""
    t0 = time.perf_counter()
    compiled = compile_source(
        source, target, options=CompileOptions(backend=backend), source_name=name
    )
    ilp_seconds = time.perf_counter() - t0

    info = check_program(parse_program(source, name))
    ir = build_ir(info, "Ingress")
    bounds = compute_upper_bounds(ir, target)
    t0 = time.perf_counter()
    greedy = greedy_layout(ir, bounds, target)
    greedy_seconds = time.perf_counter() - t0

    return GreedyVsIlp(
        name=name,
        ilp_utility=_utility_at(info, compiled.symbol_values),
        greedy_utility=_utility_at(info, greedy.symbol_values),
        ilp_seconds=ilp_seconds,
        greedy_seconds=greedy_seconds,
        ilp_symbols=dict(compiled.symbol_values),
        greedy_symbols=dict(greedy.symbol_values),
    )


# ---------------------------------------------------------------------------
# Exclusion edges vs all-precedence (the §5 prototype limitation)
# ---------------------------------------------------------------------------


@dataclass
class ExclusionAblation:
    name: str
    full_symbols: dict[str, int]
    degraded_symbols: dict[str, int]
    full_utility: float
    degraded_utility: float

    def format(self) -> str:
        return (
            f"{self.name}: with exclusion edges {self.full_symbols} "
            f"(utility {self.full_utility:.0f}); all-precedence "
            f"{self.degraded_symbols} (utility {self.degraded_utility:.0f})"
        )


def compare_exclusion_handling(
    source: str,
    target: TargetSpec,
    name: str = "program",
    backend: str = "auto",
) -> ExclusionAblation:
    """Compile with real exclusion edges vs the all-precedence prototype."""
    info = check_program(parse_program(source, name))
    full = compile_source(
        source, target, options=CompileOptions(backend=backend), source_name=name
    )
    degraded = compile_source(
        source,
        target,
        options=CompileOptions(
            backend=backend,
            layout=LayoutOptions(exclusion_as_precedence=True),
            unroll=UnrollOptions(exclusion_as_precedence=True),
        ),
        source_name=name,
    )
    return ExclusionAblation(
        name=name,
        full_symbols=dict(full.symbol_values),
        degraded_symbols=dict(degraded.symbol_values),
        full_utility=_utility_at(info, full.symbol_values),
        degraded_utility=_utility_at(info, degraded.symbol_values),
    )


# ---------------------------------------------------------------------------
# Bound tightness
# ---------------------------------------------------------------------------


@dataclass
class BoundTightness:
    name: str
    bounds: dict[str, int]
    chosen: dict[str, int]

    def format(self) -> str:
        rows = [
            [sym, self.bounds[sym], self.chosen.get(sym, "-")]
            for sym in self.bounds
        ]
        return render_table(
            ["symbolic", "unroll bound", "ILP choice"], rows,
            title=f"Bound tightness — {self.name}",
        )


def measure_bound_tightness(
    source: str,
    target: TargetSpec,
    name: str = "program",
    backend: str = "auto",
) -> BoundTightness:
    """Unroll bound vs the iteration count the ILP actually kept."""
    info = check_program(parse_program(source, name))
    ir = build_ir(info, "Ingress")
    bounds = compute_upper_bounds(ir, target)
    compiled = compile_source(
        source, target, options=CompileOptions(backend=backend), source_name=name
    )
    return BoundTightness(
        name=name,
        bounds=bounds.as_counts(),
        chosen={
            sym: compiled.symbol_values.get(sym, 0)
            for sym in bounds.as_counts()
        },
    )


# ---------------------------------------------------------------------------
# Solver backends
# ---------------------------------------------------------------------------


@dataclass
class SolverComparison:
    name: str
    objectives: dict[str, float] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def agree(self) -> bool:
        values = list(self.objectives.values())
        return all(abs(v - values[0]) <= max(1.0, abs(values[0])) * 1e-4
                   for v in values)

    def format(self) -> str:
        parts = [
            f"{backend}: obj {self.objectives[backend]:.2f} "
            f"in {self.seconds[backend]:.3f}s"
            for backend in self.objectives
        ]
        status = "AGREE" if self.agree else "DISAGREE"
        return f"{self.name}: " + "; ".join(parts) + f" [{status}]"


def compare_solvers(
    source: str,
    target: TargetSpec,
    name: str = "program",
    backends: tuple[str, ...] = ("scipy", "bb"),
    time_limit: float | None = 60.0,
) -> SolverComparison:
    """Solve one program's layout ILP with each backend."""
    info = check_program(parse_program(source, name))
    ir = build_ir(info, "Ingress")
    bounds = compute_upper_bounds(ir, target)
    out = SolverComparison(name=name)
    utility = info.program.optimize()
    for backend in backends:
        builder = LayoutBuilder(ir, bounds, target)
        builder.build()
        solution = builder.solve(
            utility=utility.utility if utility else None,
            backend=backend,
            time_limit=time_limit,
        )
        out.objectives[backend] = solution.objective
        out.seconds[backend] = solution.solve_seconds
    return out
