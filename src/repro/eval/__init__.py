"""Experiment harnesses — one per paper table/figure (DESIGN.md §4).

=============  ============================================================
fig01_library  the module library stretches per target (Figure 1)
fig04_quality  NetCache hit-rate surface across resource splits (Figure 4)
fig07_layout   the optimal NetCache layout (Figure 7)
fig09_unroll   loop-unrolling bound on the worked example (Figure 9)
fig11_apps     LoC / compile time / ILP size per application (Figure 11)
fig12_elastic  structure sizes as per-stage memory grows (Figure 12)
fig13_utility  utility-function choice flips the split (Figure 13)
runtime        online reconfiguration under churn (elastic runtime)
ablations      greedy vs ILP, exclusion handling, bound tightness, solvers
=============  ============================================================
"""

from .ablations import (
    BoundTightness,
    ExclusionAblation,
    GreedyVsIlp,
    SolverComparison,
    compare_exclusion_handling,
    compare_greedy_vs_ilp,
    compare_solvers,
    measure_bound_tightness,
)
from .fig01_library import LibraryDemo, run_library_demo
from .fig04_quality import QualityPoint, QualitySweep, run_quality_sweep
from .fig07_layout import NETCACHE_KV_FLOOR_BITS, LayoutFacts, run_layout
from .fig09_unroll import UnrollFacts, run_unroll_example
from .fig11_apps import AppBenchmark, AppRow, count_loc, run_app_benchmark
from .fig12_elastic import ElasticityPoint, ElasticitySweep, run_memory_sweep
from .fig13_utility import (
    UTILITY_CMS_WEIGHTED,
    UTILITY_KV_WEIGHTED,
    UtilityComparison,
    UtilityOutcome,
    run_utility_comparison,
)
from .fleet import FleetOutcome, FleetScenario, ScalePoint, run_fleet
from .runtime_elastic import (
    RuntimeComparison,
    RuntimeScenario,
    ScenarioOutcome,
    run_elastic_runtime,
)
from .tables import render_table

__all__ = [
    "BoundTightness",
    "ExclusionAblation",
    "GreedyVsIlp",
    "SolverComparison",
    "compare_exclusion_handling",
    "compare_greedy_vs_ilp",
    "compare_solvers",
    "measure_bound_tightness",
    "LibraryDemo",
    "run_library_demo",
    "QualityPoint",
    "QualitySweep",
    "run_quality_sweep",
    "NETCACHE_KV_FLOOR_BITS",
    "LayoutFacts",
    "run_layout",
    "UnrollFacts",
    "run_unroll_example",
    "AppBenchmark",
    "AppRow",
    "count_loc",
    "run_app_benchmark",
    "ElasticityPoint",
    "ElasticitySweep",
    "run_memory_sweep",
    "UTILITY_CMS_WEIGHTED",
    "UTILITY_KV_WEIGHTED",
    "UtilityComparison",
    "UtilityOutcome",
    "run_utility_comparison",
    "RuntimeComparison",
    "RuntimeScenario",
    "ScenarioOutcome",
    "run_elastic_runtime",
    "FleetOutcome",
    "FleetScenario",
    "ScalePoint",
    "run_fleet",
    "render_table",
]
