"""Figure 12 — structure sizes as per-stage memory grows.

The paper sweeps the target's per-stage memory M and shows both NetCache
structures stretching, with the key-value store taking the larger share
of memory (its items are far larger than the sketch's counters). Shape
to reproduce: monotone growth of both structures with M, and KVS memory
share > CMS memory share throughout.

Target parameters from §6.2: S = 10, F = 4, L = 100, P = 4096.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..apps.netcache import NETCACHE_UTILITY, netcache_source
from ..core import CompileOptions, compile_source
from ..pisa.resources import tofino
from .tables import render_table

__all__ = ["ElasticityPoint", "ElasticitySweep", "run_memory_sweep"]

MEGABIT = 1 << 20


@dataclass
class ElasticityPoint:
    memory_bits_per_stage: int
    cms_rows: int
    cms_cols: int
    kv_rows: int
    kv_cols: int
    cms_bits: int
    kv_bits: int

    @property
    def kv_items(self) -> int:
        return self.kv_rows * self.kv_cols

    @property
    def cms_cells(self) -> int:
        return self.cms_rows * self.cms_cols


@dataclass
class ElasticitySweep:
    points: list[ElasticityPoint] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            [
                f"{p.memory_bits_per_stage / MEGABIT:.2f}",
                f"{p.cms_rows}x{p.cms_cols}",
                p.cms_cells,
                f"{p.kv_rows}x{p.kv_cols}",
                p.kv_items,
                f"{p.kv_bits / max(p.kv_bits + p.cms_bits, 1):.2f}",
            ]
            for p in self.points
        ]
        return render_table(
            ["M (Mb/stage)", "CMS shape", "CMS cells", "KVS shape",
             "KVS items", "KVS mem share"],
            rows,
            title="Figure 12 — NetCache structure sizes as memory grows",
        )


def _compile_point(source: str, mbit: float, backend: str) -> ElasticityPoint:
    """Compile one memory cut. Module-level (and closure-free) so it can
    cross a process boundary: HiGHS holds the GIL while solving, so the
    parallel sweep needs processes, not threads."""
    bits = int(mbit * MEGABIT)
    target = dataclasses.replace(tofino(), memory_bits_per_stage=bits)
    compiled = compile_source(
        source, target, options=CompileOptions(backend=backend),
        source_name="netcache",
    )
    syms = compiled.symbol_values
    cms_bits = sum(
        r.size_bits for r in compiled.registers if r.family == "cms_sketch"
    )
    kv_bits = sum(
        r.size_bits for r in compiled.registers if r.family.startswith("kv_")
    )
    return ElasticityPoint(
        memory_bits_per_stage=bits,
        cms_rows=syms.get("cms_rows", 0),
        cms_cols=syms.get("cms_cols", 0),
        kv_rows=syms.get("kv_rows", 0),
        kv_cols=syms.get("kv_cols", 0),
        cms_bits=cms_bits,
        kv_bits=kv_bits,
    )


def run_memory_sweep(
    memory_options_mbit: tuple[float, ...] = (0.25, 0.5, 1.0, 1.75, 2.5, 4.0),
    utility: str = NETCACHE_UTILITY,
    max_cms_cols: int = 16384,
    kv_min_total_bits: int | None = None,
    backend: str = "auto",
    workers: int | None = None,
) -> ElasticitySweep:
    """Compile NetCache at several per-stage memory sizes.

    The per-memory-cut compiles are independent, so they fan out across
    a **process** pool (HiGHS does not release the GIL, so threads
    cannot overlap the solves). ``workers`` defaults to one per cut,
    capped at the CPU count; pass ``1`` to force the sequential path,
    which is also the automatic fallback where multiprocessing is
    unavailable."""
    import os
    from concurrent.futures import ProcessPoolExecutor

    sweep = ElasticitySweep()
    source = netcache_source(utility=utility, kv_min_total_bits=kv_min_total_bits)
    source = source.replace(
        "assume cms_cols <= 65536;", f"assume cms_cols <= {max_cms_cols};"
    )

    if workers is None:
        workers = min(len(memory_options_mbit), os.cpu_count() or 1)
    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # map() preserves input order: points stay sorted by M.
                sweep.points = list(pool.map(
                    _compile_point,
                    [source] * len(memory_options_mbit),
                    memory_options_mbit,
                    [backend] * len(memory_options_mbit),
                ))
            return sweep
        except OSError:  # no process spawning (sandboxes, some CI)
            pass
    sweep.points = [_compile_point(source, m, backend)
                    for m in memory_options_mbit]
    return sweep
