"""PISA target resource model (the paper's Figure 3).

A :class:`TargetSpec` captures what the P4All compiler needs to know about
a hardware target:

========  ===================================================
Symbol    Meaning
========  ===================================================
``S``     number of pipeline stages
``M``     register memory per stage, in bits
``F``     stateful ALUs per stage
``L``     stateless ALUs per stage
``P``     packet header vector (PHV) size, in bits
========  ===================================================

plus the per-action ALU cost functions ``H_f`` and ``H_l`` (§4.3), which
here are computed from an :class:`ActionCost` summary (how many register
operations, plain PHV operations, and hash computations an action
performs) weighted by target-specific factors.

The Barefoot Tofino is proprietary; :func:`tofino` reproduces the
parameters the paper states it used in §4.2/§6.2, and the paper itself
notes its specification "inevitably omits some target-specific
constraints". Additional toy targets support unit tests and the Figure-9
worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ActionCost",
    "TargetSpec",
    "tofino",
    "toy_three_stage",
    "small_target",
    "TARGETS",
    "get_target",
]

MEGABIT = 1 << 20


@dataclass(frozen=True)
class ActionCost:
    """Resource demand summary of one atomic action.

    ``stateful_ops`` counts register accesses (each needs a stateful ALU);
    ``stateless_ops`` counts PHV arithmetic/assignment operations;
    ``hash_ops`` counts hash computations (consume hash units, and on most
    targets also a stateless ALU to deposit the result).
    """

    stateful_ops: int = 0
    stateless_ops: int = 0
    hash_ops: int = 0

    def __add__(self, other: "ActionCost") -> "ActionCost":
        return ActionCost(
            self.stateful_ops + other.stateful_ops,
            self.stateless_ops + other.stateless_ops,
            self.hash_ops + other.hash_ops,
        )


@dataclass(frozen=True)
class TargetSpec:
    """Resources and ALU cost model of one PISA target."""

    name: str
    stages: int                      # S
    memory_bits_per_stage: int       # M
    stateful_alus_per_stage: int     # F
    stateless_alus_per_stage: int    # L
    phv_bits: int                    # P
    hash_units_per_stage: int = 8
    # H_f / H_l weights: ALUs consumed per counted op of each kind.
    stateful_weight: int = 1
    stateless_weight: int = 1
    hash_weight: int = 1
    notes: str = ""

    def __post_init__(self):
        for attr in (
            "stages",
            "memory_bits_per_stage",
            "stateful_alus_per_stage",
            "stateless_alus_per_stage",
            "phv_bits",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"target {self.name!r}: {attr} must be positive")

    # -- the paper's H_f / H_l functions ------------------------------------
    def hf(self, cost: ActionCost) -> int:
        """Stateful ALUs needed to implement an action with ``cost``."""
        return self.stateful_weight * cost.stateful_ops

    def hl(self, cost: ActionCost) -> int:
        """Stateless ALUs needed to implement an action with ``cost``."""
        return self.stateless_weight * cost.stateless_ops + self.hash_weight * cost.hash_ops

    def alu_breakdown(self, cost: ActionCost) -> dict[str, int]:
        """Weighted ALU demand of one action cost, split by ALU class.

        Used by per-module resource attribution: summing these over a
        module's placed units gives the module's share of the pipeline's
        stateful/stateless ALU budget (hash ops are reported raw,
        alongside their weighted contribution inside ``stateless``).
        """
        return {
            "stateful": self.hf(cost),
            "stateless": self.hl(cost),
            "hash": cost.hash_ops,
        }

    # -- aggregates used by the unrolling bound (§4.2) -----------------------
    @property
    def total_alus(self) -> int:
        """(F + L) · S — the whole-pipeline ALU budget."""
        return (
            self.stateful_alus_per_stage + self.stateless_alus_per_stage
        ) * self.stages

    @property
    def total_memory_bits(self) -> int:
        return self.memory_bits_per_stage * self.stages

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        mbits = self.memory_bits_per_stage / MEGABIT
        return (
            f"target {self.name}: S={self.stages} stages, "
            f"M={mbits:.3g} Mb/stage, F={self.stateful_alus_per_stage}, "
            f"L={self.stateless_alus_per_stage}, P={self.phv_bits} bits PHV, "
            f"{self.hash_units_per_stage} hash units/stage"
        )


def tofino(memory_bits_per_stage: int = int(1.75 * MEGABIT), stages: int = 10) -> TargetSpec:
    """Tofino-like specification with the parameters from §6.2.

    The elasticity experiments use S = 10, F = 4, L = 100, P = 4096 and
    sweep M; the utility-function experiment fixes M = 1.75 Mb per stage.
    """
    return TargetSpec(
        name="tofino",
        stages=stages,
        memory_bits_per_stage=memory_bits_per_stage,
        stateful_alus_per_stage=4,
        stateless_alus_per_stage=100,
        phv_bits=4096,
        hash_units_per_stage=8,
        notes="Parameters from the paper's §6.2 evaluation setup.",
    )


def toy_three_stage() -> TargetSpec:
    """The worked example of §4.2/Figure 9: S=3, M=2048 b, F=L=2, P=4096."""
    return TargetSpec(
        name="toy3",
        stages=3,
        memory_bits_per_stage=2048,
        stateful_alus_per_stage=2,
        stateless_alus_per_stage=2,
        phv_bits=4096,
        hash_units_per_stage=2,
        notes="Running example used to illustrate loop unrolling (Fig. 9).",
    )


def small_target(stages: int = 4, memory_kb: int = 16) -> TargetSpec:
    """A small target for tests: a few stages, kilobit-scale memory."""
    return TargetSpec(
        name=f"small{stages}",
        stages=stages,
        memory_bits_per_stage=memory_kb * 1024,
        stateful_alus_per_stage=2,
        stateless_alus_per_stage=8,
        phv_bits=1024,
        hash_units_per_stage=4,
    )


TARGETS = {
    "tofino": tofino,
    "toy3": toy_three_stage,
    "small": small_target,
}


def get_target(name: str, **kwargs) -> TargetSpec:
    """Look up a predefined target by name (``tofino``, ``toy3``, ``small``)."""
    try:
        factory = TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {sorted(TARGETS)}"
        ) from None
    return factory(**kwargs)
