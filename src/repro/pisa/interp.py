"""Expression/statement interpreter for placed action bodies.

Executes the AST statements of a placed unit against the pipeline's
per-packet state. Semantics (matching PISA, §2):

* every unit in a stage *reads* the PHV as it was at stage entry (the
  snapshot), so same-stage units are order-independent;
* within one unit, statements execute sequentially (a unit's own writes
  are visible to its later statements — that is what makes ``incr``'s
  hash-then-use-index body a single atomic action);
* writes commit to the PHV at stage exit; conflicting same-stage writes
  with different values raise :class:`SimulationError`, because the
  dependency analysis should have made them impossible;
* register operations execute immediately (registers are per-stage
  exclusive resources).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.pretty import pretty_expr
from .alu import apply_binary, apply_unary
from .hashing import HashFunction
from .registers import RegisterFile
from .tables import MatchActionTable

__all__ = ["ExecContext", "SimulationError", "eval_expr", "exec_unit_body"]

_HASH_WIDTH = 1 << 32


class SimulationError(Exception):
    """Semantic violation during simulation (usually a layout bug)."""


@dataclass
class ExecContext:
    """Mutable state for executing one unit within one stage."""

    snapshot: dict[str, int]                 # PHV at stage entry
    registers: RegisterFile
    tables: dict[str, MatchActionTable]
    hash_fns: dict[int, HashFunction]
    hash_factory: type
    actions: dict[str, ast.ActionDecl]       # for table-invoked actions
    consts: dict[str, int]
    local_writes: dict[str, int] = field(default_factory=dict)
    scalars: dict[str, int] = field(default_factory=dict)  # bound action params
    table_hits: dict[str, bool] = field(default_factory=dict)

    def hash_fn(self, seed: int) -> HashFunction:
        fn = self.hash_fns.get(seed)
        if fn is None:
            fn = self.hash_factory(seed)
            self.hash_fns[seed] = fn
        return fn

    def read(self, key: str) -> int:
        if key in self.local_writes:
            return self.local_writes[key]
        return self.snapshot.get(key, 0)

    def write(self, key: str, value: int) -> None:
        self.local_writes[key] = int(value)


def _field_key(expr: ast.Expr, ctx: ExecContext) -> str:
    """Field key with indices evaluated (mirrors analysis' field_key)."""
    if isinstance(expr, ast.Index):
        idx = eval_expr(expr.index, ctx)
        return f"{_field_key(expr.base, ctx)}[{idx}]"
    return pretty_expr(expr)


def _register_instance(expr: ast.Expr, ctx: ExecContext) -> str:
    """Resolve a register reference into its instance name."""
    if isinstance(expr, ast.Name):
        return f"{expr.ident}[0]"
    if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Name):
        idx = eval_expr(expr.index, ctx)
        return f"{expr.base.ident}[{idx}]"
    raise SimulationError(f"bad register reference: {pretty_expr(expr)}")


def eval_expr(expr: ast.Expr, ctx: ExecContext) -> int:
    """Evaluate an expression to an unsigned integer."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.FloatLit):
        raise SimulationError("float literals cannot appear in data-plane code")
    if isinstance(expr, ast.Name):
        if expr.ident in ctx.scalars:
            return ctx.scalars[expr.ident]
        if expr.ident in ctx.consts:
            return ctx.consts[expr.ident]
        return ctx.read(expr.ident)
    if isinstance(expr, (ast.Member, ast.Index)):
        return ctx.read(_field_key(expr, ctx))
    if isinstance(expr, ast.UnaryOp):
        return apply_unary(expr.op, eval_expr(expr.operand, ctx))
    if isinstance(expr, ast.BinaryOp):
        # Logical operators short-circuit (guards like
        # ``i == 0 || (x >> (i - 1)) & 1`` rely on it).
        if expr.op == "&&":
            return int(bool(eval_expr(expr.left, ctx))
                       and bool(eval_expr(expr.right, ctx)))
        if expr.op == "||":
            return int(bool(eval_expr(expr.left, ctx))
                       or bool(eval_expr(expr.right, ctx)))
        return apply_binary(
            expr.op, eval_expr(expr.left, ctx), eval_expr(expr.right, ctx)
        )
    if isinstance(expr, ast.Ternary):
        branch = expr.if_true if eval_expr(expr.cond, ctx) else expr.if_false
        return eval_expr(branch, ctx)
    if isinstance(expr, ast.Call):
        return _eval_call(expr, ctx)
    raise SimulationError(f"cannot evaluate {type(expr).__name__}")


def _eval_call(call: ast.Call, ctx: ExecContext) -> int:
    func = call.func
    if isinstance(func, ast.Name):
        if func.ident == "hash":
            if not call.args:
                raise SimulationError("hash() needs a seed argument")
            seed = eval_expr(call.args[0], ctx)
            values = [eval_expr(a, ctx) for a in call.args[1:]]
            return ctx.hash_fn(seed)(*values, width=_HASH_WIDTH)
        if func.ident == "min":
            return min(eval_expr(a, ctx) for a in call.args)
        if func.ident == "max":
            return max(eval_expr(a, ctx) for a in call.args)
    raise SimulationError(f"cannot evaluate call {pretty_expr(call)}")


def _exec_register_call(call: ast.Call, func: ast.Member, ctx: ExecContext) -> None:
    instance = _register_instance(func.base, ctx)
    array = ctx.registers.get(instance)
    method = func.name
    if method == "read":
        idx = eval_expr(call.args[1], ctx)
        ctx.write(_field_key(call.args[0], ctx), array.read(idx))
    elif method == "write":
        idx = eval_expr(call.args[0], ctx)
        array.write(idx, eval_expr(call.args[1], ctx))
    elif method == "add":
        idx = eval_expr(call.args[0], ctx)
        array.add(idx, eval_expr(call.args[1], ctx))
    elif method == "add_read":
        idx = eval_expr(call.args[1], ctx)
        amount = eval_expr(call.args[2], ctx)
        ctx.write(_field_key(call.args[0], ctx), array.add(idx, amount))
    elif method == "max_update":
        idx = eval_expr(call.args[0], ctx)
        array.max_update(idx, eval_expr(call.args[1], ctx))
    elif method == "min_update":
        idx = eval_expr(call.args[0], ctx)
        array.min_update(idx, eval_expr(call.args[1], ctx))
    elif method == "swap":
        idx = eval_expr(call.args[1], ctx)
        value = eval_expr(call.args[2], ctx)
        ctx.write(_field_key(call.args[0], ctx), array.swap(idx, value))
    elif method == "cond_add":
        idx = eval_expr(call.args[0], ctx)
        cond = eval_expr(call.args[1], ctx)
        array.cond_add(idx, bool(cond), eval_expr(call.args[2], ctx))
    elif method == "cond_add_read":
        idx = eval_expr(call.args[1], ctx)
        cond = eval_expr(call.args[2], ctx)
        amount = eval_expr(call.args[3], ctx)
        ctx.write(
            _field_key(call.args[0], ctx), array.cond_add(idx, bool(cond), amount)
        )
    else:
        raise SimulationError(f"unknown register method {method!r}")


def _exec_table_apply(table_name: str, ctx: ExecContext) -> None:
    table = ctx.tables[table_name]
    key_values = [ctx.read(key) for key in table.key_fields]
    result = table.lookup(key_values)
    ctx.table_hits[table_name] = result.hit
    if result.action in (None, "NoAction"):
        return
    action = ctx.actions.get(result.action)
    if action is None:
        raise SimulationError(
            f"table {table_name!r} selected unknown action {result.action!r}"
        )
    if len(result.action_data) != len(action.params):
        raise SimulationError(
            f"action {result.action!r} expects {len(action.params)} data values, "
            f"entry carries {len(result.action_data)}"
        )
    saved = dict(ctx.scalars)
    for param, value in zip(action.params, result.action_data):
        ctx.scalars[param.name] = int(value)
    try:
        for stmt in action.body.stmts:
            exec_stmt(stmt, ctx)
    finally:
        ctx.scalars = saved


def exec_stmt(stmt: ast.Stmt, ctx: ExecContext) -> None:
    if isinstance(stmt, ast.Assign):
        ctx.write(_field_key(stmt.target, ctx), eval_expr(stmt.value, ctx))
        return
    if isinstance(stmt, ast.CallStmt):
        func = stmt.call.func
        if isinstance(func, ast.Member):
            if func.name == "apply" and isinstance(func.base, ast.Name):
                _exec_table_apply(func.base.ident, ctx)
                return
            _exec_register_call(stmt.call, func, ctx)
            return
    raise SimulationError(f"cannot execute {type(stmt).__name__} in a unit body")


def exec_unit_body(
    body: list[ast.Stmt],
    guard: ast.Expr | None,
    table: str | None,
    ctx: ExecContext,
) -> bool:
    """Run one placed unit; returns False when its guard suppressed it."""
    if guard is not None and not eval_expr(guard, ctx):
        return False
    if table is not None:
        _exec_table_apply(table, ctx)
        return True
    for stmt in body:
        exec_stmt(stmt, ctx)
    return True
