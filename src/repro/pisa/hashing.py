"""Deterministic hash families for the data plane.

PISA switches provide per-stage hash units (CRC-style). The simulator and
the reference data structures must agree bit-for-bit, so both use this
module. Two families are provided:

* :class:`MultiplyShiftHash` — 2-universal multiply-shift hashing;
  vectorizes over numpy arrays, which keeps trace-scale experiments fast.
* :class:`Crc32Hash` — seeded CRC32 (closer to what switch hash units
  compute); scalar.

Hash functions are constructed from an integer ``seed`` so that "row i of
the sketch uses hash function h_i" is simply ``family(seed=i)``.
"""

from __future__ import annotations

import random
import zlib

import numpy as np

__all__ = ["HashFunction", "MultiplyShiftHash", "Crc32Hash", "hash_family"]

_MASK64 = (1 << 64) - 1


#: Output width of a switch hash unit (32-bit result deposited in the PHV).
HASH_UNIT_WIDTH = 1 << 32


class HashFunction:
    """Interface: map tuples of ints (or numpy arrays) into ``[0, width)``."""

    def __call__(self, *values: int, width: int) -> int:
        raise NotImplementedError

    def vector(self, values: np.ndarray, width: int) -> np.ndarray:
        """Vectorized variant over a 1-D array of keys."""
        raise NotImplementedError

    def slot(self, *values: int, cells: int) -> int:
        """Register-slot index exactly as the data plane computes it: a
        32-bit hash-unit output reduced modulo the register size. (For
        non-power-of-two sizes this differs from hashing directly into
        ``[0, cells)``, so reference structures must use this method to
        stay bit-identical with the pipeline simulator.)"""
        return self(*values, width=HASH_UNIT_WIDTH) % cells

    def slot_vector(self, values: np.ndarray, cells: int) -> np.ndarray:
        """Vectorized :meth:`slot`."""
        out = self.vector(values, HASH_UNIT_WIDTH)
        return (out.astype(np.uint64) % np.uint64(cells)).astype(np.int64)


class MultiplyShiftHash(HashFunction):
    """Dietzfelbinger-style multiply-shift hashing with seeded parameters.

    For multi-argument calls the arguments are combined pairwise with
    distinct odd multipliers before the final shift, which preserves
    2-universality for the combined key.
    """

    def __init__(self, seed: int):
        self.seed = seed
        rng = random.Random(0x9E3779B97F4A7C15 ^ (seed * 0xBF58476D1CE4E5B9 & _MASK64))
        # Odd multipliers, one per argument position (grown on demand).
        self._rng = rng
        self._multipliers: list[int] = []
        self._addend = rng.getrandbits(64)

    def _multiplier(self, position: int) -> int:
        while len(self._multipliers) <= position:
            self._multipliers.append(self._rng.getrandbits(64) | 1)
        return self._multipliers[position]

    def _mix(self, *values: int) -> int:
        acc = self._addend
        for pos, value in enumerate(values):
            acc = (acc + self._multiplier(pos) * (int(value) & _MASK64)) & _MASK64
        # Final avalanche (splitmix64 finalizer).
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK64
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
        return acc

    def __call__(self, *values: int, width: int) -> int:
        if width <= 0:
            raise ValueError("hash width must be positive")
        return self._mix(*values) % width

    def vector(self, values: np.ndarray, width: int) -> np.ndarray:
        if width <= 0:
            raise ValueError("hash width must be positive")
        keys = np.asarray(values, dtype=np.uint64)
        mult = np.uint64(self._multiplier(0))
        acc = np.uint64(self._addend) + mult * keys
        return self._finalize(acc, width)

    def vector_multi(self, columns, width: int) -> np.ndarray:
        """Vectorized multi-argument hash: one array per argument
        position, combined with the same per-position odd multipliers as
        :meth:`_mix`. All arithmetic stays in uint64 arrays (wraparound
        mod 2**64), bit-identical to the scalar path; signed inputs are
        C-cast, which equals the scalar's ``value & (2**64 - 1)``."""
        if width <= 0:
            raise ValueError("hash width must be positive")
        acc = None
        for pos, column in enumerate(columns):
            keys = np.asarray(column).astype(np.uint64)
            term = np.uint64(self._multiplier(pos)) * keys
            acc = term if acc is None else acc + term
        if acc is None:
            return np.asarray(self._mix() % width, dtype=np.int64)
        acc = np.uint64(self._addend) + acc
        return self._finalize(acc, width)

    @staticmethod
    def _finalize(acc: np.ndarray, width: int) -> np.ndarray:
        acc ^= acc >> np.uint64(30)
        acc *= np.uint64(0xBF58476D1CE4E5B9)
        acc ^= acc >> np.uint64(27)
        acc *= np.uint64(0x94D049BB133111EB)
        acc ^= acc >> np.uint64(31)
        return (acc % np.uint64(width)).astype(np.int64)


class Crc32Hash(HashFunction):
    """Seeded CRC32 — mirrors switch hash units; scalar only."""

    def __init__(self, seed: int):
        self.seed = seed & 0xFFFFFFFF

    def __call__(self, *values: int, width: int) -> int:
        if width <= 0:
            raise ValueError("hash width must be positive")
        crc = self.seed
        for value in values:
            data = int(value).to_bytes((max(int(value).bit_length(), 1) + 7) // 8, "little")
            crc = zlib.crc32(data, crc)
        return crc % width

    def vector(self, values: np.ndarray, width: int) -> np.ndarray:
        return np.array([self(int(v), width=width) for v in np.asarray(values)])


def hash_family(kind: str = "multiply-shift"):
    """Return a constructor ``seed -> HashFunction`` for the named family."""
    if kind == "multiply-shift":
        return MultiplyShiftHash
    if kind == "crc32":
        return Crc32Hash
    raise ValueError(f"unknown hash family {kind!r} (multiply-shift, crc32)")
